"""The supervision tree: fork, monitor, restart, replay, fail over.

:class:`Supervisor` owns N worker processes forked over one
:class:`~repro.store.EmbeddingStore` directory.  Each worker opens the
store read-only (its own mmaps, page cache, and quarantine set) and is
the affinity target for the entities whose
:func:`~repro.serving.protocol.shard_of` maps to it; because every
worker can read every row, that affinity is a locality optimization —
failing a request over to the next live sibling is always correct.

Exactly-once semantics under crashes come from three rules:

1. **Terminal map.**  Every submitted request gets exactly one entry in
   the terminal-response map, keyed by request id; a result arriving
   for an already-terminal id (only possible through races the death
   handler already resolved) is counted and dropped.
2. **Drain before replay.**  When a worker dies, every *complete*
   response frame still sitting in its socket buffer is credited
   first; only the requests that remain unanswered are orphans.  An
   orphan is replayed to the next live sibling under its original
   idempotency key — or failed fast (outcome ``"deadline"`` /
   ``"failed"``) if its virtual deadline passed or its attempt budget
   is spent.  Nothing is silently dropped, nothing runs twice.
3. **Restart is async.**  The dead worker is re-forked immediately but
   routes no traffic until its ``("ready", ...)`` handshake; in the
   interim its shard's requests fail over to siblings.

Blocking reads carry a real-time ``select`` timeout purely as a hang
backstop (a SIGKILLed worker produces an immediate EOF; the timeout
only matters for a *wedged* worker, which is then treated as dead).
Request deadlines, coalescing delays, and the chaos/loadtest drivers
all run on the virtual StepClock, so drill outcomes are deterministic.
"""

from __future__ import annotations

import multiprocessing
import os
import select
import signal
import socket as socketlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..core.service import ServiceVectors
from ..obs.metrics import MetricsRegistry
from ..reliability.retry import RPCError, StepClock
from ..store import EmbeddingStore, ScrubScheduler
from ..store.errors import QuarantinedRowError
from .coalescer import Batch, Coalescer, CoalescerConfig
from .protocol import (
    PoolRequest,
    PoolResponse,
    ProtocolError,
    STATUS_DEADLINE,
    STATUS_OK,
    STATUS_QUARANTINED,
    STATUS_UNKNOWN,
    drain_frames,
    payload_checksum,
    recv_frame,
    send_frame,
    shard_of,
)
from .worker import worker_main

#: Worker lifecycle states.
DOWN, STARTING, UP, DEAD = "down", "starting", "up", "dead"


class PoolError(RPCError):
    """The pool cannot answer (no live workers / worker-side failure).

    An :class:`RPCError` subclass on purpose: the gateway's
    ``TimedBackend`` and the resilient facade already translate
    ``RPCError`` into degraded answers, so wrapping a pool needs no new
    plumbing.
    """


@dataclass(frozen=True)
class PoolConfig:
    """Knobs for one supervised worker pool."""

    num_workers: int = 2
    max_batch: int = 16
    max_delay: float = 0.002  # virtual seconds, see Coalescer
    deadline_budget: float = 64.0  # virtual seconds per request
    max_attempts: int = 2  # dispatches per request (1 original + replays)
    cache_pages: int = 64  # per-worker page-cache budget
    io_timeout: float = 30.0  # real seconds; hang backstop on blocking reads
    start_timeout: float = 30.0  # real seconds; worker ready handshake
    restart_limit: int = 8  # restarts per worker slot before giving up
    scrub_pages_per_tick: int = 0  # 0 disables background scrubbing
    #: Split batches larger than this across idle siblings at dispatch
    #: (0 disables splitting).  Off by default: the serve-chaos gate
    #: byte-diffs transcripts whose batching it pins down.
    split_batch: int = 0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.deadline_budget <= 0:
            raise ValueError("deadline_budget must be positive")
        if self.split_batch < 0:
            raise ValueError("split_batch must be >= 0")


class WorkerHandle:
    """Supervisor-side state of one worker slot."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.process = None
        self.sock = None
        self.state = DOWN
        self.inflight: Dict[int, PoolRequest] = {}
        self.restarts = 0
        self.served_total = 0  # last reported by a pong
        self.pong_seq = -1

    @property
    def routable(self) -> bool:
        return self.state == UP


class Supervisor:
    """A supervised multi-process worker pool over one embedding store."""

    def __init__(
        self,
        store_dir: Union[str, Path],
        config: Optional[PoolConfig] = None,
        *,
        clock: Optional[StepClock] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> None:
        self.store_dir = Path(store_dir)
        self.config = config if config is not None else PoolConfig()
        self.clock = clock if clock is not None else StepClock()
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        self.coalescer = Coalescer(
            self.clock,
            CoalescerConfig(
                max_batch=self.config.max_batch,
                max_delay=self.config.max_delay,
            ),
            registry=self.metrics,
        )
        # The supervisor reads only geometry/metadata from the store
        # (workers own the data plane); the handle stays open when the
        # background scrubber needs pages to sweep.
        store = EmbeddingStore.open(self.store_dir, registry=self.metrics)
        metadata = store.metadata
        if metadata.get("kind") != "pkgm-server":
            store.close()
            raise PoolError(
                f"store at {self.store_dir} is not a pkgm-server snapshot"
            )
        self.k = int(metadata["k"])
        self.dim = int(metadata["dim"])
        self.num_entities = store.spec("entity_table").rows
        self.num_relations = store.spec("relation_table").rows
        self.scrubber: Optional[ScrubScheduler] = None
        if self.config.scrub_pages_per_tick > 0:
            self._store = store
            self.scrubber = ScrubScheduler(
                store,
                pages_per_tick=self.config.scrub_pages_per_tick,
                registry=self.metrics,
            )
        else:
            store.close()
            self._store = None
        self.workers = [
            WorkerHandle(index) for index in range(self.config.num_workers)
        ]
        self._ctx = multiprocessing.get_context("fork")
        self._terminal: Dict[int, PoolResponse] = {}
        self._pending: Dict[int, PoolRequest] = {}
        self._emitted: List[PoolResponse] = []
        self._next_id = 0
        self._ping_seq = 0
        self._requests_c = self.metrics.counter(
            "pool.requests", help="Requests submitted to the pool"
        )
        self._responses_c = self.metrics.counter(
            "pool.responses", help="Terminal responses recorded"
        )
        self._batches_c = self.metrics.counter(
            "pool.batches_sent", help="Batches dispatched to workers"
        )
        self._deaths_c = self.metrics.counter(
            "pool.worker_deaths", help="Worker crashes / heartbeat losses"
        )
        self._restarts_c = self.metrics.counter(
            "pool.worker_restarts", help="Workers re-forked after a death"
        )
        self._replays_c = self.metrics.counter(
            "pool.replays", help="Orphaned requests replayed to a sibling"
        )
        self._failfast_deadline_c = self.metrics.counter(
            "pool.failfast_deadline", help="Requests failed fast: deadline"
        )
        self._failfast_attempts_c = self.metrics.counter(
            "pool.failfast_attempts", help="Requests failed fast: attempts spent"
        )
        self._duplicates_c = self.metrics.counter(
            "pool.duplicates_dropped", help="Late results for terminal requests"
        )
        self._failovers_c = self.metrics.counter(
            "pool.failovers", help="Batches routed off their primary shard"
        )
        self._worker_deadline_c = self.metrics.counter(
            "pool.worker_deadline_cancellations",
            help="Items a worker cancelled at its deadline check",
        )
        self._batch_splits_c = self.metrics.counter(
            "pool.batch_splits", help="Giant batches split across siblings"
        )
        self._heartbeats_c = self.metrics.counter(
            "pool.heartbeats", help="Heartbeat pings sent"
        )
        self._heartbeat_losses_c = self.metrics.counter(
            "pool.heartbeat_losses", help="Heartbeats that timed out"
        )
        self._idle_scrub_c = self.metrics.counter(
            "pool.idle_scrub_ticks", help="Idle ticks spent scrubbing"
        )
        self._workers_up_g = self.metrics.gauge(
            "pool.workers_up", help="Workers in the routable (up) state"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Fork every worker and wait for all ready handshakes."""
        for handle in self.workers:
            self._spawn(handle)
        self._await_ready(self.workers)

    def shutdown(self) -> None:
        """Stop every worker and close the pool."""
        for handle in self.workers:
            if handle.sock is not None:
                try:
                    send_frame(handle.sock, ("shutdown",))
                except OSError:  # repro-lint: disable=bare-except
                    pass  # best-effort farewell; the peer may already be dead
            if handle.process is not None:
                handle.process.join(timeout=5.0)
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=5.0)
            if handle.sock is not None:
                handle.sock.close()
                handle.sock = None
            handle.state = DOWN
        self._update_up_gauge()
        if self._store is not None:
            self._store.close()
            self._store = None

    def _spawn(self, handle: WorkerHandle) -> None:
        parent_sock, child_sock = socketlib.socketpair()
        process = self._ctx.Process(
            target=worker_main,
            args=(
                child_sock,
                str(self.store_dir),
                handle.index,
                self.config.cache_pages,
            ),
            daemon=True,
        )
        process.start()
        child_sock.close()
        handle.process = process
        handle.sock = parent_sock
        handle.state = STARTING
        handle.inflight = {}

    def _await_ready(self, handles: List[WorkerHandle]) -> None:
        waiting = [h for h in handles if h.state == STARTING]
        while waiting:
            socks = [h.sock for h in waiting]
            readable, _, _ = select.select(socks, [], [], self.config.start_timeout)
            if not readable:
                for handle in waiting:
                    self._on_worker_death(handle, reason="start-timeout")
                raise PoolError(
                    f"{len(waiting)} worker(s) missed the ready handshake"
                )
            for handle in list(waiting):
                if handle.sock in readable:
                    self._read_one(handle)
            waiting = [h for h in handles if h.state == STARTING]
            dead = [h for h in handles if h.state == DEAD]
            if dead:
                raise PoolError(
                    f"worker(s) {[h.index for h in dead]} failed to start"
                )

    def _update_up_gauge(self) -> None:
        self._workers_up_g.set(sum(1 for h in self.workers if h.state == UP))

    # ------------------------------------------------------------------
    # Submission / dispatch
    # ------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        entity_id: int,
        relation: int = -1,
        k: int = 10,
        budget: Optional[float] = None,
    ) -> int:
        """Offer one request; returns its request id.

        A non-positive ``budget`` is rejected *before* any coalescing
        or dispatch with a terminal ``"deadline"`` outcome — the same
        pre-dispatch contract the gateway's retrieval path enforces.
        """
        now = self.clock.now()
        effective = (
            self.config.deadline_budget if budget is None else float(budget)
        )
        request_id = self._next_id
        self._next_id += 1
        self._requests_c.inc()
        request = PoolRequest(
            request_id=request_id,
            idempotency_key=f"{kind}:{int(entity_id)}:{int(relation)}:{int(k)}:{request_id}",
            kind=kind,
            entity_id=int(entity_id),
            relation=int(relation),
            k=int(k),
            deadline_at=now + effective,
            shard=shard_of(entity_id, self.config.num_workers),
        )
        if effective <= 0:
            self._failfast_deadline_c.inc()
            self._record(self._supervisor_outcome(request, "deadline"))
            return request_id
        self._pending[request_id] = request
        for batch in self.coalescer.offer(request):
            self._dispatch(batch)
        return request_id

    def pump(self) -> None:
        """Non-blocking housekeeping: flush due batches, read results."""
        for batch in self.coalescer.due():
            self._dispatch(batch)
        self._poll(timeout=0.0)

    def tick(self) -> None:
        """One idle tick: housekeeping plus a background scrub slice.

        The scrubber runs only when the pool is actually idle — no
        in-flight batches, nothing buffered — so sweeps never compete
        with foreground traffic for the supervisor loop.
        """
        self.pump()
        if (
            self.scrubber is not None
            and not self._inflight_total()
            and not self.coalescer.pending()
        ):
            self._idle_scrub_c.inc()
            self.scrubber.tick()

    def outstanding(self) -> int:
        """Requests submitted but not yet terminal."""
        return len(self._pending)

    def responses(self) -> List[PoolResponse]:
        """Pop every terminal response recorded since the last call."""
        emitted, self._emitted = self._emitted, []
        return emitted

    def wait_any(self) -> None:
        """Block until at least one new response is recorded.

        Forces the coalescer when nothing is in flight (the blocking
        caller cannot advance virtual time, so waiting out ``max_delay``
        would deadlock).
        """
        before = self._responses_c.value
        while self._responses_c.value == before:
            if not self._inflight_total():
                batches = self.coalescer.flush_all()
                if not batches and not self._pending:
                    return
                for batch in batches:
                    self._dispatch(batch)
                continue
            self._poll(timeout=self.config.io_timeout, hang_is_death=True)

    def drain(self) -> List[PoolResponse]:
        """Force-flush and answer everything outstanding."""
        while self._pending:
            self.wait_any()
        return self.responses()

    def terminal(self) -> Dict[int, PoolResponse]:
        """A copy of the terminal-response map (request id → response)."""
        return dict(self._terminal)

    def _inflight_total(self) -> int:
        return sum(len(h.inflight) for h in self.workers)

    def _route(self, shard: int) -> Tuple[WorkerHandle, bool]:
        """The live worker for ``shard``: primary, else the next sibling."""
        for offset in range(self.config.num_workers):
            handle = self.workers[(shard + offset) % self.config.num_workers]
            if handle.routable:
                return handle, offset != 0
        starting = [h for h in self.workers if h.state == STARTING]
        if starting:
            self._await_ready(starting)
            return self._route(shard)
        raise PoolError("no live workers to route to")

    def _dispatch(self, batch: Batch) -> None:
        now = self.clock.now()
        live: List[PoolRequest] = []
        for request in batch.requests:
            if request.request_id in self._terminal:
                continue
            if now >= request.deadline_at:
                self._failfast_deadline_c.inc()
                self._record(self._supervisor_outcome(request, "deadline"))
                continue
            live.append(request)
        if not live:
            return
        primary, failed_over = self._route(batch.shard)
        if failed_over:
            self._failovers_c.inc()
        limit = self.config.split_batch
        if limit and len(live) > limit:
            # A giant batch (forced flush, death replay) would serialize
            # on one worker while its siblings sit idle; carve it into
            # ``limit``-sized chunks and spread the surplus over idle
            # routable siblings, keeping the primary for the first chunk
            # (and any overflow once the idle set is spent).
            chunks = [
                live[start : start + limit]
                for start in range(0, len(live), limit)
            ]
            idle = [
                handle
                for handle in self.workers
                if handle.routable
                and handle is not primary
                and not handle.inflight
            ]
            targets = [primary] + [
                idle.pop(0) if idle else primary for _ in chunks[1:]
            ]
            self._batch_splits_c.inc()
        else:
            chunks = [live]
            targets = [primary]
        for handle, chunk in zip(targets, chunks):
            self._dispatch_to(handle, batch, chunk, now)

    def _dispatch_to(
        self,
        handle: WorkerHandle,
        batch: Batch,
        requests: List[PoolRequest],
        now: float,
    ) -> None:
        """Send one chunk to one worker, carrying per-item budgets."""
        items = [
            (r.request_id, r.entity_id, r.relation, r.deadline_at - now)
            for r in requests
        ]
        for request in requests:
            handle.inflight[request.request_id] = request
        self._batches_c.inc()
        if self.tracer is not None:
            with self.tracer.span(
                "pool.batch",
                worker=handle.index,
                kind=batch.kind,
                size=len(items),
            ):
                self._send_batch(handle, batch, items)
        else:
            self._send_batch(handle, batch, items)

    def _send_batch(self, handle: WorkerHandle, batch: Batch, items) -> None:
        try:
            send_frame(handle.sock, ("batch", batch.kind, batch.k, items))
        except OSError:
            self._on_worker_death(handle, reason="send-error")

    # ------------------------------------------------------------------
    # Reading / completion
    # ------------------------------------------------------------------
    def _poll(self, timeout: float, hang_is_death: bool = False) -> None:
        socks = {
            h.sock: h
            for h in self.workers
            if h.sock is not None and h.state in (UP, STARTING)
        }
        if not socks:
            return
        readable, _, _ = select.select(list(socks), [], [], timeout)
        if not readable:
            if hang_is_death and timeout > 0:
                # Nothing read within the backstop while work is in
                # flight: the owing worker is wedged.  Treat every
                # worker with in-flight work as lost.
                for handle in list(socks.values()):
                    if handle.inflight:
                        self._heartbeat_losses_c.inc()
                        self._on_worker_death(handle, reason="hang")
            return
        for sock in readable:
            self._read_one(socks[sock])

    def _read_one(self, handle: WorkerHandle) -> None:
        try:
            message = recv_frame(handle.sock)
        except (OSError, ProtocolError):
            self._on_worker_death(handle, reason="torn-frame")
            return
        if message is None:
            self._on_worker_death(handle, reason="eof")
            return
        self._handle_frame(handle, message)

    def _handle_frame(self, handle: WorkerHandle, message) -> None:
        tag = message[0]
        if tag == "ready":
            handle.state = UP
            self._update_up_gauge()
            return
        if tag == "fail":
            self._on_worker_death(handle, reason="start-failure")
            return
        if tag == "pong":
            handle.pong_seq = int(message[1])
            handle.served_total = int(message[2])
            return
        if tag == "results":
            _, worker_id, results = message
            for request_id, status, payload in results:
                self._complete(handle, int(worker_id), request_id, status, payload)

    def _complete(
        self, handle: WorkerHandle, worker_id: int, request_id: int, status, payload
    ) -> None:
        request = handle.inflight.pop(request_id, None)
        if request is None:
            request = self._pending.get(request_id)
        if request_id in self._terminal:
            self._duplicates_c.inc()
            return
        if request is None:
            # A result for a request the pool never issued: protocol
            # drift; count it with the duplicates rather than crash.
            self._duplicates_c.inc()
            return
        if status == STATUS_DEADLINE:
            self._worker_deadline_c.inc()
        checksum = (
            payload_checksum(request.kind, payload) if status == STATUS_OK else 0
        )
        self._record(
            PoolResponse(
                request_id=request_id,
                idempotency_key=request.idempotency_key,
                kind=request.kind,
                entity_id=request.entity_id,
                relation=request.relation,
                outcome=status,
                payload=payload,
                checksum=checksum,
                worker=worker_id,
                replayed=request.attempts > 0,
            )
        )

    def _record(self, response: PoolResponse) -> None:
        if response.request_id in self._terminal:
            self._duplicates_c.inc()
            return
        self._terminal[response.request_id] = response
        self._pending.pop(response.request_id, None)
        self._emitted.append(response)
        self._responses_c.inc()

    def _supervisor_outcome(self, request: PoolRequest, outcome: str) -> PoolResponse:
        return PoolResponse(
            request_id=request.request_id,
            idempotency_key=request.idempotency_key,
            kind=request.kind,
            entity_id=request.entity_id,
            relation=request.relation,
            outcome=outcome,
            payload=None,
            checksum=0,
            worker=-1,
            replayed=request.attempts > 0,
        )

    # ------------------------------------------------------------------
    # Death, replay, restart
    # ------------------------------------------------------------------
    def _on_worker_death(self, handle: WorkerHandle, reason: str) -> None:
        if handle.state == DEAD:
            return
        was_starting = handle.state == STARTING
        handle.state = DEAD
        self._deaths_c.inc()
        self._update_up_gauge()
        if handle.sock is not None:
            # Credit every response the worker finished writing before
            # it died — rule 2: drain before replay.
            for message in drain_frames(handle.sock):
                self._handle_frame(handle, message)
            handle.sock.close()
            handle.sock = None
        if handle.process is not None:
            handle.process.join(timeout=5.0)
        orphans = [
            handle.inflight[request_id]
            for request_id in sorted(handle.inflight)
            if request_id not in self._terminal
        ]
        handle.inflight = {}
        now = self.clock.now()
        replayable: List[PoolRequest] = []
        for request in orphans:
            if now >= request.deadline_at:
                self._failfast_deadline_c.inc()
                self._record(self._supervisor_outcome(request, "deadline"))
            elif request.attempts + 1 >= self.config.max_attempts:
                self._failfast_attempts_c.inc()
                self._record(self._supervisor_outcome(request, "failed"))
            else:
                replayable.append(request)
        if not was_starting and handle.restarts < self.config.restart_limit:
            handle.restarts += 1
            self._restarts_c.inc()
            self._spawn(handle)
        if replayable:
            self._replay(replayable)

    def _replay(self, requests: List[PoolRequest]) -> None:
        """Re-dispatch orphans immediately, grouped like the coalescer."""
        groups: Dict[Tuple[int, str, int], List[PoolRequest]] = {}
        for request in requests:
            self._replays_c.inc()
            retried = PoolRequest(
                request_id=request.request_id,
                idempotency_key=request.idempotency_key,
                kind=request.kind,
                entity_id=request.entity_id,
                relation=request.relation,
                k=request.k,
                deadline_at=request.deadline_at,
                shard=request.shard,
                attempts=request.attempts + 1,
            )
            self._pending[request.request_id] = retried
            key = (retried.shard, retried.kind, retried.k)
            groups.setdefault(key, []).append(retried)
        for (shard, kind, k), members in sorted(groups.items()):
            self._dispatch(
                Batch(shard=shard, kind=kind, k=k, requests=tuple(members))
            )

    # ------------------------------------------------------------------
    # Heartbeats / chaos hooks
    # ------------------------------------------------------------------
    def ping_all(self, timeout: Optional[float] = None) -> int:
        """Heartbeat every routable worker; returns pongs received.

        A worker that neither answers nor EOFs within ``timeout`` real
        seconds is declared dead (its in-flight work replays or fails
        fast exactly as for a crash).
        """
        timeout = self.config.io_timeout if timeout is None else timeout
        self._ping_seq += 1
        sequence = self._ping_seq
        targets = [h for h in self.workers if h.state == UP]
        for handle in targets:
            self._heartbeats_c.inc()
            try:
                send_frame(handle.sock, ("ping", sequence))
            except OSError:
                self._on_worker_death(handle, reason="send-error")
        pongs = 0
        for handle in targets:
            if handle.state != UP:
                continue
            while handle.pong_seq < sequence and handle.state == UP:
                readable, _, _ = select.select([handle.sock], [], [], timeout)
                if not readable:
                    self._heartbeat_losses_c.inc()
                    self._on_worker_death(handle, reason="heartbeat")
                    break
                self._read_one(handle)
            if handle.pong_seq >= sequence:
                pongs += 1
        return pongs

    def kill_worker(self, index: int) -> None:
        """SIGKILL one worker process (the chaos harness's crash lever).

        Death is *not* marked here: the supervisor discovers it the
        same way it discovers a real crash — EOF on the socket — so the
        drill exercises the genuine detection path.
        """
        handle = self.workers[index]
        if handle.process is not None and handle.process.is_alive():
            os.kill(handle.process.pid, signal.SIGKILL)
            handle.process.join(timeout=5.0)

    def worker_pids(self) -> List[Optional[int]]:
        return [
            h.process.pid if h.process is not None else None for h in self.workers
        ]

    def alive_workers(self) -> int:
        return sum(1 for h in self.workers if h.state == UP)

    # ------------------------------------------------------------------
    # Synchronous server surface (what the gateway wraps)
    # ------------------------------------------------------------------
    def _call(
        self,
        kind: str,
        entity_id: int,
        relation: int = -1,
        k: int = 10,
        deadline=None,
    ) -> PoolResponse:
        budget = deadline.remaining() if deadline is not None else None
        request_id = self.submit(
            kind, entity_id, relation=relation, k=k, budget=budget
        )
        for batch in self.coalescer.flush_all():
            self._dispatch(batch)
        while request_id not in self._terminal:
            self._poll(timeout=self.config.io_timeout, hang_is_death=True)
            if request_id in self._terminal:
                break
            if not self._inflight_total():
                for batch in self.coalescer.flush_all():
                    self._dispatch(batch)
        # Sync calls answer inline; keep them out of the async stream.
        self._emitted = [
            r for r in self._emitted if r.request_id != request_id
        ]
        return self._terminal[request_id]

    def _raise_for(self, response: PoolResponse):
        if response.outcome == STATUS_UNKNOWN:
            raise KeyError(response.entity_id)
        if response.outcome == STATUS_QUARANTINED and isinstance(
            response.payload, tuple
        ):
            table, row, shard, page = response.payload
            raise QuarantinedRowError(table, int(row), int(shard), int(page))
        raise PoolError(
            f"request {response.request_id} failed with {response.outcome!r}"
        )

    def serve(self, entity_id: int, deadline=None) -> ServiceVectors:
        """Service vectors for one item, computed by a worker process.

        ``deadline`` is an optional
        :class:`~repro.reliability.admission.Deadline`; its remaining
        budget rides the wire with the request, so the *worker* cancels
        expired items before touching the store.  The gateway's
        ``TimedBackend`` detects this parameter and threads its own
        budget through — worker pools get end-to-end deadline
        propagation with no gateway changes.
        """
        response = self._call("serve", entity_id, deadline=deadline)
        if response.outcome != STATUS_OK:
            self._raise_for(response)
        key_relations, triple, relation = response.payload
        return ServiceVectors(
            entity_id=int(entity_id),
            key_relations=key_relations,
            triple_vectors=triple,
            relation_vectors=relation,
        )

    def nearest_tails(
        self, entity_id: int, relation: int, k: int = 10, deadline=None
    ):
        """One nearest-tails query, answered by a worker process."""
        response = self._call(
            "retrieve", entity_id, relation=relation, k=k, deadline=deadline
        )
        if response.outcome != STATUS_OK:
            self._raise_for(response)
        distances, neighbor_ids = response.payload
        return distances, neighbor_ids

    def relation_existence_score(
        self, entity_id: int, relation: int, deadline=None
    ) -> float:
        response = self._call(
            "exist", entity_id, relation=relation, deadline=deadline
        )
        if response.outcome != STATUS_OK:
            self._raise_for(response)
        return float(response.payload)

    def explain(self, entity_id: int, relation: int, deadline=None) -> dict:
        """One explanation, computed worker-side from the store sidecar.

        Returns the explanation's canonical dict (the wire/CRC form);
        a store without a ``scenarios.json`` sidecar answers every
        explain with an ``"error"`` outcome, surfaced as
        :class:`PoolError`.
        """
        response = self._call("explain", entity_id, relation=relation, deadline=deadline)
        if response.outcome != STATUS_OK:
            self._raise_for(response)
        return response.payload

    def recommend(self, entity_id: int, k: int = 10, deadline=None):
        """Top-``k`` service-vector neighbors, computed worker-side."""
        response = self._call("recommend", entity_id, k=k, deadline=deadline)
        if response.outcome != STATUS_OK:
            self._raise_for(response)
        distances, neighbor_ids = response.payload
        return distances, neighbor_ids
