"""Process-level chaos: SIGKILL workers mid-load, prove exactly-once.

:func:`run_kill_drill` drives a seeded mixed workload (service
vectors, existence scores, nearest-tail retrievals, plus a sprinkle of
unknown ids) through a :class:`~repro.serving.supervisor.Supervisor`
while killing live workers at fixed request indices.  It then asserts
the pool's exactly-once contract: every submitted request has exactly
one terminal outcome, no duplicates were emitted, and at least one
worker death was actually detected per kill.

The transcript is deliberately *timing-invariant*: each line records
``(request id, kind, entity, relation, outcome, payload CRC32)`` —
never which worker answered or whether a replay happened.  Primary and
failover sibling read the same store, so the payload bytes (and hence
the CRC) are identical either way; OS scheduling decides only *where*
a request is answered, never *what* the answer is.  That is what makes
two runs of the drill byte-identical, which the check.sh / CI gates
verify with a literal ``diff``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.metrics import MetricsRegistry
from ..reliability.retry import StepClock
from .protocol import PoolResponse
from .supervisor import PoolConfig, Supervisor


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs for one kill drill."""

    requests: int = 240
    workers: int = 3
    kill_at: Tuple[int, ...] = (60, 140)  # request indices
    kill_workers: Tuple[int, ...] = (0, 1)  # which worker dies at each
    window: int = 8  # max outstanding requests
    seed: int = 0
    serve_prob: float = 0.55
    exist_prob: float = 0.2  # remainder is retrieve
    unknown_prob: float = 0.05
    k: int = 5
    tick: float = 0.001  # virtual seconds between arrivals
    max_batch: int = 4
    max_delay: float = 0.004
    deadline_budget: float = 64.0
    cache_pages: int = 64
    scrub_pages_per_tick: int = 0

    def __post_init__(self) -> None:
        if len(self.kill_at) != len(self.kill_workers):
            raise ValueError("kill_at and kill_workers must pair up")
        if self.workers < 2 and self.kill_at:
            raise ValueError("killing workers needs at least 2 of them")


@dataclass
class ChaosReport:
    """Everything the drill measured, split deterministic / operational."""

    requests: int
    workers: int
    kills: int
    outcomes: Dict[str, int]
    transcript: List[str]
    exactly_once: bool
    duplicates: int
    operational: Dict[str, int]  # timing-dependent counters (not diffed)

    @property
    def ok(self) -> bool:
        return (
            self.exactly_once
            and self.duplicates == 0
            and self.outcomes.get("failed", 0) == 0
            and self.outcomes.get("ok", 0) > 0
            and self.operational.get("worker_deaths", 0) >= self.kills
        )

    def lines(self) -> List[str]:
        """The byte-diffable transcript (deterministic across runs)."""
        out = [
            f"serve chaos: {self.requests} requests | {self.workers} workers "
            f"| {self.kills} SIGKILLs"
        ]
        out.extend(self.transcript)
        out.append(
            "outcomes: "
            + " | ".join(
                f"{name} {self.outcomes.get(name, 0)}"
                for name in ("ok", "unknown-id", "quarantined", "deadline", "failed")
            )
        )
        status = "PASS" if self.exactly_once and self.duplicates == 0 else "FAIL"
        out.append(
            f"exactly-once: {status} ({self.requests} submitted, "
            f"{sum(self.outcomes.values())} terminal, "
            f"{self.duplicates} duplicates)"
        )
        out.append(f"drill: {'RECOVERED' if self.ok else 'FAILED'}")
        return out

    def detail_lines(self) -> List[str]:
        """Operational counters — real-timing dependent, never diffed."""
        return [
            f"  {name} {value}" for name, value in sorted(self.operational.items())
        ]


def _pick_request(
    rng: np.random.Generator,
    config: ChaosConfig,
    item_ids: Sequence[int],
    num_entities: int,
    num_relations: int,
) -> Tuple[str, int, int]:
    """(kind, entity, relation) for one seeded arrival."""
    draw = float(rng.random())
    if draw < config.serve_prob:
        kind = "serve"
    elif draw < config.serve_prob + config.exist_prob:
        kind = "exist"
    else:
        kind = "retrieve"
    if float(rng.random()) < config.unknown_prob:
        entity = num_entities + int(rng.integers(0, 1000))
    elif kind == "serve":
        entity = int(item_ids[int(rng.integers(0, len(item_ids)))])
    else:
        entity = int(rng.integers(0, num_entities))
    relation = int(rng.integers(0, num_relations))
    return kind, entity, relation


def _transcript_line(response: PoolResponse) -> str:
    return (
        f"{response.request_id:05d} {response.kind:<8s} "
        f"entity={response.entity_id:<8d} rel={response.relation:<4d} "
        f"outcome={response.outcome:<12s} crc={response.checksum:08x}"
    )


def run_kill_drill(
    store_dir,
    item_ids: Sequence[int],
    config: Optional[ChaosConfig] = None,
    registry: Optional[MetricsRegistry] = None,
) -> ChaosReport:
    """Run the seeded kill drill against a store directory."""
    config = config if config is not None else ChaosConfig()
    registry = registry if registry is not None else MetricsRegistry()
    clock = StepClock()
    pool = Supervisor(
        store_dir,
        PoolConfig(
            num_workers=config.workers,
            max_batch=config.max_batch,
            max_delay=config.max_delay,
            deadline_budget=config.deadline_budget,
            cache_pages=config.cache_pages,
            scrub_pages_per_tick=config.scrub_pages_per_tick,
        ),
        clock=clock,
        registry=registry,
    )
    pool.start()
    rng = np.random.default_rng(config.seed)
    kills = dict(zip(config.kill_at, config.kill_workers))
    kills_fired = 0
    try:
        for index in range(config.requests):
            if index in kills:
                pool.kill_worker(kills[index])
                kills_fired += 1
            clock.advance(config.tick)
            kind, entity, relation = _pick_request(
                rng, config, item_ids, pool.num_entities, pool.num_relations
            )
            pool.submit(kind, entity, relation=relation, k=config.k)
            pool.pump()
            while pool.outstanding() > config.window:
                pool.wait_any()
        pool.drain()
        terminal = pool.terminal()
        duplicates = int(registry.counter("pool.duplicates_dropped").value)
        operational = {
            name: int(registry.counter(f"pool.{name}").value)
            for name in (
                "worker_deaths",
                "worker_restarts",
                "replays",
                "failovers",
                "batches_sent",
                "heartbeat_losses",
            )
        }
    finally:
        pool.shutdown()
    exactly_once = sorted(terminal) == list(range(config.requests)) and len(
        {r.idempotency_key for r in terminal.values()}
    ) == len(terminal)
    outcomes: Dict[str, int] = {}
    transcript = []
    for request_id in sorted(terminal):
        response = terminal[request_id]
        outcomes[response.outcome] = outcomes.get(response.outcome, 0) + 1
        transcript.append(_transcript_line(response))
    return ChaosReport(
        requests=config.requests,
        workers=config.workers,
        kills=kills_fired,
        outcomes=outcomes,
        transcript=transcript,
        exactly_once=exactly_once,
        duplicates=duplicates,
        operational=operational,
    )
