"""Wire protocol for the supervisor ⇄ worker socket link.

Frames are length-prefixed pickles: a 4-byte big-endian payload size
followed by the pickled message.  Messages are plain tuples tagged by
their first element::

    supervisor → worker
        ("batch", kind, k, [(request_id, entity_id, relation, budget), ...])
        ("ping", seq)
        ("shutdown",)
    worker → supervisor
        ("ready", worker_id, num_entities)
        ("results", [(request_id, status, payload), ...])
        ("pong", seq, served_total)

The framing is deliberately dumb: no negotiation, no versioning, no
partial writes — a worker is a child of the supervisor created over a
``socketpair``, so both ends always run the same code.  What the
protocol *does* guarantee is that a frame is either read whole or not
at all: :func:`recv_frame` returns ``None`` only on a clean EOF at a
frame boundary and raises :class:`ProtocolError` on a torn frame, and
:func:`drain_frames` recovers every complete frame a dead worker left
behind in the kernel socket buffer — the piece that lets the
supervisor tell "answered before the crash" from "orphaned by it".

Each batch item carries the request's remaining virtual deadline
``budget`` as its fourth field, so the cancellation decision the
gateway makes up front is re-checked *inside* the worker: an item
whose budget is already spent answers ``STATUS_DEADLINE`` without
touching the store.  Workers still accept legacy three-field items
(``budget`` is then treated as unbounded) — the protocol tests and any
hand-built batch keep working unchanged.
"""

from __future__ import annotations

import json
import pickle
import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional

_HEADER = struct.Struct(">I")

#: Refuse absurd frame sizes (a torn header read as a length would
#: otherwise ask for gigabytes).
MAX_FRAME_BYTES = 256 << 20

#: Per-request result statuses a worker can report.
STATUS_OK = "ok"
STATUS_UNKNOWN = "unknown-id"
STATUS_QUARANTINED = "quarantined"
STATUS_DEADLINE = "deadline"
STATUS_ERROR = "error"

#: Request kinds the pool understands.  The first three coalesce into
#: the batched kernels ``PKGMServer`` already exposes; ``explain`` and
#: ``recommend`` are the scenario kinds served by the per-worker
#: engines in :mod:`repro.scenarios.service`.
KINDS = ("serve", "retrieve", "exist", "explain", "recommend")


class ProtocolError(RuntimeError):
    """A frame was torn, oversized, or otherwise unparseable."""


def shard_of(entity_id: int, num_workers: int) -> int:
    """Worker affinity for an entity — same modulo rule as the
    parameter-server and strided-store shard maps.

    Every worker opens the *full* store read-only, so the shard map is
    an affinity (page-cache locality) choice, not a correctness one —
    which is exactly what makes sibling failover trivially safe.
    """
    return int(entity_id) % int(num_workers)


@dataclass(frozen=True)
class PoolRequest:
    """One admitted request and its routing/deadline envelope."""

    request_id: int
    idempotency_key: str
    kind: str  # one of KINDS
    entity_id: int
    relation: int
    k: int
    deadline_at: float  # virtual StepClock timestamp
    shard: int
    attempts: int = 0  # dispatches so far (replays increment)


@dataclass(frozen=True)
class PoolResponse:
    """Exactly one terminal answer per submitted request."""

    request_id: int
    idempotency_key: str
    kind: str
    entity_id: int
    relation: int
    outcome: str  # "ok" | "unknown-id" | "quarantined" | "deadline" | "failed"
    payload: object
    checksum: int  # CRC32 of the payload bytes (0 for non-ok outcomes)
    worker: int  # index that answered (-1 for supervisor-side outcomes)
    replayed: bool = False

    @property
    def ok(self) -> bool:
        return self.outcome == STATUS_OK


def encode(message: object) -> bytes:
    """One message as frame-body bytes (pickle protocol 4)."""
    return pickle.dumps(message, protocol=4)


def decode(data: bytes) -> object:
    """Frame-body bytes back to a message; damage is a ProtocolError."""
    try:
        return pickle.loads(data)
    except Exception as error:  # unpickling failures are protocol damage
        raise ProtocolError(f"undecodable frame: {error}") from error


def send_frame(sock, message: object) -> None:
    """Write one length-prefixed frame (raises ``OSError`` on a dead peer)."""
    body = encode(message)
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds the cap")
    sock.sendall(_HEADER.pack(len(body)) + body)


def _recv_exact(sock, count: int) -> Optional[bytes]:
    """``count`` bytes, ``None`` on EOF before the first byte."""
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if chunks:
                raise ProtocolError(
                    f"EOF mid-frame ({count - remaining}/{count} bytes)"
                )
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock) -> Optional[object]:
    """One decoded frame; ``None`` on clean EOF at a frame boundary."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"declared frame of {length} bytes exceeds the cap")
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("EOF between header and body")
    return decode(body)


def drain_frames(sock) -> List[object]:
    """Every complete frame still buffered on a (possibly dead) socket.

    Used by the supervisor's death handler: responses a worker wrote
    before being SIGKILLed survive in the kernel buffer and must be
    credited as completed — otherwise a replay would double-execute
    them.  A trailing partial frame (torn by the crash) is discarded.
    """
    frames: List[object] = []
    try:
        sock.setblocking(False)
    except OSError:
        return frames
    while True:
        try:
            message = recv_frame(sock)
        except (BlockingIOError, ProtocolError, OSError):
            break
        if message is None:
            break
        frames.append(message)
    return frames


def payload_checksum(kind: str, payload: object) -> int:
    """Deterministic CRC32 of an ``ok`` payload's bytes.

    The chaos transcript records this instead of which worker answered:
    primary and failover sibling read the same store, so the checksum
    is invariant under crash/replay timing — the property that makes
    the kill-drill transcript byte-identical across runs.
    """
    if kind == "serve":
        key_relations, triple, relation = payload
        data = key_relations.tobytes() + triple.tobytes() + relation.tobytes()
    elif kind == "retrieve":
        distances, neighbor_ids = payload
        data = distances.tobytes() + neighbor_ids.tobytes()
    elif kind == "exist":
        data = struct.pack(">d", float(payload))
    elif kind == "recommend":
        distances, neighbor_ids = payload
        data = distances.tobytes() + neighbor_ids.tobytes()
    elif kind == "explain":
        # The payload is the explanation's canonical dict; canonical
        # JSON makes the CRC independent of dict construction order.
        data = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
            "utf-8"
        )
    else:
        raise ValueError(f"unknown request kind {kind!r}")
    return zlib.crc32(data) & 0xFFFFFFFF
