"""Child-process entry point: serve batched requests over one store.

A worker is forked by the :class:`~repro.serving.supervisor.Supervisor`
with one end of a ``socketpair``.  It opens the embedding store
read-only (its own mmap handles, its own page cache, its own
quarantine set — nothing is shared with the parent), announces
``("ready", ...)``, then answers ``("batch", ...)`` frames until EOF
or ``("shutdown",)``.

Batches exploit the kernels the server already has: an ``"exist"``
batch is one :meth:`PKGMServer.relation_existence_scores` call and a
``"retrieve"`` batch one :meth:`PKGMServer.nearest_tails_batch` call
(the coalescer groups by ``k`` so the whole batch shares one search).
Per-item failures — unknown ids, quarantined pages — degrade that one
item to an error status, never the batch and never the process.

Everything here is deliberately crash-isolated: the function touches
no module-level state, never prints, and treats any socket error as
"the supervisor is gone" and exits.  Killing a worker with SIGKILL at
any instruction leaves the store files untouched (they are opened
read-only) and at most one torn frame in the socket, which the
supervisor's :func:`~repro.serving.protocol.drain_frames` discards.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..store.errors import QuarantinedRowError
from .protocol import (
    ProtocolError,
    STATUS_DEADLINE,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_QUARANTINED,
    STATUS_UNKNOWN,
    recv_frame,
    send_frame,
)

#: (request_id, entity_id, relation, budget) — one wire item of a
#: batch.  ``budget`` is the request's remaining virtual deadline at
#: dispatch; ``None`` (or a legacy three-field item) means unbounded.
WireItem = Tuple[int, int, int, object]
#: (request_id, entity_id, relation) — an item past its deadline
#: check, the shape the kernel helpers consume.
LiveItem = Tuple[int, int, int]
#: (request_id, status, payload) — one wire result.
WireResult = Tuple[int, str, object]


def _normalize_items(items: Sequence) -> List[WireItem]:
    """Accept three- or four-field wire items; missing budget = None."""
    return [
        (item[0], item[1], item[2], item[3] if len(item) > 3 else None)
        for item in items
    ]


def _expired(budget: object) -> bool:
    return budget is not None and float(budget) <= 0.0


def _quarantine_info(error: QuarantinedRowError) -> Tuple[str, int, int, int]:
    """The fields needed to re-raise the error supervisor-side."""
    return (error.table, error.row, error.shard, error.page)


def _serve_item(server, request_id: int, entity_id: int) -> WireResult:
    try:
        vectors = server.serve(int(entity_id))
    except QuarantinedRowError as error:
        return (request_id, STATUS_QUARANTINED, _quarantine_info(error))
    except (KeyError, IndexError):
        return (request_id, STATUS_UNKNOWN, None)
    return (
        request_id,
        STATUS_OK,
        (vectors.key_relations, vectors.triple_vectors, vectors.relation_vectors),
    )


def _exist_item(server, request_id: int, entity_id: int, relation: int) -> WireResult:
    try:
        score = server.relation_existence_score(int(entity_id), int(relation))
    except QuarantinedRowError as error:
        return (request_id, STATUS_QUARANTINED, _quarantine_info(error))
    except (KeyError, IndexError):
        return (request_id, STATUS_UNKNOWN, None)
    return (request_id, STATUS_OK, float(score))


def _retrieve_item(
    server, request_id: int, entity_id: int, relation: int, k: int
) -> WireResult:
    try:
        distances, neighbor_ids = server.nearest_tails(
            int(entity_id), int(relation), int(k)
        )
    except QuarantinedRowError as error:
        return (request_id, STATUS_QUARANTINED, _quarantine_info(error))
    except (KeyError, IndexError):
        return (request_id, STATUS_UNKNOWN, None)
    return (request_id, STATUS_OK, (distances, neighbor_ids))


def _valid_pairs(server, items: Sequence[LiveItem]) -> np.ndarray:
    """Mask of items whose (entity, relation) indices are in range —
    the precondition for running the whole batch through one kernel."""
    entities = np.asarray([item[1] for item in items], dtype=np.int64)
    relations = np.asarray([item[2] for item in items], dtype=np.int64)
    return (
        (entities >= 0)
        & (entities < server.num_entities)
        & (relations >= 0)
        & (relations < server.num_relations)
    )


def _exist_batch(server, items: Sequence[LiveItem]) -> List[WireResult]:
    valid = _valid_pairs(server, items)
    if not valid.all():
        return [
            _exist_item(server, rid, entity, relation)
            if ok
            else (rid, STATUS_UNKNOWN, None)
            for ok, (rid, entity, relation) in zip(valid, items)
        ]
    entities = [item[1] for item in items]
    relations = [item[2] for item in items]
    try:
        scores = server.relation_existence_scores(entities, relations)
    except QuarantinedRowError:
        # One damaged page fails the fused kernel; retry item-by-item so
        # only the requests that actually touch it degrade.
        return [_exist_item(server, *item) for item in items]
    return [
        (rid, STATUS_OK, float(score))
        for (rid, _, _), score in zip(items, scores)
    ]


def _retrieve_batch(server, items: Sequence[LiveItem], k: int) -> List[WireResult]:
    valid = _valid_pairs(server, items)
    if not valid.all():
        return [
            _retrieve_item(server, rid, entity, relation, k)
            if ok
            else (rid, STATUS_UNKNOWN, None)
            for ok, (rid, entity, relation) in zip(valid, items)
        ]
    heads = [item[1] for item in items]
    relations = [item[2] for item in items]
    try:
        distances, neighbor_ids = server.nearest_tails_batch(heads, relations, k)
    except QuarantinedRowError:
        return [_retrieve_item(server, *item, k) for item in items]
    return [
        (rid, STATUS_OK, (distances[row], neighbor_ids[row]))
        for row, (rid, _, _) in enumerate(items)
    ]


def _explain_item(
    scenarios, request_id: int, entity_id: int, relation: int
) -> WireResult:
    if scenarios is None:
        return (request_id, STATUS_ERROR, "worker has no scenario engines")
    try:
        payload = scenarios.explain(int(entity_id), int(relation))
    except QuarantinedRowError as error:
        return (request_id, STATUS_QUARANTINED, _quarantine_info(error))
    except (KeyError, IndexError):
        return (request_id, STATUS_UNKNOWN, None)
    except RuntimeError as error:  # missing sidecar: degrade, don't die
        return (request_id, STATUS_ERROR, str(error))
    return (request_id, STATUS_OK, payload)


def _recommend_item(
    scenarios, request_id: int, entity_id: int, k: int
) -> WireResult:
    if scenarios is None:
        return (request_id, STATUS_ERROR, "worker has no scenario engines")
    try:
        distances, neighbor_ids = scenarios.recommend(int(entity_id), int(k))
    except QuarantinedRowError as error:
        return (request_id, STATUS_QUARANTINED, _quarantine_info(error))
    except (KeyError, IndexError):
        return (request_id, STATUS_UNKNOWN, None)
    return (request_id, STATUS_OK, (distances, neighbor_ids))


def run_batch(
    server, kind: str, k: int, items: Sequence, scenarios=None
) -> List[WireResult]:
    """Answer one coalesced batch; every item gets exactly one result.

    Items whose deadline budget is already spent are cancelled here —
    before any kernel or store page is touched — with
    ``STATUS_DEADLINE``; only the still-live remainder runs.  The
    scenario kinds (``explain`` / ``recommend``) go through the
    optional per-process ``scenarios`` engines; without them every
    scenario item answers ``STATUS_ERROR``.
    """
    normalized = _normalize_items(items)
    results: List[WireResult] = [
        (rid, STATUS_DEADLINE, None)
        for rid, _, _, budget in normalized
        if _expired(budget)
    ]
    live = [
        (rid, entity, relation)
        for rid, entity, relation, budget in normalized
        if not _expired(budget)
    ]
    if not live:
        return results
    if kind == "serve":
        results.extend(_serve_item(server, rid, entity) for rid, entity, _ in live)
    elif kind == "exist":
        results.extend(_exist_batch(server, live))
    elif kind == "retrieve":
        results.extend(_retrieve_batch(server, live, k))
    elif kind == "explain":
        results.extend(
            _explain_item(scenarios, rid, entity, relation)
            for rid, entity, relation in live
        )
    elif kind == "recommend":
        results.extend(
            _recommend_item(scenarios, rid, entity, k) for rid, entity, _ in live
        )
    else:
        results.extend(
            (rid, STATUS_ERROR, f"unknown kind {kind!r}") for rid, _, _ in live
        )
    return results


def worker_main(
    sock, store_dir: str, worker_id: int, cache_pages: int = 64
) -> None:
    """Process entry: open the store, then serve frames until EOF."""
    # Imported here, not at module level: the fork inherits the parent's
    # modules anyway, and keeping this file import-light keeps the
    # protocol tests free of the numpy-heavy service stack.
    from ..core.service import PKGMServer
    from ..scenarios.service import WorkerScenarios

    try:
        server = PKGMServer.from_store(store_dir, cache_pages=cache_pages)
    except Exception as error:
        try:
            send_frame(sock, ("fail", int(worker_id), repr(error)))
        except OSError:  # repro-lint: disable=bare-except
            pass  # supervisor hung up first; it will see EOF regardless
        return
    scenarios = WorkerScenarios(server, store_dir)
    served = 0
    try:
        send_frame(sock, ("ready", int(worker_id), int(server.num_entities)))
        while True:
            message = recv_frame(sock)
            if message is None:
                return
            tag = message[0]
            if tag == "shutdown":
                return
            if tag == "ping":
                send_frame(sock, ("pong", message[1], served))
                continue
            if tag == "batch":
                _, kind, k, items = message
                results = run_batch(server, kind, int(k), items, scenarios)
                served += len(items)
                send_frame(sock, ("results", int(worker_id), results))
                continue
            # Unknown frame tag: a protocol drift bug, not recoverable.
            return
    except (OSError, ProtocolError):
        # The supervisor died or the link tore: exit quietly, the
        # process has no state worth saving.
        return
