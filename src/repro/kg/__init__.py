"""Knowledge graph substrate: storage, queries, sampling, splitting, stats.

This package replaces the symbolic side of Alibaba's product KG
infrastructure: the indexed triple store, the two query services of
§II, the Graph-learn edge sampler, negative sampling, and dataset
splits including the incompleteness hold-out used to test PKGM's
completion-during-service capability.
"""

from .graph import (
    connected_component_sizes,
    degree_statistics,
    shared_value_neighbors,
    to_networkx,
)
from .negatives import BernoulliNegativeSampler, UniformNegativeSampler
from .queries import (
    QueryEngine,
    RelationQueryResult,
    TripleQueryResult,
    recover_all_triples,
)
from .rules import Rule, RuleCompleter, RuleMiner
from .sampling import EdgeBatch, EdgeSampler
from .splits import TripleSplit, holdout_incompleteness, split_triples
from .stats import KGStatistics, kg_statistics, relation_frequency_table
from .store import Triple, TripleStore
from .vocab import EntityVocabulary, RelationVocabulary, Vocabulary

__all__ = [
    "BernoulliNegativeSampler",
    "EdgeBatch",
    "EdgeSampler",
    "EntityVocabulary",
    "KGStatistics",
    "QueryEngine",
    "RelationQueryResult",
    "RelationVocabulary",
    "Rule",
    "RuleCompleter",
    "RuleMiner",
    "Triple",
    "TripleQueryResult",
    "TripleSplit",
    "TripleStore",
    "UniformNegativeSampler",
    "connected_component_sizes",
    "degree_statistics",
    "shared_value_neighbors",
    "to_networkx",
    "Vocabulary",
    "holdout_incompleteness",
    "kg_statistics",
    "recover_all_triples",
    "relation_frequency_table",
    "split_triples",
]
