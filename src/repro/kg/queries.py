"""Symbolic query layer over :class:`repro.kg.TripleStore`.

Implements the two query forms from §II of the paper as small result
objects, so examples and tests can demonstrate the *symbolic* service
that PKGM's vector-space service replaces:

.. code-block:: sparql

    SELECT ?t WHERE { h r ?t }      # triple query
    SELECT ?r WHERE { h ?r ?t }     # relation query

"Combining these two types of queries, we could recover all triples in
a knowledge graph" — :func:`recover_all_triples` does exactly that and
is property-tested against the store contents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

from .store import TripleStore


@dataclass(frozen=True)
class TripleQueryResult:
    """Answer to ``SELECT ?t WHERE {h r ?t}``."""

    head: int
    relation: int
    tails: Tuple[int, ...]

    @property
    def exists(self) -> bool:
        return bool(self.tails)


@dataclass(frozen=True)
class RelationQueryResult:
    """Answer to ``SELECT ?r WHERE {h ?r ?t}``."""

    head: int
    relations: Tuple[int, ...]

    def has(self, relation: int) -> bool:
        return relation in self.relations


class QueryEngine:
    """Executes the paper's two symbolic query shapes against a store."""

    def __init__(self, store: TripleStore) -> None:
        self._store = store

    def triple_query(self, head: int, relation: int) -> TripleQueryResult:
        """``SELECT ?t WHERE {head relation ?t}``."""
        return TripleQueryResult(
            head=head,
            relation=relation,
            tails=tuple(self._store.tails(head, relation)),
        )

    def relation_query(self, head: int) -> RelationQueryResult:
        """``SELECT ?r WHERE {head ?r ?t}``."""
        return RelationQueryResult(
            head=head,
            relations=tuple(sorted(self._store.relations_of(head))),
        )


def recover_all_triples(engine: QueryEngine, store: TripleStore) -> Set[Tuple[int, int, int]]:
    """Reconstruct the full triple set using only the two query services.

    Demonstrates the paper's claim that triple queries plus relation
    queries are sufficient to recover every triple: for each head, ask
    which relations it has, then ask for the tails of each (head,
    relation) pair.
    """
    recovered: Set[Tuple[int, int, int]] = set()
    for head in store.heads():
        relations = engine.relation_query(head).relations
        for relation in relations:
            result = engine.triple_query(head, relation)
            for tail in result.tails:
                recovered.add((head, relation, tail))
    return recovered
