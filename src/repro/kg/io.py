"""Serialization for triple stores and vocabularies.

Two formats:

* TSV — human-inspectable ``head\\trelation\\ttail`` label files, the
  lingua franca of public KGE datasets (FB15k-style).
* NPZ — compact integer arrays for fast reload of large synthetic KGs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from .store import TripleStore
from .vocab import EntityVocabulary, RelationVocabulary

PathLike = Union[str, Path]


def save_triples_tsv(
    path: PathLike,
    store: TripleStore,
    entities: EntityVocabulary,
    relations: RelationVocabulary,
) -> None:
    """Write triples as tab-separated labels, one per line."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for triple in store:
            handle.write(
                f"{entities.label_of(triple.head)}\t"
                f"{relations.label_of(triple.relation)}\t"
                f"{entities.label_of(triple.tail)}\n"
            )


def load_triples_tsv(
    path: PathLike,
) -> Tuple[TripleStore, EntityVocabulary, RelationVocabulary]:
    """Read a TSV triple file, building fresh vocabularies.

    Entities appearing as heads are registered as items (the product KG
    convention: items are always subjects of property triples).
    """
    entities = EntityVocabulary()
    relations = RelationVocabulary()
    store = TripleStore()
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise ValueError(f"{path}:{line_no}: expected 3 columns, got {len(parts)}")
            head, relation, tail = parts
            h = entities.add_item(head)
            r = relations.add_property(relation)
            t = entities.add_value(tail)
            store.add(h, r, t)
    return store, entities, relations


def save_kg_npz(
    path: PathLike,
    store: TripleStore,
    entities: EntityVocabulary,
    relations: RelationVocabulary,
) -> None:
    """Save store + vocabularies to a single compressed npz file."""
    path = Path(path)
    np.savez_compressed(
        path,
        triples=store.to_array(),
        entity_labels=np.asarray(entities.labels(), dtype=object),
        item_ids=np.asarray(entities.item_ids(), dtype=np.int64),
        relation_labels=np.asarray(relations.labels(), dtype=object),
        property_ids=np.asarray(relations.property_ids(), dtype=np.int64),
    )


def load_kg_npz(
    path: PathLike,
) -> Tuple[TripleStore, EntityVocabulary, RelationVocabulary]:
    """Load a KG saved by :func:`save_kg_npz`."""
    path = Path(path)
    with np.load(path, allow_pickle=True) as data:
        triples = data["triples"]
        entity_labels = list(data["entity_labels"])
        item_ids = set(int(i) for i in data["item_ids"])
        relation_labels = list(data["relation_labels"])
        property_ids = set(int(i) for i in data["property_ids"])

    entities = EntityVocabulary()
    for i, label in enumerate(entity_labels):
        if i in item_ids:
            entities.add_item(str(label))
        else:
            entities.add_value(str(label))
    relations = RelationVocabulary()
    for i, label in enumerate(relation_labels):
        if i in property_ids:
            relations.add_property(str(label))
        else:
            relations.add_item_relation(str(label))
    store = TripleStore(map(tuple, triples))
    return store, entities, relations
