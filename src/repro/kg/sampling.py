"""Edge sampling — the Graph-learn substitute.

The paper trains PKGM with Alibaba's Graph-learn, "a large-scale
distributed framework for node and edge sampling", using edge sampling
with one negative per edge.  :class:`EdgeSampler` reproduces that data
path single-process: shuffled epochs over the edge (triple) list,
fixed-size minibatches, and ``negatives_per_edge`` corruptions attached
to each batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from .negatives import UniformNegativeSampler
from .store import TripleStore


@dataclass
class EdgeBatch:
    """One training minibatch: positives and aligned negatives.

    ``negatives`` has shape (negatives_per_edge, batch, 3); row ``k`` is
    the k-th corruption of each positive.
    """

    positives: np.ndarray
    negatives: np.ndarray

    def __len__(self) -> int:
        return len(self.positives)


class EdgeSampler:
    """Minibatch iterator over KG edges with attached negatives.

    Parameters
    ----------
    store:
        The training triple store.
    batch_size:
        Edges per minibatch (the paper used 1000).
    negative_sampler:
        Corruption strategy; defaults to the paper's uniform sampler
        (1 negative per edge) when constructed via :meth:`with_uniform`.
    negatives_per_edge:
        Number of corruptions per positive (paper: 1).
    rng:
        Generator driving the epoch shuffle.
    drop_last:
        Whether to drop a trailing partial batch.
    """

    def __init__(
        self,
        store: TripleStore,
        batch_size: int,
        negative_sampler,
        negatives_per_edge: int = 1,
        rng: Optional[np.random.Generator] = None,
        drop_last: bool = False,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if negatives_per_edge < 1:
            raise ValueError("negatives_per_edge must be >= 1")
        if len(store) == 0:
            raise ValueError("cannot sample edges from an empty store")
        self.triples = store.to_array()
        self.batch_size = batch_size
        self.negative_sampler = negative_sampler
        self.negatives_per_edge = negatives_per_edge
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.drop_last = drop_last

    @classmethod
    def with_uniform(
        cls,
        store: TripleStore,
        batch_size: int,
        num_entities: int,
        num_relations: int,
        rng: Optional[np.random.Generator] = None,
        negatives_per_edge: int = 1,
        filtered: bool = False,
        corrupt_relation_prob: float = 0.1,
    ) -> "EdgeSampler":
        """Build with the paper's uniform corruption sampler."""
        rng = rng if rng is not None else np.random.default_rng(0)
        sampler = UniformNegativeSampler(
            num_entities=num_entities,
            num_relations=num_relations,
            rng=rng,
            corrupt_relation_prob=corrupt_relation_prob,
            filter_store=store if filtered else None,
        )
        return cls(
            store,
            batch_size=batch_size,
            negative_sampler=sampler,
            negatives_per_edge=negatives_per_edge,
            rng=rng,
        )

    def epoch(self) -> Iterator[EdgeBatch]:
        """Yield shuffled minibatches covering every edge once."""
        order = self.rng.permutation(len(self.triples))
        for start in range(0, len(order), self.batch_size):
            index = order[start : start + self.batch_size]
            if self.drop_last and len(index) < self.batch_size:
                return
            positives = self.triples[index]
            negatives = np.stack(
                [
                    self.negative_sampler.corrupt_batch(positives)
                    for _ in range(self.negatives_per_edge)
                ]
            )
            yield EdgeBatch(positives=positives, negatives=negatives)

    def num_batches(self) -> int:
        """Batches per epoch given the drop_last policy."""
        full, rem = divmod(len(self.triples), self.batch_size)
        if rem and not self.drop_last:
            return full + 1
        return full
