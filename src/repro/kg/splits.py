"""Train/valid/test splitting and incompleteness hold-outs.

Two distinct splitting needs:

* :func:`split_triples` — the usual train/valid/test partition for link
  prediction evaluation of the KGE substrate.
* :func:`holdout_incompleteness` — removes a fraction of *true* triples
  from the training KG entirely, simulating the incompleteness of the
  real product KG.  PKGM's claimed completion-during-service capability
  (§II-D) is evaluated by asking the service for exactly these held-out
  facts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .store import TripleStore


@dataclass(frozen=True)
class TripleSplit:
    """A train/valid/test partition of a triple set."""

    train: TripleStore
    valid: TripleStore
    test: TripleStore

    def sizes(self) -> Tuple[int, int, int]:
        return (len(self.train), len(self.valid), len(self.test))


def split_triples(
    store: TripleStore,
    valid_fraction: float,
    test_fraction: float,
    rng: np.random.Generator,
) -> TripleSplit:
    """Random split with every entity/relation kept in train when possible.

    A naive random split can put all triples of a rare entity into the
    test set, making it untrainable.  We first reserve, for each entity
    and each relation, one covering triple in train, then split the rest.
    """
    if valid_fraction < 0 or test_fraction < 0 or valid_fraction + test_fraction >= 1:
        raise ValueError("fractions must be nonnegative and sum below 1")
    triples = store.to_array()
    n = len(triples)
    if n == 0:
        raise ValueError("cannot split an empty store")

    reserved = _covering_indices(store, triples)
    free = np.setdiff1d(np.arange(n), reserved)
    free = free[rng.permutation(len(free))]

    n_valid = int(round(n * valid_fraction))
    n_test = int(round(n * test_fraction))
    n_valid = min(n_valid, len(free))
    n_test = min(n_test, len(free) - n_valid)

    valid_idx = free[:n_valid]
    test_idx = free[n_valid : n_valid + n_test]
    train_idx = np.concatenate([reserved, free[n_valid + n_test :]])

    return TripleSplit(
        train=TripleStore(map(tuple, triples[np.sort(train_idx)])),
        valid=TripleStore(map(tuple, triples[np.sort(valid_idx)])),
        test=TripleStore(map(tuple, triples[np.sort(test_idx)])),
    )


def holdout_incompleteness(
    store: TripleStore,
    fraction: float,
    rng: np.random.Generator,
) -> Tuple[TripleStore, TripleStore]:
    """Split into (observed, missing) to simulate KG incompleteness.

    ``missing`` contains true facts the platform never recorded; the
    PKGM completion benches check that ``S_T(h, r)`` still ranks the
    held-out tail highly even though the triple was never trained on.
    Heads that would lose *all* their triples keep at least one, so
    every item remains connected.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError("fraction must be in [0, 1)")
    triples = store.to_array()
    n = len(triples)
    per_head_seen: dict = {}
    keep_one = np.zeros(n, dtype=bool)
    for i, (h, _, _) in enumerate(triples):
        if h not in per_head_seen:
            per_head_seen[h] = i
            keep_one[i] = True

    candidates = np.where(~keep_one)[0]
    n_missing = int(round(n * fraction))
    n_missing = min(n_missing, len(candidates))
    chosen = rng.choice(candidates, size=n_missing, replace=False)
    missing_mask = np.zeros(n, dtype=bool)
    missing_mask[chosen] = True

    observed = TripleStore(map(tuple, triples[~missing_mask]))
    missing = TripleStore(map(tuple, triples[missing_mask]))
    return observed, missing


def _covering_indices(store: TripleStore, triples: np.ndarray) -> np.ndarray:
    """One triple index per entity and per relation, greedily chosen."""
    covered_entities: set = set()
    covered_relations: set = set()
    chosen = []
    for i, (h, r, t) in enumerate(triples):
        if h not in covered_entities or t not in covered_entities or r not in covered_relations:
            chosen.append(i)
            covered_entities.add(h)
            covered_entities.add(t)
            covered_relations.add(r)
    return np.asarray(chosen, dtype=np.int64)
