"""KG statistics in the shape of the paper's Table II.

Table II reports, for PKG-sub: # items, # entity, # relation, # Triples.
:func:`kg_statistics` computes the same row for any store + vocab pair;
the Table II bench prints it next to the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .store import TripleStore
from .vocab import EntityVocabulary, RelationVocabulary


@dataclass(frozen=True)
class KGStatistics:
    """The four columns of the paper's Table II, plus degree detail."""

    num_items: int
    num_entities: int
    num_relations: int
    num_triples: int
    mean_triples_per_item: float
    median_relation_frequency: float

    def as_table_row(self, name: str = "PKG-sub (synthetic)") -> str:
        """Format like Table II: name | # items | # entity | # relation | # Triples."""
        return (
            f"{name} | {self.num_items:,} | {self.num_entities:,} | "
            f"{self.num_relations:,} | {self.num_triples:,}"
        )


def kg_statistics(
    store: TripleStore,
    entities: EntityVocabulary,
    relations: RelationVocabulary,
) -> KGStatistics:
    """Compute Table II statistics for a product KG."""
    item_ids = entities.item_ids()
    triples_per_item = [len(store.triples_with_head(i)) for i in item_ids]
    relation_freq = list(store.relation_counts().values())
    return KGStatistics(
        num_items=entities.num_items,
        num_entities=len(entities),
        num_relations=len(relations),
        num_triples=len(store),
        mean_triples_per_item=float(np.mean(triples_per_item)) if triples_per_item else 0.0,
        median_relation_frequency=float(np.median(relation_freq)) if relation_freq else 0.0,
    )


def relation_frequency_table(store: TripleStore, relations: RelationVocabulary) -> Dict[str, int]:
    """Relation label -> triple count, sorted descending by count."""
    counts = store.relation_counts()
    named = {relations.label_of(r): c for r, c in counts.items()}
    return dict(sorted(named.items(), key=lambda kv: -kv[1]))
