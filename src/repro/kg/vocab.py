"""Bidirectional label <-> integer-id vocabularies for KG symbols.

The paper's product KG distinguishes items from values within the entity
set (E = I ∪ V) and properties from item-item relations within the
relation set (R = P ∪ R').  :class:`EntityVocabulary` and
:class:`RelationVocabulary` preserve those partitions so downstream
code (key-relation selection, service vector lookup) can reason about
them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional


class Vocabulary:
    """Assigns dense integer ids to string labels, insertion-ordered."""

    def __init__(self, labels: Optional[Iterable[str]] = None) -> None:
        self._label_to_id: Dict[str, int] = {}
        self._labels: List[str] = []
        if labels is not None:
            for label in labels:
                self.add(label)

    def add(self, label: str) -> int:
        """Insert ``label`` if new; return its id either way."""
        existing = self._label_to_id.get(label)
        if existing is not None:
            return existing
        new_id = len(self._labels)
        self._label_to_id[label] = new_id
        self._labels.append(label)
        return new_id

    def id_of(self, label: str) -> int:
        """Return the id of ``label``; raises ``KeyError`` if absent."""
        return self._label_to_id[label]

    def label_of(self, index: int) -> str:
        """Return the label with id ``index``; raises ``IndexError`` if absent."""
        if index < 0 or index >= len(self._labels):
            raise IndexError(f"id {index} out of range [0, {len(self._labels)})")
        return self._labels[index]

    def __contains__(self, label: str) -> bool:
        return label in self._label_to_id

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[str]:
        return iter(self._labels)

    def labels(self) -> List[str]:
        """All labels in id order (a copy)."""
        return list(self._labels)


class EntityVocabulary(Vocabulary):
    """Entity vocabulary partitioned into items (I) and values (V)."""

    def __init__(self) -> None:
        super().__init__()
        self._item_ids: set = set()

    def add_item(self, label: str) -> int:
        """Register an item entity (a sellable listing)."""
        eid = self.add(label)
        self._item_ids.add(eid)
        return eid

    def add_value(self, label: str) -> int:
        """Register a value entity (an attribute value like 'Apple')."""
        return self.add(label)

    def is_item(self, index: int) -> bool:
        return index in self._item_ids

    @property
    def num_items(self) -> int:
        return len(self._item_ids)

    def item_ids(self) -> List[int]:
        """All item entity ids, sorted."""
        return sorted(self._item_ids)


class RelationVocabulary(Vocabulary):
    """Relation vocabulary partitioned into properties (P) and item-item
    relations (R')."""

    def __init__(self) -> None:
        super().__init__()
        self._property_ids: set = set()

    def add_property(self, label: str) -> int:
        """Register an item property (brand, color, ...)."""
        rid = self.add(label)
        self._property_ids.add(rid)
        return rid

    def add_item_relation(self, label: str) -> int:
        """Register an item-item relation (same_product_as, ...)."""
        return self.add(label)

    def is_property(self, index: int) -> bool:
        return index in self._property_ids

    @property
    def num_properties(self) -> int:
        return len(self._property_ids)

    def property_ids(self) -> List[int]:
        """All property relation ids, sorted."""
        return sorted(self._property_ids)
