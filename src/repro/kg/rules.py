"""Attribute-implication rule mining (AMIE-lite).

The production PKG holds "3+ million rules" alongside its triples.  At
product-KG scale the dominant rule shape is the attribute implication

    r1(x, v1)  =>  r2(x, v2)

("seriesIs nova-3 implies brandIs kainor"): sellers fill series and
brand together, so value co-occurrence mined from the graph predicts
missing attributes.  This module mines such rules with the standard
support/confidence thresholds and applies them for symbolic KG
completion — the baseline PKGM's vector-space completion is compared
against in ``bench_ablation_rules.py``.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .store import TripleStore


@dataclass(frozen=True)
class Rule:
    """``(body_relation, body_value) => (head_relation, head_value)``."""

    body_relation: int
    body_value: int
    head_relation: int
    head_value: int
    support: int
    confidence: float

    def __str__(self) -> str:
        return (
            f"({self.body_relation}, {self.body_value}) => "
            f"({self.head_relation}, {self.head_value}) "
            f"[support={self.support}, confidence={self.confidence:.2f}]"
        )

    @property
    def signature(self) -> Tuple[int, int, int, int]:
        """The implication itself, without the mined statistics."""
        return (
            self.body_relation,
            self.body_value,
            self.head_relation,
            self.head_value,
        )

    @property
    def sort_key(self) -> Tuple[float, int, int, int, int, int]:
        """Total order: best confidence, then support, then signature.

        Every consumer that ranks rules uses this key, so rule order —
        and therefore explanation payloads and completed stores — is
        identical across runs even when confidences tie.
        """
        return (-self.confidence, -self.support) + self.signature


class RuleMiner:
    """Mines attribute-implication rules from a product KG.

    Parameters
    ----------
    min_support:
        Minimum number of items satisfying body AND head.
    min_confidence:
        Minimum P(head | body).
    """

    def __init__(self, min_support: int = 3, min_confidence: float = 0.7) -> None:
        if min_support < 1:
            raise ValueError("min_support must be >= 1")
        if not 0.0 < min_confidence <= 1.0:
            raise ValueError("min_confidence must be in (0, 1]")
        self.min_support = min_support
        self.min_confidence = min_confidence

    def mine(self, store: TripleStore) -> List[Rule]:
        """Return all rules meeting the thresholds, best-confidence first.

        Complexity is O(sum over items of deg^2): for each item, every
        ordered pair of its (relation, value) facts votes for one
        candidate rule.
        """
        body_counts: Counter = Counter()
        pair_counts: Counter = Counter()
        for head in store.heads():
            facts = [
                (triple.relation, triple.tail)
                for triple in store.triples_with_head(head)
            ]
            for body in facts:
                body_counts[body] += 1
            for body in facts:
                for conclusion in facts:
                    if body == conclusion or body[0] == conclusion[0]:
                        continue  # no self- or same-relation rules
                    pair_counts[(body, conclusion)] += 1

        rules: List[Rule] = []
        for (body, conclusion), support in pair_counts.items():
            if support < self.min_support:
                continue
            confidence = support / body_counts[body]
            if confidence < self.min_confidence:
                continue
            rules.append(
                Rule(
                    body_relation=body[0],
                    body_value=body[1],
                    head_relation=conclusion[0],
                    head_value=conclusion[1],
                    support=support,
                    confidence=confidence,
                )
            )
        rules.sort(key=lambda r: r.sort_key)
        return rules


class RuleCompleter:
    """Applies mined rules to infer missing triples.

    For a query ``(item, relation, ?)`` every rule whose body matches
    one of the item's facts and whose head relation equals ``relation``
    votes for its head value with weight = confidence; candidates are
    returned best first with deterministic lowest-value tie-breaks.

    The constructor normalizes whatever rule list it is handed: exact
    duplicate implications are collapsed (keeping the best-supported
    statistics) and every bucket is held in :attr:`Rule.sort_key`
    order, so prediction and completion results do not depend on the
    order rules were mined or loaded in.  An empty rule set is valid
    and yields empty predictions / an unchanged completion.
    """

    def __init__(self, rules: Iterable[Rule]) -> None:
        best: Dict[Tuple[int, int, int, int], Rule] = {}
        for rule in rules:
            kept = best.get(rule.signature)
            if kept is None or rule.sort_key < kept.sort_key:
                best[rule.signature] = rule
        ordered = sorted(best.values(), key=lambda r: r.sort_key)
        self._by_head_relation: Dict[int, List[Rule]] = defaultdict(list)
        for rule in ordered:
            self._by_head_relation[rule.head_relation].append(rule)
        self.num_rules = len(ordered)

    @property
    def rules(self) -> List[Rule]:
        """All retained rules, in :attr:`Rule.sort_key` order."""
        merged = [
            rule
            for relation in sorted(self._by_head_relation)
            for rule in self._by_head_relation[relation]
        ]
        merged.sort(key=lambda r: r.sort_key)
        return merged

    def head_relations(self) -> List[int]:
        """Relations this rule set can predict, ascending."""
        return sorted(self._by_head_relation)

    def rules_for_head(self, relation: int) -> List[Rule]:
        """Rules concluding about ``relation``, best first (copy)."""
        return list(self._by_head_relation.get(relation, ()))

    def prune(self, valid_relations: Iterable[int]) -> "RuleCompleter":
        """A new completer without rules touching retired relations.

        A rule citing a relation absent from ``valid_relations`` in
        either its body or head can never fire against the current KG
        schema; catalog evolution retires relations, so the explanation
        service prunes before serving rather than letting dead rules
        dilute vote totals.
        """
        valid = set(int(r) for r in valid_relations)
        return RuleCompleter(
            rule
            for rule in self.rules
            if rule.body_relation in valid and rule.head_relation in valid
        )

    def predict(
        self, store: TripleStore, item: int, relation: int, top_k: int = 3
    ) -> List[Tuple[int, float]]:
        """Ranked ``(value, score)`` predictions for ``(item, relation, ?)``."""
        if not self._by_head_relation:
            return []
        facts: Set[Tuple[int, int]] = {
            (triple.relation, triple.tail)
            for triple in store.triples_with_head(item)
        }
        votes: Dict[int, float] = defaultdict(float)
        for rule in self._by_head_relation.get(relation, ()):
            if (rule.body_relation, rule.body_value) in facts:
                votes[rule.head_value] += rule.confidence
        ranked = sorted(votes.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:top_k]

    def supporting_rules(
        self, store: TripleStore, item: int, relation: int, value: int
    ) -> List[Tuple[Rule, Tuple[int, int, int]]]:
        """The evidence behind a prediction: ``(rule, supporting triple)``.

        Every returned rule concludes ``(relation, value)`` and its body
        is satisfied by a concrete triple of ``item`` — the triple is
        returned alongside so callers can cite it.  Ordered best rule
        first.
        """
        facts: Set[Tuple[int, int]] = {
            (triple.relation, triple.tail)
            for triple in store.triples_with_head(item)
        }
        support: List[Tuple[Rule, Tuple[int, int, int]]] = []
        for rule in self._by_head_relation.get(relation, ()):
            if rule.head_value != value:
                continue
            body = (rule.body_relation, rule.body_value)
            if body in facts:
                support.append((rule, (item, body[0], body[1])))
        return support

    def complete_store(
        self, store: TripleStore, min_score: float = 0.7
    ) -> TripleStore:
        """Materialize inferred triples above ``min_score``.

        Only fills (item, relation) slots that are empty in ``store``,
        mirroring how the production system repairs incomplete listings.
        Head relations retired from the store's schema (no longer borne
        by any triple) are skipped: completion never resurrects a
        relation the catalog has dropped.
        """
        completed = TripleStore((t.head, t.relation, t.tail) for t in store)
        if not self._by_head_relation:
            return completed
        live_relations = {triple.relation for triple in store}
        for item in store.heads():
            have = store.relations_of(item)
            for relation in sorted(self._by_head_relation):
                if relation in have or relation not in live_relations:
                    continue
                predictions = self.predict(store, item, relation, top_k=1)
                if predictions and predictions[0][1] >= min_score:
                    completed.add(item, relation, predictions[0][0])
        return completed
