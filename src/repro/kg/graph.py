"""Graph-analytic view of the product KG (networkx bridge).

The production PKG team runs graph analytics (connectivity, degree
audits, category coherence) as data-quality checks before pre-training.
This module exposes the same checks on the synthetic KG: a typed
networkx projection plus the audit queries the benches and examples
report.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from .store import TripleStore
from .vocab import EntityVocabulary, RelationVocabulary


def to_networkx(
    store: TripleStore,
    entities: Optional[EntityVocabulary] = None,
    relations: Optional[RelationVocabulary] = None,
) -> nx.MultiDiGraph:
    """Project the triple store to a labelled ``MultiDiGraph``.

    Nodes carry ``kind`` ("item"/"value") when an entity vocabulary is
    supplied; edges carry the relation id and, when available, its label.
    """
    graph = nx.MultiDiGraph()
    for triple in store:
        if not graph.has_node(triple.head):
            graph.add_node(triple.head, kind=_kind(entities, triple.head))
        if not graph.has_node(triple.tail):
            graph.add_node(triple.tail, kind=_kind(entities, triple.tail))
        label = (
            relations.label_of(triple.relation) if relations is not None else None
        )
        graph.add_edge(
            triple.head, triple.tail, relation=triple.relation, label=label
        )
    return graph


def _kind(entities: Optional[EntityVocabulary], entity_id: int) -> str:
    if entities is None:
        return "unknown"
    return "item" if entities.is_item(entity_id) else "value"


def connected_component_sizes(store: TripleStore) -> List[int]:
    """Sizes of weakly connected components, largest first.

    A healthy product KG is dominated by one giant component: items
    connect through shared attribute values (every item with a brand is
    two hops from every other item of that brand).
    """
    graph = to_networkx(store)
    return sorted(
        (len(c) for c in nx.weakly_connected_components(graph)), reverse=True
    )


def degree_statistics(store: TripleStore) -> Dict[str, float]:
    """Degree audit: head out-degree and tail in-degree distributions."""
    out_degrees = [len(store.triples_with_head(h)) for h in store.heads()]
    tails = {t.tail for t in store}
    in_degrees = [len(store.triples_with_tail(t)) for t in tails]
    return {
        "mean_out_degree": float(np.mean(out_degrees)) if out_degrees else 0.0,
        "max_out_degree": float(np.max(out_degrees)) if out_degrees else 0.0,
        "mean_in_degree": float(np.mean(in_degrees)) if in_degrees else 0.0,
        "max_in_degree": float(np.max(in_degrees)) if in_degrees else 0.0,
    }


def shared_value_neighbors(
    store: TripleStore, entity_id: int, limit: int = 10
) -> List[Tuple[int, int]]:
    """Items ranked by the number of attribute values shared with ``entity_id``.

    The symbolic analogue of item-embedding similarity: two listings of
    the same product share nearly all values, which is why TransE pulls
    their embeddings together.  Returns ``(item_id, shared_count)``
    pairs, most-shared first.
    """
    my_tails = {t.tail for t in store.triples_with_head(entity_id)}
    counts: Dict[int, int] = {}
    for tail in my_tails:
        for triple in store.triples_with_tail(tail):
            if triple.head != entity_id:
                counts[triple.head] = counts.get(triple.head, 0) + 1
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:limit]
