"""Negative sampling for margin-based KGE training.

The paper's loss (Eq. 4) corrupts a positive triple "by randomly sample
an entity e ∈ E to replace h or t, or randomly sample a relation
r' ∈ R to replace r".  :class:`UniformNegativeSampler` implements
exactly that; :class:`BernoulliNegativeSampler` adds the TransH-style
head/tail bias used widely in follow-up work (available for ablations).
Both can filter false negatives against the training store.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .store import TripleStore


class UniformNegativeSampler:
    """Corrupt h, t, or r uniformly at random (paper §II-C).

    Parameters
    ----------
    num_entities, num_relations:
        Sizes of the id spaces to sample replacements from.
    rng:
        Random generator (deterministic experiments).
    corrupt_relation_prob:
        Probability of corrupting the relation instead of an entity.
        The paper allows relation corruption; we default to a small
        share so entity corruption dominates, as in standard TransE.
    filter_store:
        If given, resample corruptions that collide with known positives
        (filtered setting).  At most ``max_resample`` attempts.
    """

    def __init__(
        self,
        num_entities: int,
        num_relations: int,
        rng: np.random.Generator,
        corrupt_relation_prob: float = 0.1,
        filter_store: Optional[TripleStore] = None,
        max_resample: int = 10,
    ) -> None:
        if num_entities < 2:
            raise ValueError("need at least 2 entities to corrupt")
        if num_relations < 1:
            raise ValueError("need at least 1 relation")
        if not 0.0 <= corrupt_relation_prob <= 1.0:
            raise ValueError("corrupt_relation_prob must be in [0, 1]")
        if corrupt_relation_prob > 0 and num_relations < 2:
            # Cannot produce a *different* relation; disable relation corruption.
            corrupt_relation_prob = 0.0
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.rng = rng
        self.corrupt_relation_prob = corrupt_relation_prob
        self.filter_store = filter_store
        self.max_resample = max_resample

    def corrupt_batch(self, triples: np.ndarray) -> np.ndarray:
        """Return one negative per positive; input/output are (N, 3) arrays."""
        triples = np.asarray(triples, dtype=np.int64)
        if triples.ndim != 2 or triples.shape[1] != 3:
            raise ValueError(f"expected (N, 3) triples, got {triples.shape}")
        out = triples.copy()
        n = len(triples)
        mode = self.rng.random(n)
        corrupt_rel = mode < self.corrupt_relation_prob
        # Among entity corruptions, pick head or tail with equal probability.
        corrupt_head = (~corrupt_rel) & (self.rng.random(n) < 0.5)
        corrupt_tail = ~corrupt_rel & ~corrupt_head

        out[corrupt_rel, 1] = self._different(
            triples[corrupt_rel, 1], self.num_relations
        )
        out[corrupt_head, 0] = self._different(
            triples[corrupt_head, 0], self.num_entities
        )
        out[corrupt_tail, 2] = self._different(
            triples[corrupt_tail, 2], self.num_entities
        )

        if self.filter_store is not None:
            self._filter_false_negatives(out, triples)
        return out

    def _different(self, current: np.ndarray, space: int) -> np.ndarray:
        """Sample replacements guaranteed to differ from ``current``."""
        draws = self.rng.integers(0, space - 1, size=current.shape)
        # Shift draws >= current up by one: uniform over space \ {current}.
        return draws + (draws >= current)

    def _filter_false_negatives(self, negatives: np.ndarray, positives: np.ndarray) -> None:
        """Resample any negative that is actually a known positive, in place."""
        for i in range(len(negatives)):
            attempts = 0
            while (
                tuple(negatives[i]) in self.filter_store
                and attempts < self.max_resample
            ):
                replacement = self.corrupt_batch(positives[i : i + 1])
                negatives[i] = replacement[0]
                attempts += 1


class BernoulliNegativeSampler:
    """TransH-style Bernoulli corruption.

    Replaces the head with probability tph/(tph+hpt) per relation, where
    tph is average tails-per-head and hpt heads-per-tail — reducing false
    negatives on one-to-many / many-to-one relations.  Provided for the
    KGE ablation benches.
    """

    def __init__(
        self,
        store: TripleStore,
        num_entities: int,
        rng: np.random.Generator,
    ) -> None:
        if num_entities < 2:
            raise ValueError("need at least 2 entities to corrupt")
        self.num_entities = num_entities
        self.rng = rng
        self._head_prob = self._relation_head_probabilities(store)

    @staticmethod
    def _relation_head_probabilities(store: TripleStore) -> dict:
        probs = {}
        for relation in store.relations():
            triples = store.triples_with_relation(relation)
            heads = {t.head for t in triples}
            tails = {t.tail for t in triples}
            tph = len(triples) / max(len(heads), 1)
            hpt = len(triples) / max(len(tails), 1)
            probs[relation] = tph / (tph + hpt)
        return probs

    def corrupt_batch(self, triples: np.ndarray) -> np.ndarray:
        triples = np.asarray(triples, dtype=np.int64)
        out = triples.copy()
        for i, (h, r, t) in enumerate(triples):
            p_head = self._head_prob.get(int(r), 0.5)
            if self.rng.random() < p_head:
                out[i, 0] = self._different(h)
            else:
                out[i, 2] = self._different(t)
        return out

    def _different(self, current: int) -> int:
        draw = int(self.rng.integers(0, self.num_entities - 1))
        return draw + (draw >= current)
