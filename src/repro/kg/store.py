"""Indexed triple store — the symbolic heart of the product KG.

The paper's platform serves two symbolic query shapes (§II):

* triple queries  — ``SELECT ?t WHERE {h r ?t}``
* relation queries — ``SELECT ?r WHERE {h ?r ?t}``

:class:`TripleStore` indexes triples so both run in O(answer size),
provides membership tests for negative-sampling filters, and exposes
the numpy view the trainers consume.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, NamedTuple, Optional, Set, Tuple

import numpy as np


class Triple(NamedTuple):
    """An (head, relation, tail) fact with integer ids."""

    head: int
    relation: int
    tail: int


class TripleStore:
    """An in-memory triple store with hash indexes.

    Maintains indexes by (h, r), by head, by tail, and by relation, which
    back the paper's two query services as well as filtered ranking
    evaluation for link prediction.
    """

    def __init__(self, triples: Optional[Iterable[Tuple[int, int, int]]] = None) -> None:
        self._triples: List[Triple] = []
        self._triple_set: Set[Triple] = set()
        self._by_head_relation: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        self._by_head: Dict[int, List[Triple]] = defaultdict(list)
        self._by_tail: Dict[int, List[Triple]] = defaultdict(list)
        self._by_relation: Dict[int, List[Triple]] = defaultdict(list)
        self._relations_of_head: Dict[int, Set[int]] = defaultdict(set)
        if triples is not None:
            for h, r, t in triples:
                self.add(h, r, t)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, head: int, relation: int, tail: int) -> bool:
        """Insert a triple; returns False if it was already present."""
        triple = Triple(int(head), int(relation), int(tail))
        if triple in self._triple_set:
            return False
        self._triples.append(triple)
        self._triple_set.add(triple)
        self._by_head_relation[(triple.head, triple.relation)].append(triple.tail)
        self._by_head[triple.head].append(triple)
        self._by_tail[triple.tail].append(triple)
        self._by_relation[triple.relation].append(triple)
        self._relations_of_head[triple.head].add(triple.relation)
        return True

    def add_all(self, triples: Iterable[Tuple[int, int, int]]) -> int:
        """Insert many triples; returns the number actually added."""
        return sum(1 for h, r, t in triples if self.add(h, r, t))

    # ------------------------------------------------------------------
    # The paper's two symbolic queries
    # ------------------------------------------------------------------
    def tails(self, head: int, relation: int) -> List[int]:
        """Triple query: all ``?t`` with ``(head, relation, ?t)`` present."""
        return list(self._by_head_relation.get((head, relation), ()))

    def relations_of(self, head: int) -> Set[int]:
        """Relation query: all ``?r`` such that ``(head, ?r, ?t)`` exists."""
        return set(self._relations_of_head.get(head, ()))

    def has_relation(self, head: int, relation: int) -> bool:
        """Whether ``head`` has at least one triple with ``relation``."""
        return relation in self._relations_of_head.get(head, ())

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def __contains__(self, triple: Tuple[int, int, int]) -> bool:
        h, r, t = triple
        return Triple(int(h), int(r), int(t)) in self._triple_set

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def triples_with_head(self, head: int) -> List[Triple]:
        return list(self._by_head.get(head, ()))

    def triples_with_tail(self, tail: int) -> List[Triple]:
        return list(self._by_tail.get(tail, ()))

    def triples_with_relation(self, relation: int) -> List[Triple]:
        return list(self._by_relation.get(relation, ()))

    def relation_counts(self) -> Dict[int, int]:
        """Number of triples per relation (long-tail pruning, Table II prep)."""
        return {r: len(ts) for r, ts in self._by_relation.items()}

    def heads(self) -> Set[int]:
        return set(self._by_head)

    def entities(self) -> Set[int]:
        """Every entity id appearing as head or tail."""
        return set(self._by_head) | set(self._by_tail)

    def relations(self) -> Set[int]:
        return set(self._by_relation)

    # ------------------------------------------------------------------
    # Array views for training
    # ------------------------------------------------------------------
    def to_array(self) -> np.ndarray:
        """All triples as an (N, 3) int64 array in insertion order."""
        if not self._triples:
            return np.zeros((0, 3), dtype=np.int64)
        return np.asarray(self._triples, dtype=np.int64)

    def filter_relations(self, min_count: int) -> "TripleStore":
        """New store dropping relations rarer than ``min_count``.

        Mirrors the paper's pre-processing: "we remove the attributes
        with occurrences less than 5000 in PKG" (§III-A1), scaled to the
        synthetic KG by the caller's ``min_count``.
        """
        counts = self.relation_counts()
        keep = {r for r, c in counts.items() if c >= min_count}
        return TripleStore(
            (t.head, t.relation, t.tail) for t in self._triples if t.relation in keep
        )
