"""Product alignment with PKGM service vectors (paper §III-C).

Reproduces the Tables VI-VII experiment at example scale: per-category
title-pair datasets, pair classification accuracy and 100-candidate
ranking Hit@k for Base and PKGM-all.

Run:  python examples/product_alignment.py
"""

from repro.config import default_config
from repro.data import build_alignment_dataset
from repro.pipeline import build_workbench
from repro.tasks import ProductAlignmentTask


def main() -> None:
    config = default_config()
    workbench = build_workbench(config, verbose=True)

    print("\nTable V shape: | # Train | # Test-C | # Dev-C | # Test-R | # Dev-R")
    results = {}
    for index, category in enumerate((0, 1, 2)):
        dataset = build_alignment_dataset(
            workbench.catalog,
            workbench.titles,
            category_id=category,
            ranking_candidates=99,
            train_samples_per_pair=6,
            seed=11 + category,
        )
        print(dataset.as_table_row(f"category-{index + 1} ({dataset.category_name})"))
        task = ProductAlignmentTask(
            dataset,
            workbench.tokenizer,
            workbench.encoder_config,
            server=workbench.server,
            pretrained_state=workbench.mlm_state,
            config=config.finetune_pair,
        )
        for variant in ("base", "pkgm-all"):
            results[(index, variant)] = task.run(variant)

    print("\nTable VI: variant | category | Hit@1 | Hit@3 | Hit@10")
    for (index, variant), result in results.items():
        print(result.as_hit_row())

    print("\nTable VII: variant | accuracy per category")
    for variant in ("base", "pkgm-all"):
        cells = " | ".join(
            results[(i, variant)].as_accuracy_cell() for i in range(3)
        )
        print(f"{variant} | {cells}")


if __name__ == "__main__":
    main()
