"""Quickstart: pre-train PKGM on a synthetic product KG and query it.

Demonstrates the full §II story in under a minute:

1. generate a product catalog + KG (the proprietary-PKG substitute);
2. run the two *symbolic* queries the platform used to serve;
3. pre-train PKGM (TransE triple module + M_r relation module);
4. serve the same information as *vectors* — including a fact the KG
   never contained (completion-during-service).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.config import smoke_config
from repro.core import KeyRelationSelector, PKGM, PKGMServer, PKGMTrainer
from repro.data import generate_catalog
from repro.kg import QueryEngine, holdout_incompleteness


def main() -> None:
    config = smoke_config()

    print("=== 1. Generate the product KG (Alibaba-PKG substitute) ===")
    catalog = generate_catalog(config.catalog)
    print(
        f"items={len(catalog.items)}  entities={len(catalog.entities)}  "
        f"relations={len(catalog.relations)}  triples={len(catalog.store)}"
    )

    item = catalog.items[0]
    print(f"\nexample item: {item.label} (category "
          f"{catalog.schema[item.category_id].name})")
    for relation, value in item.attributes.items():
        print(f"  {relation} -> {value}")

    print("\n=== 2. The two symbolic queries PKGM replaces (paper §II) ===")
    engine = QueryEngine(catalog.store)
    brand = catalog.relations.id_of("brandIs")
    triple_answer = engine.triple_query(item.entity_id, brand)
    print(f"SELECT ?t WHERE {{{item.label} brandIs ?t}}  ->  "
          f"{[catalog.entities.label_of(t) for t in triple_answer.tails]}")
    relation_answer = engine.relation_query(item.entity_id)
    print(f"SELECT ?r WHERE {{{item.label} ?r ?t}}      ->  "
          f"{[catalog.relations.label_of(r) for r in relation_answer.relations]}")

    print("\n=== 3. Hold out facts, then pre-train PKGM on the rest ===")
    observed, missing = holdout_incompleteness(
        catalog.store, 0.15, np.random.default_rng(7)
    )
    print(f"observed triples: {len(observed)}   deliberately missing: {len(missing)}")
    model = PKGM(
        len(catalog.entities),
        len(catalog.relations),
        config.pkgm,
        rng=np.random.default_rng(0),
    )
    history = PKGMTrainer(model, config.pkgm_trainer).train(observed)
    print(f"margin loss: {history.epoch_losses[0]:.3f} -> {history.final_loss:.3f}")

    print("\n=== 4. Serve knowledge as vectors (Table I, right column) ===")
    item_to_category = {i.entity_id: i.category_id for i in catalog.items}
    selector = KeyRelationSelector(observed, item_to_category, k=config.key_relations)
    server = PKGMServer(model, selector)
    vectors = server.serve(item.entity_id)
    print(f"service payload for {item.label}: "
          f"{vectors.k} triple-query vectors + {vectors.k} relation-query "
          f"vectors of dim {vectors.dim}")
    print(f"condensed single-embedding form (Eq. 8-9): "
          f"shape {vectors.condensed().shape}")

    print("\n=== 5. Completion: answer a query the KG cannot ===")
    held = missing.to_array()
    h, r, t = held[0]
    head_label = catalog.entities.label_of(int(h))
    rel_label = catalog.relations.label_of(int(r))
    true_label = catalog.entities.label_of(int(t))
    print(f"fact removed from the KG: ({head_label}, {rel_label}, {true_label})")
    assert not observed.tails(int(h), int(r)), "symbolic query finds nothing"
    print("symbolic triple query  -> [] (the KG does not know)")
    service = model.service_triple(np.array([h]), np.array([r]))
    decoded = model.nearest_entities(service, k=5)[0]
    names = [catalog.entities.label_of(int(e)) for e in decoded]
    print(f"PKGM S_T(h, r) decoded -> top-5 candidates: {names}")
    print(f"true tail in top-5: {int(t) in decoded}")


if __name__ == "__main__":
    main()
