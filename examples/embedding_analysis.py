"""Why PKGM works: the embedding geometry behind the gains.

Pre-trains PKGM, then measures the two geometric mechanisms the
downstream tasks depend on:

* **category clustering** — same-category items share attribute values,
  so TransE pulls them together (drives the classification gains);
* **sibling collapse** — listings of one product share almost all
  values and end up even closer (drives alignment transfer and
  model-code completion).

Also prints the symbolic analogue (shared-value neighbor ranking) so
the vector-space and graph views can be compared side by side.

Run:  python examples/embedding_analysis.py
"""

import numpy as np

from repro.analysis import (
    embedding_norm_summary,
    knn_category_purity,
    sibling_separation,
)
from repro.config import default_config
from repro.core import PKGM, PKGMTrainer
from repro.data import generate_catalog
from repro.kg import connected_component_sizes, shared_value_neighbors


def main() -> None:
    config = default_config()
    catalog = generate_catalog(config.catalog)

    sizes = connected_component_sizes(catalog.store)
    print(
        f"KG connectivity: {len(sizes)} weak components, largest covers "
        f"{sizes[0]}/{sum(sizes)} entities"
    )

    untrained = PKGM(
        len(catalog.entities),
        len(catalog.relations),
        config.pkgm,
        rng=np.random.default_rng(0),
    )
    print("\n=== before pre-training ===")
    print(knn_category_purity(untrained, catalog, k=5).as_row())
    print(sibling_separation(untrained, catalog).as_row())

    model = PKGM(
        len(catalog.entities),
        len(catalog.relations),
        config.pkgm,
        rng=np.random.default_rng(0),
    )
    PKGMTrainer(model, config.pkgm_trainer).train(catalog.store)
    print("\n=== after pre-training ===")
    print(knn_category_purity(model, catalog, k=5).as_row())
    print(sibling_separation(model, catalog).as_row())
    for name, value in embedding_norm_summary(model).items():
        print(f"  {name}: {value:.3f}")

    print("\n=== the symbolic view of the same structure ===")
    anchor = catalog.items[0]
    siblings = {
        item.entity_id
        for item in catalog.items_of_product(anchor.product_id)
        if item.entity_id != anchor.entity_id
    }
    ranked = shared_value_neighbors(catalog.store, anchor.entity_id, limit=5)
    print(f"items sharing the most values with {anchor.label}:")
    for entity, shared in ranked:
        marker = "  <- same product" if entity in siblings else ""
        print(f"  {catalog.entities.label_of(entity)}: {shared} shared{marker}")


if __name__ == "__main__":
    main()
