"""Attribute prediction from PKGM service vectors (extension task).

The paper's introduction names "item attributes prediction" as a
knowledge-enhanced task the product KG serves; the conclusion leaves
further downstream tasks to future work.  This example holds out 30% of
three attributes' triples, pre-trains PKGM on the remainder, and
compares two training-free predictors on the held-out values:

* **majority** — the most common value of that attribute within the
  item's category (a strong baseline for low-cardinality attributes);
* **pkgm** — decode ``S_T(item, relation)`` to the nearest candidate
  value entity (zero task-specific training).

Run:  python examples/attribute_prediction.py
"""

from repro.config import default_config
from repro.core import pretrain_pkgm
from repro.data import generate_catalog
from repro.tasks import AttributePredictionTask


def main() -> None:
    config = default_config()
    catalog = generate_catalog(config.catalog)
    print(
        f"catalog: {len(catalog.items)} items, {len(catalog.store)} triples\n"
    )
    print("method | relation | Hit@1 | Hit@3 | n")
    for relation in ("colorIs", "brandIs", "modelIs"):
        task = AttributePredictionTask(
            catalog, relation, holdout_fraction=0.3, seed=0
        )
        model = pretrain_pkgm(
            task.observed,
            len(catalog.entities),
            len(catalog.relations),
            model_config=config.pkgm,
            trainer_config=config.pkgm_trainer,
            seed=0,
        )
        print(task.majority_baseline().as_row())
        print(task.pkgm_prediction(model).as_row())
        print(f"  ({len(task.candidate_values)} candidate values)")


if __name__ == "__main__":
    main()
