"""Parameter-server pre-training simulation (paper §III-A2 systems setup).

The paper pre-trains PKGM with TensorFlow + Graph-learn on 50 parameter
servers and 200 workers.  This example runs our faithful single-process
simulation of that architecture — row-sharded parameter storage,
pull/push RPCs, server-side Adam, bounded gradient staleness — and
compares it against the reference single-process trainer on the same
synthetic product KG.

Run:  python examples/distributed_pretraining.py
"""

import numpy as np

from repro.config import smoke_config
from repro.core import PKGM, PKGMTrainer, TrainerConfig
from repro.data import generate_catalog
from repro.distributed import DistributedConfig, DistributedPKGMTrainer


def main() -> None:
    config = smoke_config()
    catalog = generate_catalog(config.catalog)
    n_entities = len(catalog.entities)
    n_relations = len(catalog.relations)
    print(
        f"product KG: {len(catalog.store)} triples, "
        f"{n_entities} entities, {n_relations} relations\n"
    )

    print("=== reference: single-process trainer ===")
    reference = PKGM(n_entities, n_relations, config.pkgm, rng=np.random.default_rng(0))
    history = PKGMTrainer(
        reference, TrainerConfig(epochs=10, batch_size=128, learning_rate=0.02, seed=0)
    ).train(catalog.store)
    print(f"final mean margin loss: {history.final_loss:.4f}\n")

    print("=== parameter-server simulation ===")
    for staleness in (0, 4):
        model = PKGM(n_entities, n_relations, config.pkgm, rng=np.random.default_rng(0))
        trainer = DistributedPKGMTrainer(
            model,
            DistributedConfig(
                num_shards=4,
                num_workers=8,
                staleness=staleness,
                epochs=10,
                batch_size=128,
                learning_rate=0.02,
                seed=0,
            ),
        )
        losses = trainer.train(catalog.store)
        shards = trainer.server.shard_sizes("entities")
        print(
            f"staleness={staleness}: final loss {losses[-1]:.4f}  "
            f"pull RPCs {trainer.server.pull_count}  "
            f"push RPCs {trainer.server.push_count}  "
            f"entity shard sizes {shards}"
        )

    print(
        "\nThe asynchronous sharded pipeline reaches the same loss regime "
        "as the reference trainer — the architecture the paper used does "
        "not change what PKGM learns, only how fast it scales."
    )


if __name__ == "__main__":
    main()
