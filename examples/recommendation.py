"""Item recommendation with PKGM features (paper §III-D).

Reproduces the Table VIII experiment at example scale: train NCF on
synthetic implicit feedback, then train NCF_PKGM variants whose MLP
input is extended with the condensed service vector (Eq. 20-21), and
evaluate all of them leave-one-out.

Run:  python examples/recommendation.py
"""

from repro.config import default_config
from repro.data import generate_interactions
from repro.pipeline import build_workbench
from repro.tasks import RecommendationTask


def main() -> None:
    config = default_config()
    workbench = build_workbench(config, pretrain_mlm=False, verbose=True)

    interactions = generate_interactions(workbench.catalog, config.interactions)
    print(f"\nTable IX shape: {interactions.as_table_row()}")

    entity_ids = [item.entity_id for item in workbench.catalog.items]
    task = RecommendationTask(
        interactions, entity_ids, server=workbench.server, config=config.ncf
    )

    print("\nTable VIII: variant | HR@1/3/5/10/30 | NDCG@1/3/5/10/30")
    for variant in ("base", "pkgm-t", "pkgm-r", "pkgm-all"):
        result = task.run(variant)
        print(result.as_table_row())


if __name__ == "__main__":
    main()
