"""Item classification with PKGM service vectors (paper §III-B).

Reproduces the Table IV experiment at example scale: fine-tune the
(MLM-pre-trained) mini-BERT on item titles with category labels, in the
four variants Base / PKGM-T / PKGM-R / PKGM-all, and print the table.

Run:  python examples/item_classification.py
"""

from repro.config import default_config
from repro.data import build_classification_dataset
from repro.pipeline import build_workbench
from repro.tasks import ItemClassificationTask


def main() -> None:
    config = default_config()
    workbench = build_workbench(config, verbose=True)

    dataset = build_classification_dataset(
        workbench.catalog, workbench.titles, max_per_category=100, seed=5
    )
    print(f"\nTable III shape: {dataset.as_table_row('dataset')}")

    task = ItemClassificationTask(
        dataset,
        workbench.tokenizer,
        workbench.encoder_config,
        server=workbench.server,
        pretrained_state=workbench.mlm_state,
        config=config.finetune,
    )

    print("\nTable IV: variant | Hit@1 | Hit@3 | Hit@10 | AC")
    for variant in ("base", "pkgm-t", "pkgm-r", "pkgm-all"):
        result = task.run(variant)
        print(result.as_table_row())


if __name__ == "__main__":
    main()
