"""KG completion: PKGM's triple scorer vs the classic KGE zoo.

The paper picks TransE for the triple query module "for its simplicity
and effectiveness".  This example backs that choice empirically on the
synthetic product KG: it trains TransE, TransH, TransR, DistMult,
ComplEx and RESCAL with one shared trainer and compares filtered link
prediction (MRR / Hits@k), then shows PKGM's completion-during-service
on deliberately held-out facts.

Run:  python examples/kg_completion.py
"""

import numpy as np

from repro.baselines import (
    KGETrainer,
    KGETrainerConfig,
    evaluate_link_prediction,
    make_scorer,
)
from repro.config import default_config
from repro.core import pretrain_pkgm
from repro.data import generate_catalog
from repro.kg import holdout_incompleteness, split_triples


def main() -> None:
    config = default_config()
    catalog = generate_catalog(config.catalog)
    n_entities = len(catalog.entities)
    n_relations = len(catalog.relations)
    print(
        f"product KG: {len(catalog.store)} triples, "
        f"{n_entities} entities, {n_relations} relations"
    )

    print("\n=== Link prediction across the KGE zoo (filtered) ===")
    split = split_triples(catalog.store, 0.1, 0.1, np.random.default_rng(0))
    for name in ("transe", "transh", "transr", "distmult", "complex", "rescal"):
        model = make_scorer(
            name, n_entities, n_relations, dim=24, rng=np.random.default_rng(0)
        )
        KGETrainer(
            model,
            KGETrainerConfig(epochs=25, batch_size=256, learning_rate=0.02, seed=0),
        ).train(split.train)
        result = evaluate_link_prediction(
            model,
            split.test,
            [split.train, split.valid, split.test],
            max_queries=150,
            rng=np.random.default_rng(1),
        )
        print(f"  {result.as_row(name)}")

    print("\n=== PKGM completion-during-service (paper §II-D) ===")
    observed, missing = holdout_incompleteness(
        catalog.store, 0.15, np.random.default_rng(7)
    )
    model = pretrain_pkgm(
        observed,
        n_entities,
        n_relations,
        model_config=config.pkgm,
        trainer_config=config.pkgm_trainer,
        seed=0,
    )
    held = missing.to_array()
    service = model.service_triple(held[:, 0], held[:, 1])
    top = model.nearest_entities(service, k=10)
    hit1 = np.mean([held[i, 2] == top[i][0] for i in range(len(held))])
    hit10 = np.mean([held[i, 2] in top[i] for i in range(len(held))])
    print(
        f"decoding S_T(h, r) for {len(held)} facts the KG never saw: "
        f"Hit@1={hit1:.3f} Hit@10={hit10:.3f} "
        f"(chance Hit@10 ~ {10 / n_entities:.4f})"
    )


if __name__ == "__main__":
    main()
