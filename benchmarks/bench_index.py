"""Retrieval index trade-offs — recall vs work vs memory (repro.index).

Builds the three index kinds over a seeded category-clustered catalog
(a mixture of Gaussians: the geometry trained PKGM embeddings converge
toward, where same-category items share attribute values and cluster —
the mechanism ``knn_category_purity`` measures) and scores each against
the exact Flat baseline on held-out queries drawn from the same
mixture:

* **recall@10** — mean overlap with Flat's exact top-10;
* **distance computations** — from the ``index.search.*`` metrics
  counters, not wall-time guesses (IVF-PQ charges its ADC table at
  ``ksub`` full-vector equivalents per query);
* **bytes/vector** — float64 table vs ``m``-byte PQ codes;
* **seconds** — wall time to build and to search (real cost, so
  ``time.perf_counter`` is fine here — benchmarks live outside the
  virtual-clock packages lint rule R007 covers).

Acceptance (the ISSUE bars, asserted below): IVF-Flat reaches
recall@10 ≥ 0.9 with ≥ 5x fewer distance computations than Flat, and
IVF-PQ stores ≤ 0.35x the bytes/vector of Flat.
"""

import time

import numpy as np

from repro.index import FlatIndex, IVFFlatIndex, IVFPQIndex

SEED = 0
DIM = 24
N_BASE = 8192
N_QUERIES = 64
N_CLUSTERS = 96
SPREAD = 0.35
K = 10

NLIST = 96
NPROBE = 8
PQ_M = 24
PQ_KSUB = 64


def _clustered_catalog():
    """Seeded mixture-of-Gaussians base/query tables."""
    rng = np.random.default_rng(42)
    centers = rng.normal(size=(N_CLUSTERS, DIM))
    base = (
        centers[rng.integers(0, N_CLUSTERS, size=N_BASE)]
        + SPREAD * rng.normal(size=(N_BASE, DIM))
    )
    queries = (
        centers[rng.integers(0, N_CLUSTERS, size=N_QUERIES)]
        + SPREAD * rng.normal(size=(N_QUERIES, DIM))
    )
    return base, queries


def _make_index(kind):
    if kind == "flat":
        return FlatIndex(DIM, metric="l2")
    if kind == "ivf":
        return IVFFlatIndex(
            DIM, nlist=NLIST, nprobe=NPROBE, metric="l2", seed=SEED
        )
    return IVFPQIndex(
        DIM,
        nlist=NLIST,
        nprobe=NPROBE,
        m=PQ_M,
        ksub=PQ_KSUB,
        metric="l2",
        seed=SEED,
    )


def _measure(kind, base, queries, exact_ids):
    index = _make_index(kind)
    build_start = time.perf_counter()
    if hasattr(index, "build"):
        index.build(base)
    else:
        index.add(base)
    build_seconds = time.perf_counter() - build_start
    search_start = time.perf_counter()
    _, ids = index.search(queries, K)
    search_seconds = time.perf_counter() - search_start
    dc = index.metrics.counter("index.search.distance_computations").value
    if exact_ids is None:
        recall = 1.0
    else:
        recall = float(
            np.mean(
                [
                    len(set(exact_ids[q].tolist()) & set(ids[q].tolist())) / K
                    for q in range(len(queries))
                ]
            )
        )
    return {
        "kind": kind,
        "ids": ids,
        "recall": recall,
        "dc": dc,
        "bytes": index.bytes_per_vector,
        "build_s": build_seconds,
        "search_s": search_seconds,
    }


def test_index_retrieval(benchmark, record_table):
    base, queries = _clustered_catalog()
    rows = {}

    def sweep():
        flat = _measure("flat", base, queries, None)
        rows["flat"] = flat
        for kind in ("ivf", "ivfpq"):
            rows[kind] = _measure(kind, base, queries, flat["ids"])

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    flat = rows["flat"]
    lines = [
        "Retrieval index trade-offs — clustered catalog "
        f"(N={N_BASE}, dim={DIM}, {N_CLUSTERS} clusters, "
        f"{N_QUERIES} queries, k={K}, seed {SEED})",
        "kind | params | recall@10 | distance comps | saving | "
        "bytes/vec | build s | search s",
    ]
    for kind, params in (
        ("flat", "exact scan"),
        ("ivf", f"nlist={NLIST} nprobe={NPROBE}"),
        ("ivfpq", f"nlist={NLIST} nprobe={NPROBE} m={PQ_M} ksub={PQ_KSUB}"),
    ):
        row = rows[kind]
        lines.append(
            f"{kind} | {params} | {row['recall']:.3f} | {row['dc']} | "
            f"{flat['dc'] / row['dc']:.1f}x | {row['bytes']:.0f} | "
            f"{row['build_s']:.3f} | {row['search_s']:.3f}"
        )
    ivf_saving = flat["dc"] / rows["ivf"]["dc"]
    pq_ratio = rows["ivfpq"]["bytes"] / flat["bytes"]
    lines.append(
        f"acceptance: IVF recall {rows['ivf']['recall']:.3f} >= 0.9 at "
        f"{ivf_saving:.1f}x >= 5x; IVF-PQ {pq_ratio:.2f}x bytes <= 0.35x"
    )
    record_table("index_retrieval", lines)

    assert rows["ivf"]["recall"] >= 0.9, rows["ivf"]
    assert ivf_saving >= 5.0, f"IVF saves only {ivf_saving:.2f}x"
    assert pq_ratio <= 0.35, f"IVF-PQ stores {pq_ratio:.2f}x of Flat"
