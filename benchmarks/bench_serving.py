"""Supervised worker pool — multi-process QPS scaling and tail latency.

Measures what the serving tier (repro.serving) buys over one process:

* **in-proc baseline** — the same seeded workload answered by direct
  ``PKGMServer`` calls in this process (no sockets, no batching);
* **pool scaling** — the supervised pool at 1, 2, and 4 workers, with
  the coalescer batching concurrent requests into the fused kernels;
  QPS and p50/p99 latency come from ``run_serve_loadtest`` driving the
  pool open-loop under a bounded window.

The workload is retrieval-heavy (nearest-tails dominates compute) so
worker parallelism has real work to spread.  Each pool gets a small
warmup pass first: a worker builds its lazy tail index on its first
retrieval, and that one-time cost belongs to cold start, not steady
state.  Wall time is real cost here, so ``time.perf_counter`` is fine —
benchmarks live outside the virtual-clock packages lint rule R007
covers.
"""

import os
import time

import numpy as np

from repro.serving import (
    PoolConfig,
    ServeLoadConfig,
    Supervisor,
    run_serve_loadtest,
)

SEED = 0
WORKER_COUNTS = (1, 2, 4)
REQUESTS = 600
WINDOW = 32
WARMUP_REQUESTS = 64
MIX = dict(serve_prob=0.1, exist_prob=0.1)  # remainder: nearest-tails
K = 10


def _measure_inproc(server, item_ids):
    """Direct in-process calls: the no-pool reference point."""
    rng = np.random.default_rng(SEED)
    num_entities = server.num_entities
    latencies = []
    started = time.perf_counter()
    for _ in range(REQUESTS):
        draw = float(rng.random())
        call_started = time.perf_counter()
        if draw < MIX["serve_prob"]:
            server.serve(int(item_ids[int(rng.integers(0, len(item_ids)))]))
        elif draw < MIX["serve_prob"] + MIX["exist_prob"]:
            server.relation_existence_score(
                int(rng.integers(0, num_entities)), 0
            )
        else:
            server.nearest_tails(int(rng.integers(0, num_entities)), 0, k=K)
        latencies.append(time.perf_counter() - call_started)
    elapsed = time.perf_counter() - started
    p50, p99 = np.percentile(latencies, [50, 99])
    return {
        "qps": REQUESTS / elapsed,
        "p50_ms": float(p50) * 1e3,
        "p99_ms": float(p99) * 1e3,
    }


def _measure_pool(store_dir, item_ids, workers):
    pool = Supervisor(
        store_dir,
        PoolConfig(num_workers=workers, max_batch=8, max_delay=0.002),
    )
    pool.start()
    try:
        run_serve_loadtest(  # warmup: lazy tail-index builds per worker
            pool,
            item_ids,
            ServeLoadConfig(requests=WARMUP_REQUESTS, window=WINDOW, **MIX),
            timer=time.perf_counter,
        )
        report = run_serve_loadtest(
            pool,
            item_ids,
            ServeLoadConfig(
                requests=REQUESTS, window=WINDOW, seed=SEED, k=K, **MIX
            ),
            timer=time.perf_counter,
        )
    finally:
        pool.shutdown()
    return report


def test_serving_pool_scaling(benchmark, record_table, workbench, tmp_path):
    server = workbench.server
    store_dir = tmp_path / "store"
    server.save_store(store_dir, num_shards=4, page_bytes=4096).close()
    item_ids = server.known_items()
    results = {}

    def sweep():
        results["inproc"] = _measure_inproc(server, item_ids)
        for workers in WORKER_COUNTS:
            results[workers] = _measure_pool(store_dir, item_ids, workers)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    inproc = results["inproc"]
    lines = [
        "Supervised worker pool — QPS scaling and tail latency "
        f"({REQUESTS} requests, retrieval-heavy mix "
        f"{int((1 - MIX['serve_prob'] - MIX['exist_prob']) * 100)}% "
        f"nearest-tails k={K}, window {WINDOW}, seed {SEED}, "
        f"{os.cpu_count()} cpu cores)",
        "config | qps | p50 ms | p99 ms | speedup vs in-proc",
        f"in-proc | {inproc['qps']:.0f} | {inproc['p50_ms']:.2f} | "
        f"{inproc['p99_ms']:.2f} | 1.00x",
    ]
    for workers in WORKER_COUNTS:
        report = results[workers]
        lines.append(
            f"pool w={workers} | {report.qps:.0f} | {report.p50 * 1e3:.2f} | "
            f"{report.p99 * 1e3:.2f} | {report.qps / inproc['qps']:.2f}x"
        )
    best = max(results[w].qps for w in WORKER_COUNTS)
    single = results[1].qps
    lines.append(
        f"acceptance: every config answered {REQUESTS}/{REQUESTS}; best "
        f"config reached {best / single:.2f}x the 1-worker pool (worker "
        f"parallelism only pays past 1 cpu core; on a 1-core box extra "
        f"workers add IPC cost and the scaling column reads as overhead)"
    )
    record_table("serving_pool_scaling", lines)

    for workers in WORKER_COUNTS:
        report = results[workers]
        assert report.ok + report.degraded == REQUESTS
    assert best >= single  # more workers never lose to one
