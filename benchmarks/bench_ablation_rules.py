"""Ablation — symbolic rule completion vs PKGM vector completion.

The production PKG carries "3+ million rules" next to its triples.
Mined attribute-implication rules complete missing facts with high
precision but only where a matching body exists; PKGM's ``S_T`` service
answers *every* query.  This bench quantifies that coverage/precision
trade-off — the motivation for serving knowledge from vector space.
"""

import numpy as np
import pytest

from repro.core import pretrain_pkgm
from repro.kg import RuleCompleter, RuleMiner, holdout_incompleteness


def test_ablation_rules_vs_pkgm(benchmark, workbench, record_table):
    catalog = workbench.catalog
    observed, missing = holdout_incompleteness(
        catalog.store, 0.2, np.random.default_rng(21)
    )
    held = missing.to_array()
    results = {}

    def run():
        rules = RuleMiner(min_support=2, min_confidence=0.7).mine(observed)
        completer = RuleCompleter(rules)
        answered = correct = 0
        for h, r, t in held:
            predictions = completer.predict(observed, int(h), int(r), top_k=1)
            if predictions:
                answered += 1
                if predictions[0][0] == t:
                    correct += 1
        results["rules"] = {
            "num_rules": len(rules),
            "coverage": answered / len(held),
            "precision": correct / max(answered, 1),
            "overall_hit1": correct / len(held),
        }

        model = pretrain_pkgm(
            observed,
            len(catalog.entities),
            len(catalog.relations),
            model_config=workbench.config.pkgm,
            trainer_config=workbench.config.pkgm_trainer,
            seed=0,
        )
        service = model.service_triple(held[:, 0], held[:, 1])
        top = model.nearest_entities(service, k=1)
        pkgm_hit1 = float(np.mean([held[i, 2] == top[i][0] for i in range(len(held))]))
        results["pkgm"] = {"coverage": 1.0, "overall_hit1": pkgm_hit1}
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    rules = results["rules"]
    pkgm = results["pkgm"]
    record_table(
        "ablation_rules",
        [
            "Ablation: symbolic rules vs PKGM completion on held-out facts",
            f"mined rules: {rules['num_rules']}",
            f"rules | coverage {100 * rules['coverage']:.1f}% | "
            f"precision@1 {100 * rules['precision']:.1f}% | "
            f"overall Hit@1 {100 * rules['overall_hit1']:.1f}%",
            f"pkgm  | coverage 100.0% | overall Hit@1 {100 * pkgm['overall_hit1']:.1f}%",
            "(the coverage gap is the paper's motivation for vector-space service)",
        ],
    )

    assert rules["num_rules"] > 0
    assert rules["coverage"] < 1.0  # rules cannot answer everything
    assert pkgm["overall_hit1"] > 0.0
