"""Observability overhead — telemetry must be cheap enough to leave on.

Times the PR-3 overload loadtest (spike profile through the gateway:
admission control, deadlines, hedging, registry-instrumented caches)
twice: once as shipped, with every counter/gauge/histogram update live,
and once with the instrument mutators no-oped — the registry plumbing
(descriptor reads, instrument lookups) stays in place, so the measured
delta is exactly the per-update accounting cost the obs layer added.

The runs alternate and each variant is scored by its best-of-N wall
time (minimum is the standard noise-robust estimator for CPU-bound
loops).  Acceptance: the instrumented run is within 5% of the no-op
baseline, so there is no reason ever to ship with telemetry off.

``time.perf_counter`` is fine here — benchmarks measure real cost and
live outside the virtual-clock packages that lint rule R007 covers.
"""

import time

import numpy as np

from repro.config import smoke_config
from repro.core import KeyRelationSelector, PKGM, PKGMServer
from repro.data import generate_catalog
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.reliability import (
    AdmissionConfig,
    GatewayConfig,
    LoadTestConfig,
    PKGMGateway,
    build_replicas,
)
from repro.reliability.loadtest import run_loadtest

SEED = 0
REQUESTS = 4000
ROUNDS = 5

#: (class, method) pairs that mutate instruments on the hot path.
MUTATORS = (
    (Counter, "inc"),
    (Counter, "set_total"),
    (Gauge, "set"),
    (Gauge, "add"),
    (Histogram, "observe"),
)


def _build_server():
    """Bench-scale untrained server (serving cost is weight-agnostic)."""
    config = smoke_config()
    catalog = generate_catalog(config.catalog)
    item_to_category = {item.entity_id: item.category_id for item in catalog.items}
    selector = KeyRelationSelector(
        catalog.store, item_to_category, k=config.key_relations
    )
    model = PKGM(
        len(catalog.entities),
        len(catalog.relations),
        config.pkgm,
        rng=np.random.default_rng(SEED),
    )
    return PKGMServer(model, selector)


def _run_loadtest(server):
    gateway = PKGMGateway(
        build_replicas(server, 2, seed=SEED),
        GatewayConfig(
            deadline_budget=0.25,
            hedge_after=0.05,
            admission=AdmissionConfig(rate=300.0, burst=64.0, queue_capacity=64),
        ),
        seed=SEED,
    )
    return run_loadtest(
        gateway,
        server.known_items(),
        LoadTestConfig(profile="spike", requests=REQUESTS, seed=SEED),
    )


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


class _no_op_instruments:
    """Temporarily no-op every instrument mutator (the baseline)."""

    def __enter__(self):
        self._saved = [(cls, name, getattr(cls, name)) for cls, name in MUTATORS]
        for cls, name in MUTATORS:
            setattr(cls, name, lambda self, *args: None)
        return self

    def __exit__(self, exc_type, exc, tb):
        for cls, name, method in self._saved:
            setattr(cls, name, method)


def test_obs_overhead(benchmark, record_table):
    server = _build_server()
    _run_loadtest(server)  # warm caches and code paths once
    instrumented = []
    baseline = []

    def sweep():
        for _ in range(ROUNDS):
            instrumented.append(_timed(lambda: _run_loadtest(server)))
            with _no_op_instruments():
                baseline.append(_timed(lambda: _run_loadtest(server)))

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    best_instrumented = min(instrumented)
    best_baseline = min(baseline)
    overhead = best_instrumented / best_baseline - 1.0

    lines = [
        "Observability overhead — spike loadtest "
        f"({REQUESTS} requests, best of {ROUNDS}, seed {SEED})",
        "variant | seconds",
        f"metrics no-oped (baseline) | {best_baseline:.3f}",
        f"metrics live (shipped) | {best_instrumented:.3f}",
        f"overhead | {overhead:+.1%} (acceptance: < +5%)",
    ]
    record_table("obs_overhead", lines)

    assert overhead < 0.05, (
        f"obs layer costs {overhead:.1%} on the overload loadtest "
        "(acceptance bar is 5%)"
    )
