"""Table V — alignment dataset statistics for three categories.

Paper rows (| # Train | # Test-C | # Dev-C | # Test-R | # Dev-R):

    category-1 | 4731 | 1014 | 1013 | 513 | 497
    category-2 | 2424 |  520 |  519 | 268 | 278
    category-3 | 3968 |  852 |  850 | 417 | 440

Structure to reproduce: three per-category datasets split ~7:1.5:1.5
with classification (-C) and ranking (-R) evaluation sets; -C splits
are roughly twice the -R splits because every ranking positive also
appears in -C alongside one sampled negative.
"""

import pytest

from repro.data import build_alignment_dataset

PAPER_ROWS = [
    "category-1 (paper) | 4731 | 1014 | 1013 | 513 | 497",
    "category-2 (paper) | 2424 | 520 | 519 | 268 | 278",
    "category-3 (paper) | 3968 | 852 | 850 | 417 | 440",
]


def test_table5_alignment_stats(benchmark, workbench, alignment_datasets, record_table):
    benchmark.pedantic(
        build_alignment_dataset,
        args=(workbench.catalog, workbench.titles),
        kwargs={"category_id": 0, "ranking_candidates": 99, "seed": 11},
        rounds=3,
        iterations=1,
    )

    rows = [
        dataset.as_table_row(f"category-{i + 1} (synthetic, {dataset.category_name})")
        for i, dataset in enumerate(alignment_datasets.values())
    ]
    record_table(
        "table5_alignment_stats",
        [
            "Table V: | # Train | # Test-C | # Dev-C | # Test-R | # Dev-R",
            *PAPER_ROWS,
            *rows,
        ],
    )

    for dataset in alignment_datasets.values():
        # Train dominates, and -C splits pair each -R positive with a negative.
        assert len(dataset.train) > len(dataset.test_c)
        assert len(dataset.test_c) == 2 * len(dataset.test_r)
        assert len(dataset.dev_c) == 2 * len(dataset.dev_r)
        for case in dataset.test_r:
            assert len(case.candidates) == 99  # the paper's 100-candidate ranking
