"""Extension — item attribute prediction (paper intro / future work).

The paper's introduction lists "item attributes prediction" among the
knowledge-enhanced applications; the conclusion leaves more downstream
tasks to future work.  This bench runs our extension task: predict
held-out attribute values either with the per-category majority
baseline or by decoding PKGM's ``S_T`` service vector, with no
task-specific training at all.

Expected shape: on low-cardinality category-correlated attributes
(color) the majority baseline is strong and PKGM beats chance; on
item-identifying attributes (model codes) majority collapses, and
whether PKGM's sibling-transfer mechanism wins depends on scale (it
does at smoke scale — see the unit tests — but dilutes at bench scale
where 476 codes compete in a 24-dim space).  Both regimes are recorded.
"""

import pytest

from repro.core import pretrain_pkgm
from repro.tasks import AttributePredictionTask

RELATIONS = ("colorIs", "brandIs", "modelIs")


def run_relation(workbench, relation):
    task = AttributePredictionTask(
        workbench.catalog, relation, holdout_fraction=0.3, seed=0
    )
    model = pretrain_pkgm(
        task.observed,
        len(workbench.catalog.entities),
        len(workbench.catalog.relations),
        model_config=workbench.config.pkgm,
        trainer_config=workbench.config.pkgm_trainer,
        seed=0,
    )
    return task.majority_baseline(), task.pkgm_prediction(model), task


def test_extension_attribute_prediction(benchmark, workbench, record_table):
    results = {}

    def sweep():
        for relation in RELATIONS:
            results[relation] = run_relation(workbench, relation)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Extension: attribute prediction — method | relation | Hit@1 | Hit@3 | n",
    ]
    for relation in RELATIONS:
        majority, pkgm, task = results[relation]
        lines.append(majority.as_row())
        lines.append(pkgm.as_row())
        lines.append(f"  ({len(task.candidate_values)} candidate values)")
    record_table("extension_attribute_prediction", lines)

    # Sanity only: per-relation winners vary with scale (at smoke scale
    # PKGM beats majority on model codes — asserted in the unit tests;
    # at bench scale the 476-code embedding space is under-trained at
    # dim 24).  The recorded table is the deliverable here.
    for relation in RELATIONS:
        majority, pkgm, task = results[relation]
        assert 0.0 <= pkgm.hit1 <= pkgm.hit3 <= 1.0
        assert 0.0 <= majority.hit1 <= majority.hit3 <= 1.0
        assert pkgm.num_cases == majority.num_cases > 0
    # Low-cardinality attributes: PKGM must stay above random chance.
    _, pkgm_color, color_task = results["colorIs"]
    assert pkgm_color.hit3 > 3.0 / len(color_task.candidate_values)
