"""Table I — pre-training vs servicing semantics of the two modules.

Table I in the paper is definitional; the measurable claims behind it
(§II-D) are:

* ``S_T(h, r) = h + r`` approximates the true tail embedding, including
  for held-out triples (completion during service);
* ``S_R(h, r) = M_r h - r`` approaches 0 iff the item has — or should
  have — relation r, ordering the three existence cases.

This bench measures both on the bench-scale KG and times the serving
path (the production-relevant operation: serving is embedding math,
never a symbolic query).
"""

import numpy as np
import pytest


def service_quality(workbench):
    """Compute tail-decoding hit rates and the three-case S_R norms."""
    catalog = workbench.catalog
    model = workbench.pkgm
    arr = catalog.store.to_array()
    sample = arr[np.random.default_rng(0).choice(len(arr), size=min(500, len(arr)), replace=False)]

    service = model.service_triple(sample[:, 0], sample[:, 1])
    top = model.nearest_entities(service, k=10)
    hits1 = float(np.mean([sample[i, 2] == top[i][0] for i in range(len(sample))]))
    hits10 = float(np.mean([sample[i, 2] in top[i] for i in range(len(sample))]))

    schema_rels = {
        c.category_id: {catalog.relations.id_of(a.relation) for a in c.attributes}
        for c in catalog.schema
    }
    has, should, should_not = [], [], []
    for item in catalog.items[:400]:
        have = catalog.store.relations_of(item.entity_id)
        applicable = schema_rels[item.category_id]
        for r in range(len(catalog.relations)):
            pair = (item.entity_id, r)
            if r in have:
                has.append(pair)
            elif r in applicable:
                should.append(pair)
            else:
                should_not.append(pair)

    def mean_norm(pairs):
        pairs = np.asarray(pairs)
        out = model.service_relation(pairs[:, 0], pairs[:, 1])
        return float(np.abs(out).sum(axis=1).mean())

    return {
        "tail_hit@1": hits1,
        "tail_hit@10": hits10,
        "norm_has": mean_norm(has),
        "norm_should_have": mean_norm(should),
        "norm_should_not": mean_norm(should_not),
    }


def test_table1_service_semantics(benchmark, workbench, record_table):
    quality = service_quality(workbench)

    # Time the production serving path: 2k vectors for a batch of items.
    entities = [item.entity_id for item in workbench.catalog.items[:256]]
    benchmark(workbench.server.serve_sequence_batch, entities)

    record_table(
        "table1_service_semantics",
        [
            "Table I semantics check (paper: definitional; see DESIGN.md)",
            f"S_T decodes true tail: Hit@1={quality['tail_hit@1']:.3f} "
            f"Hit@10={quality['tail_hit@10']:.3f}",
            "S_R L1 norm by existence case (paper: has ~ should-have << should-not):",
            f"  has relation        : {quality['norm_has']:.3f}",
            f"  should have (missing): {quality['norm_should_have']:.3f}",
            f"  should NOT have     : {quality['norm_should_not']:.3f}",
        ],
    )

    assert quality["tail_hit@10"] > 0.5
    assert quality["norm_has"] < quality["norm_should_not"]
    assert quality["norm_should_have"] < quality["norm_should_not"]
