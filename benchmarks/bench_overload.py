"""Robustness — serving goodput and tail latency under overload.

Drives the overload gateway (admission control + deadlines + hedging +
drain/swap) with the three canonical seeded traffic profiles against
the bench-scale trained server, at arrival rates chosen to exceed what
the replicas can absorb.  The acceptance criteria mirror the serving
contract: every request is answered exactly once (shed requests get the
flagged degraded payload — nothing raises), accepted-request p99 stays
within the deadline budget, the spike sheds rather than queueing
unboundedly, and the mid-spike drain+swap answers every in-flight
request.

Two admission variants are benched for the spike: the default
token-bucket front door, and a bucketless variant where the AIMD
concurrency limit and the bounded queue do all the shedding.
"""

from repro.reliability import (
    AdmissionConfig,
    GatewayConfig,
    LoadTestConfig,
    PKGMGateway,
    StepClock,
    build_replicas,
)
from repro.reliability.loadtest import run_loadtest

SEED = 0
REQUESTS = 4000
DEADLINE = 0.25


def _gateway(server, admission):
    return PKGMGateway(
        build_replicas(server, 2, seed=SEED),
        GatewayConfig(
            deadline_budget=DEADLINE, hedge_after=0.05, admission=admission
        ),
        clock=StepClock(),
        seed=SEED,
    )


def _bucketed():
    return AdmissionConfig(rate=300.0, burst=64.0, queue_capacity=64)


def _bucketless():
    return AdmissionConfig(
        rate=None, initial_limit=4, max_limit=16, queue_capacity=32
    )


def test_overload_serving(benchmark, workbench, record_table):
    server = workbench.server
    items = server.known_items()
    scenarios = {
        "sustained": (_bucketed(), LoadTestConfig("sustained", REQUESTS, seed=SEED)),
        "ramp": (_bucketed(), LoadTestConfig("ramp", REQUESTS, seed=SEED)),
        "spike": (_bucketed(), LoadTestConfig("spike", REQUESTS, seed=SEED)),
        "spike-no-bucket": (
            _bucketless(),
            LoadTestConfig("spike", REQUESTS, seed=SEED),
        ),
    }
    results = {}

    def sweep():
        for name, (admission, config) in scenarios.items():
            gateway = _gateway(server, admission)
            report = run_loadtest(gateway, items, config)
            results[name] = (report, gateway.stats, gateway.admission.stats)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Robustness: overload serving — scenario | goodput | shed | "
        "p50 | p99 | hedge-wins | deadline-misses | drains/swaps"
    ]
    for name, (report, stats, admission) in results.items():
        lines.append(
            f"{name} | {report.goodput:.4f} | {report.shed_rate:.4f} | "
            f"{report.p50_latency:.6f}s | {report.p99_latency:.6f}s | "
            f"{report.hedge_wins}/{report.hedges_sent} | "
            f"{report.deadline_misses} | {report.drains}/{report.swaps}"
        )
    detail = results["spike"]
    lines.append("spike detail: " + detail[1].as_row())
    lines.append("spike detail: " + detail[2].as_row())
    bucketless = results["spike-no-bucket"][2]
    lines.append("spike-no-bucket detail: " + bucketless.as_row())
    record_table("overload_serving", lines)

    for name, (report, stats, admission) in results.items():
        # Exactly-once is asserted inside run_loadtest; here: the shed
        # path (not exceptions) absorbed the overload, and accepted
        # answers met their deadline.
        assert report.completed == REQUESTS, name
        assert report.p99_latency <= DEADLINE, name
        assert report.drains == 2 and report.swaps == 1, name
    assert results["spike"][0].shed > 0
    # Without the token bucket the AIMD limiter + bounded queue must do
    # the shedding (queue-full drops and/or priority evictions).
    assert bucketless.shed_queue_full + bucketless.evicted > 0
    assert results["spike-no-bucket"][0].shed > 0
