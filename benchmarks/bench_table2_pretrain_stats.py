"""Table II — statistics of the pre-training KG (PKG-sub substitute).

Paper row: PKG-sub | 142,634,045 items | 142,641,094 entities |
426 relations | 1,366,109,966 triples.  Our synthetic KG reproduces the
*shape* (items ≈ entities minus shared value vocabulary, few hundred
relations at full scale, ~10 triples per item) at laptop size; the
bench prints both rows and times catalog generation.
"""

from repro.data import CatalogConfig, generate_catalog
from repro.kg import kg_statistics

PAPER_ROW = "PKG-sub (paper)     | 142,634,045 | 142,641,094 | 426 | 1,366,109,966"


def test_table2_pretrain_stats(benchmark, workbench, record_table):
    stats = kg_statistics(
        workbench.catalog.store,
        workbench.catalog.entities,
        workbench.catalog.relations,
    )

    # Time catalog + KG generation at bench scale (the data pipeline the
    # paper ran in MaxCompute).
    benchmark.pedantic(
        generate_catalog,
        args=(workbench.config.catalog,),
        rounds=3,
        iterations=1,
    )

    record_table(
        "table2_pretrain_stats",
        [
            "Table II: | # items | # entity | # relation | # Triples",
            PAPER_ROW,
            stats.as_table_row("PKG-sub (synthetic) "),
            f"mean triples/item = {stats.mean_triples_per_item:.2f} "
            f"(paper: 1.37B/142.6M ~ 9.6 before the <5000-occurrence filter)",
        ],
    )

    assert stats.num_items > 0
    assert stats.num_entities > stats.num_items  # items + attribute values
    assert stats.num_triples > stats.num_items  # several attributes per item


def test_table2_relation_filtering(benchmark, record_table):
    """The paper drops attributes with < 5000 occurrences; we reproduce
    the pruning step at synthetic scale and report its effect."""
    catalog = generate_catalog(
        CatalogConfig(num_categories=8, products_per_category=20, seed=7)
    )
    before = len(catalog.store.relations())
    # The paper's 5000 threshold sits inside its relation-frequency
    # distribution; scale-equivalently, use our distribution's median.
    counts = sorted(catalog.store.relation_counts().values())
    min_count = counts[len(counts) // 2]
    filtered = benchmark(catalog.store.filter_relations, min_count)
    after = len(filtered.relations())
    record_table(
        "table2_relation_filtering",
        [
            f"relation pruning (paper: drop occurrences < 5000; here < {min_count})",
            f"relations before = {before}, after = {after}",
            f"triples  before = {len(catalog.store)}, after = {len(filtered)}",
        ],
    )
    assert after <= before
    assert all(c >= min_count for c in filtered.relation_counts().values())
