"""Table III — item classification dataset statistics.

Paper row: 1293 categories | 169,039 train | 36,225 test | 36,223 dev,
with <= 100 instances per category (the deliberate low-resource
setting).  We rebuild the dataset with the same constraints at bench
scale and check the structural properties.
"""

from collections import Counter

from repro.data import build_classification_dataset

PAPER_ROW = "dataset (paper)    | 1293 | 169039 | 36225 | 36223"


def test_table3_classification_stats(benchmark, workbench, record_table):
    dataset = benchmark.pedantic(
        build_classification_dataset,
        args=(workbench.catalog, workbench.titles),
        kwargs={"max_per_category": 100, "seed": 5},
        rounds=3,
        iterations=1,
    )

    record_table(
        "table3_classification_stats",
        [
            "Table III: | # category | # Train | # Test | # Dev",
            PAPER_ROW,
            dataset.as_table_row("dataset (synthetic)"),
        ],
    )

    counts = Counter(
        e.label for e in dataset.train + dataset.test + dataset.dev
    )
    assert max(counts.values()) <= 100  # the paper's low-resource cap
    assert len(counts) == dataset.num_categories
    # Same ordering of split sizes as the paper: train >> test ~ dev.
    assert len(dataset.train) > len(dataset.test) >= 1
    assert abs(len(dataset.test) - len(dataset.dev)) <= max(
        5, dataset.num_categories
    )
