"""Ablation — completion-during-service vs KG incompleteness.

§II-D claims PKGM "could complete knowledge graphs during servicing".
We hold out growing fractions of true triples before pre-training and
measure how well ``S_T(h, r)`` still decodes the held-out tails — the
vector-space analogue of link-prediction recall, measured exactly on
the facts the KG is missing.
"""

import numpy as np
import pytest

from repro.core import PKGMConfig, TrainerConfig, pretrain_pkgm
from repro.kg import holdout_incompleteness

FRACTIONS = (0.05, 0.15, 0.3)


def completion_hits(workbench, fraction):
    catalog = workbench.catalog
    observed, missing = holdout_incompleteness(
        catalog.store, fraction, np.random.default_rng(17)
    )
    model = pretrain_pkgm(
        observed,
        len(catalog.entities),
        len(catalog.relations),
        model_config=workbench.config.pkgm,
        trainer_config=workbench.config.pkgm_trainer,
        seed=0,
    )
    held = missing.to_array()
    sample = held[
        np.random.default_rng(3).choice(
            len(held), size=min(300, len(held)), replace=False
        )
    ]
    service = model.service_triple(sample[:, 0], sample[:, 1])
    top = model.nearest_entities(service, k=10)
    hit10 = float(np.mean([sample[i, 2] in top[i] for i in range(len(sample))]))
    hit1 = float(np.mean([sample[i, 2] == top[i][0] for i in range(len(sample))]))
    return hit1, hit10


def test_ablation_completion(benchmark, workbench, record_table):
    results = {}

    def sweep():
        for fraction in FRACTIONS:
            results[fraction] = completion_hits(workbench, fraction)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    n_entities = len(workbench.catalog.entities)
    chance10 = 10 / n_entities
    record_table(
        "ablation_completion",
        [
            "Ablation: completion-during-service vs incompleteness",
            "held-out fraction | Hit@1 | Hit@10 of S_T decoding held-out tails",
            *(
                f"{fraction:.2f} | {results[fraction][0]:.3f} | {results[fraction][1]:.3f}"
                for fraction in FRACTIONS
            ),
            f"(chance Hit@10 ~ {chance10:.4f} over {n_entities} entities)",
        ],
    )

    # Completion works far above chance even at 30% missing facts.
    for fraction in FRACTIONS:
        assert results[fraction][1] > 10 * chance10
