"""Table IV — item classification: BERT vs BERT+PKGM variants.

Paper numbers (Hit@1 | Hit@3 | Hit@10 | AC):

    BERT          71.03 | 84.91 | 92.47 | 71.52
    BERT_PKGM-T   71.26 | 85.76 | 93.07 | 72.14
    BERT_PKGM-R   71.55 | 85.43 | 92.86 | 72.26
    BERT_PKGM-all 71.64 | 85.90 | 93.17 | 72.19

Shape to reproduce: every PKGM variant >= base on Hit@k; the margins
are small in the paper (their base BERT is very strong); at our scale
the gap is larger because the mini encoder underfits noisy titles while
PKGM vectors carry clean attribute signal.
"""

import pytest

from repro.data import build_classification_dataset
from repro.tasks import ItemClassificationTask

PAPER_ROWS = [
    "BERT (paper)          | 71.03 | 84.91 | 92.47 | 71.52",
    "BERT_PKGM-T (paper)   | 71.26 | 85.76 | 93.07 | 72.14",
    "BERT_PKGM-R (paper)   | 71.55 | 85.43 | 92.86 | 72.26",
    "BERT_PKGM-all (paper) | 71.64 | 85.90 | 93.17 | 72.19",
]


@pytest.fixture(scope="module")
def task(workbench, config):
    dataset = build_classification_dataset(
        workbench.catalog, workbench.titles, max_per_category=100, seed=5
    )
    return ItemClassificationTask(
        dataset,
        workbench.tokenizer,
        workbench.encoder_config,
        server=workbench.server,
        pretrained_state=workbench.mlm_state,
        config=config.finetune,
    )


def test_table4_item_classification(benchmark, task, record_table):
    results = {}

    def run_all():
        for variant in ("base", "pkgm-t", "pkgm-r", "pkgm-all"):
            results[variant] = task.run(variant)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    record_table(
        "table4_item_classification",
        [
            "Table IV: variant | Hit@1 | Hit@3 | Hit@10 | AC (percent)",
            *PAPER_ROWS,
            "--- measured (synthetic substrate) ---",
            *(results[v].as_table_row() for v in results),
        ],
    )

    base = results["base"]
    for variant in ("pkgm-t", "pkgm-r", "pkgm-all"):
        assert results[variant].hits[10] >= base.hits[10] - 0.02, (
            f"{variant} Hit@10 fell below base"
        )
    # The paper's headline: PKGM-enhanced beats base on Hit@1.
    best_pkgm_hit1 = max(results[v].hits[1] for v in ("pkgm-t", "pkgm-r", "pkgm-all"))
    assert best_pkgm_hit1 >= base.hits[1]
