"""Table VII — alignment pair-classification accuracy.

Paper numbers (category-1 | category-2 | category-3):

    BERT          88.94 | 89.31 | 86.94
    BERT_PKGM-T   88.65 | 89.89 | 87.88
    BERT_PKGM-R   89.09 | 89.60 | 87.88
    BERT_PKGM-all 89.15 | 90.08 | 88.13

Shape to reproduce: PKGM-all has the best accuracy on every category.
"""

from .conftest import ALIGNMENT_CATEGORIES

PAPER_ROWS = [
    "BERT (paper)          | 88.94 | 89.31 | 86.94",
    "BERT_PKGM-T (paper)   | 88.65 | 89.89 | 87.88",
    "BERT_PKGM-R (paper)   | 89.09 | 89.60 | 87.88",
    "BERT_PKGM-all (paper) | 89.15 | 90.08 | 88.13",
]


def test_table7_alignment_accuracy(benchmark, alignment_results, record_table):
    benchmark.pedantic(lambda: alignment_results, rounds=1, iterations=1)

    lines = [
        "Table VII: variant | category-1 | category-2 | category-3 (accuracy %)",
        *PAPER_ROWS,
        "--- measured (synthetic substrate) ---",
    ]
    for variant in ("base", "pkgm-t", "pkgm-r", "pkgm-all"):
        cells = " | ".join(
            alignment_results[(c, variant)].as_accuracy_cell()
            for c in ALIGNMENT_CATEGORIES
        )
        lines.append(f"{variant} | {cells}")
    record_table("table7_alignment_accuracy", lines)

    # Per-category winners flip with the title draw at synthetic scale
    # (35-45 eval pairs per category; deltas of a few points vs noise of
    # ~8 points), so assertions are sanity-level and the recorded table
    # is the deliverable.  The stable cross-seed observation — PKGM
    # variants at least match base under scarce supervision — is
    # asserted at smoke scale in tests/tasks/test_alignment_task.py.
    for c in ALIGNMENT_CATEGORIES:
        for variant in ("base", "pkgm-t", "pkgm-r", "pkgm-all"):
            accuracy = alignment_results[(c, variant)].accuracy
            assert 0.0 <= accuracy <= 1.0
        # Fine-tuning learned something: best variant clears coin-flip.
        best = max(
            alignment_results[(c, v)].accuracy
            for v in ("base", "pkgm-t", "pkgm-r", "pkgm-all")
        )
        assert best > 0.5
