"""Table IX — recommendation dataset statistics.

Paper row: TAOBAO-Recommendation | 37,847 items | 29,015 users |
443,425 interactions, each user with >= 10 interactions.  We regenerate
the synthetic equivalent and check the structural constraints.
"""

from collections import Counter

from repro.data import generate_interactions

PAPER_ROW = "TAOBAO-Recommendation (paper) | 37847 | 29015 | 443425"


def test_table9_recommendation_stats(benchmark, workbench, config, record_table):
    dataset = benchmark.pedantic(
        generate_interactions,
        args=(workbench.catalog, config.interactions),
        rounds=3,
        iterations=1,
    )

    per_user = Counter(i.user_id for i in dataset.interactions)
    record_table(
        "table9_recommendation_stats",
        [
            "Table IX: | # Items | # Users | # Interactions",
            PAPER_ROW,
            dataset.as_table_row(),
            f"min interactions/user = {min(per_user.values())} (paper: >= 10)",
        ],
    )

    assert len(per_user) == config.interactions.num_users
    assert min(per_user.values()) >= 10  # the paper's constraint
    train, held = dataset.leave_one_out()
    assert len(held) == config.interactions.num_users
    assert len(train) + len(held) == len(dataset.interactions)
