"""Ablation — parameter-server training vs the single-process reference.

The paper trains on 50 parameter servers and 200 workers.  Our PS
simulation reproduces the architecture (sharded pull/push, server-side
Adam, bounded gradient staleness); this bench verifies that the
asynchronous pipeline reaches the same optimization quality as the
reference trainer and reports the RPC accounting.
"""

import numpy as np
import pytest

from repro.core import PKGM, PKGMTrainer, TrainerConfig
from repro.distributed import DistributedConfig, DistributedPKGMTrainer
from repro.kg import split_triples

STALENESS_SWEEP = (0, 2, 8)


def test_ablation_distributed_training(benchmark, workbench, record_table):
    store = workbench.catalog.store
    n_ent = len(workbench.catalog.entities)
    n_rel = len(workbench.catalog.relations)
    results = {}

    def sweep():
        reference = PKGM(n_ent, n_rel, workbench.config.pkgm, rng=np.random.default_rng(0))
        ref_history = PKGMTrainer(
            reference,
            TrainerConfig(epochs=10, batch_size=256, learning_rate=0.02, seed=0),
        ).train(store)
        results["reference"] = (ref_history.epoch_losses[-1], None, None)
        for staleness in STALENESS_SWEEP:
            model = PKGM(n_ent, n_rel, workbench.config.pkgm, rng=np.random.default_rng(0))
            trainer = DistributedPKGMTrainer(
                model,
                DistributedConfig(
                    num_shards=8,
                    num_workers=16,
                    staleness=staleness,
                    epochs=10,
                    batch_size=256,
                    learning_rate=0.02,
                    seed=0,
                ),
            )
            losses = trainer.train(store)
            results[f"ps-staleness-{staleness}"] = (
                losses[-1],
                trainer.server.pull_count,
                trainer.server.push_count,
            )
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["Ablation: PS simulation — setup | final loss | pulls | pushes"]
    for name, (loss, pulls, pushes) in results.items():
        rpc = f"{pulls} | {pushes}" if pulls is not None else "- | -"
        lines.append(f"{name} | {loss:.4f} | {rpc}")
    record_table("ablation_distributed", lines)

    reference_loss = results["reference"][0]
    for staleness in STALENESS_SWEEP:
        ps_loss = results[f"ps-staleness-{staleness}"][0]
        # The async pipeline must land in the same loss regime.
        assert ps_loss < reference_loss * 2.5 + 0.1
