"""Scenario benchmarks — zero-shot recommendation + rule transfer.

The paper's business case for a pre-trained product KG model is that
downstream services can consume knowledge *without task-specific
training data*.  Two scenario benches quantify that here:

* **Zero-shot cold-start** — items present in the KG but absent from
  every training interaction are ranked for held-out users purely from
  their condensed service vectors.  The acceptance bar: the service
  ranking must beat both the popularity and random baselines on HR@10
  *and* NDCG@10.
* **Rule transfer** — attribute-implication rules mined on one
  category's subgraph are evaluated on every other category, the
  explanation service's cross-domain story.
"""

from repro.kg import RuleMiner
from repro.scenarios import (
    ColdStartConfig,
    category_subgraphs,
    evaluate_rule_transfer,
    run_coldstart,
)


def test_bench_zero_shot_coldstart(benchmark, config, record_table):
    results = {}

    def run():
        report, split = run_coldstart(
            config, coldstart=ColdStartConfig(seed=7), train_ncf=True
        )
        results["report"] = report
        results["split"] = split

    benchmark.pedantic(run, rounds=1, iterations=1)

    report = results["report"]
    record_table(
        "scenarios_coldstart",
        [
            "Zero-shot cold-start recommendation (service vectors only)",
            results["split"].summary(),
            *report.lines(),
            "(cold items are in the KG but absent from all training "
            "interactions by construction)",
        ],
    )

    service = report.methods["service"]
    for baseline in ("popularity", "random"):
        other = report.methods[baseline]
        assert service["HR@10"] > other["HR@10"], (
            f"service HR@10 {service['HR@10']:.4f} must beat "
            f"{baseline} {other['HR@10']:.4f}"
        )
        assert service["NDCG@10"] > other["NDCG@10"], (
            f"service NDCG@10 {service['NDCG@10']:.4f} must beat "
            f"{baseline} {other['NDCG@10']:.4f}"
        )


def test_bench_rule_transfer(benchmark, workbench, record_table):
    subgraphs = category_subgraphs(workbench.catalog)
    categories = sorted(subgraphs)[:4]
    miner = RuleMiner(min_support=2, min_confidence=0.6)
    reports = []

    def run():
        reports.clear()
        for source in categories:
            for target in categories:
                if source == target:
                    continue
                reports.append(
                    evaluate_rule_transfer(
                        subgraphs[source],
                        subgraphs[target],
                        miner=miner,
                        source_category=source,
                        target_category=target,
                    )
                )

    benchmark.pedantic(run, rounds=1, iterations=1)

    record_table(
        "scenarios_rule_transfer",
        [
            "Rule transfer across category subgraphs "
            "(mine on source, score on target)",
            *[report.as_row() for report in reports],
            "(precision: of predicted slots, fraction matching target "
            "ground truth; coverage: fraction of slots predicted)",
        ],
    )

    assert reports
    assert any(report.predicted > 0 for report in reports)
    in_domain = [r for r in reports if r.precision > 0]
    assert in_domain, "at least one transfer pair must predict correctly"
