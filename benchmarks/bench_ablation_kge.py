"""Ablation — the triple-module scorer choice.

The paper "appl[ies] the simple and effective TransE" in the triple
query module.  This bench swaps the scorer (the full baseline zoo) and
compares filtered link prediction on the same product-KG split,
validating that TransE is a reasonable choice on this graph shape.
"""

import numpy as np
import pytest

from repro.baselines import (
    KGETrainer,
    KGETrainerConfig,
    evaluate_link_prediction,
    make_scorer,
)
from repro.kg import split_triples

MODELS = ("transe", "transh", "transr", "distmult", "complex", "rescal")


@pytest.fixture(scope="module")
def split(workbench):
    return split_triples(workbench.catalog.store, 0.1, 0.1, np.random.default_rng(0))


def run_model(workbench, split, name):
    model = make_scorer(
        name,
        len(workbench.catalog.entities),
        len(workbench.catalog.relations),
        dim=workbench.config.pkgm.dim,
        rng=np.random.default_rng(0),
    )
    KGETrainer(
        model,
        KGETrainerConfig(epochs=30, batch_size=256, learning_rate=0.02, seed=0),
    ).train(split.train)
    return evaluate_link_prediction(
        model,
        split.test,
        [split.train, split.valid, split.test],
        max_queries=150,
        rng=np.random.default_rng(1),
    )


def test_ablation_kge_scorers(benchmark, workbench, split, record_table):
    results = {}

    def sweep():
        for name in MODELS:
            results[name] = run_model(workbench, split, name)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    record_table(
        "ablation_kge",
        [
            "Ablation: triple-module scorer on the product KG (filtered)",
            *(results[name].as_row(name) for name in MODELS),
        ],
    )

    # TransE is competitive: within the top half of the zoo by MRR.
    ranked = sorted(MODELS, key=lambda n: -results[n].mrr)
    assert ranked.index("transe") < len(MODELS) / 2 + 1
    for name in MODELS:
        assert 0.0 <= results[name].mrr <= 1.0
