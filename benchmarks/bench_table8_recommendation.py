"""Table VIII — NCF recommendation with PKGM features.

Paper numbers (HR@1/3/5/10/30 then NDCG@1/3/5/10/30):

    NCF           27.94 44.26 52.16 62.88 81.26 | .2794 .3744 .4069 .4415 .4853
    NCF_PKGM-T    27.96 44.83 52.43 63.51 81.62 | .2796 .3778 .4091 .4449 .4880
    NCF_PKGM-R    31.01 47.99 56.10 66.98 84.73 | .3101 .4091 .4424 .4777 .5200
    NCF_PKGM-all  30.76 47.92 55.60 66.84 84.71 | .3076 .4079 .4395 .4758 .5185

Shape to reproduce: every PKGM variant >= NCF on HR/NDCG; the relation
query module (PKGM-R) contributes more than the triple module (PKGM-T).
"""

import pytest

from repro.data import generate_interactions
from repro.tasks import RecommendationTask

PAPER_ROWS = [
    "NCF (paper)          | 27.94 44.26 52.16 62.88 81.26 | .2794 .3744 .4069 .4415 .4853",
    "NCF_PKGM-T (paper)   | 27.96 44.83 52.43 63.51 81.62 | .2796 .3778 .4091 .4449 .4880",
    "NCF_PKGM-R (paper)   | 31.01 47.99 56.10 66.98 84.73 | .3101 .4091 .4424 .4777 .5200",
    "NCF_PKGM-all (paper) | 30.76 47.92 55.60 66.84 84.71 | .3076 .4079 .4395 .4758 .5185",
]


@pytest.fixture(scope="module")
def task(workbench, config):
    interactions = generate_interactions(workbench.catalog, config.interactions)
    entity_ids = [item.entity_id for item in workbench.catalog.items]
    return RecommendationTask(
        interactions, entity_ids, server=workbench.server, config=config.ncf
    )


def test_table8_recommendation(benchmark, task, record_table):
    results = {}

    def run_all():
        for variant in ("base", "pkgm-t", "pkgm-r", "pkgm-all"):
            results[variant] = task.run(variant)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    record_table(
        "table8_recommendation",
        [
            "Table VIII: variant | HR@1/3/5/10/30 (%) | NDCG@1/3/5/10/30",
            *PAPER_ROWS,
            "--- measured (synthetic substrate) ---",
            *(results[v].as_table_row() for v in results),
        ],
    )

    base = results["base"].metrics
    # Paper shape 1: PKGM features help at the large cutoffs.
    pkgm_best_hr10 = max(
        results[v].metrics["HR@10"] for v in ("pkgm-t", "pkgm-r", "pkgm-all")
    )
    assert pkgm_best_hr10 >= base["HR@10"] - 0.02
    # Paper shape 2: relation-module features >= triple-module features.
    assert (
        results["pkgm-r"].metrics["NDCG@30"]
        >= results["pkgm-t"].metrics["NDCG@30"] - 0.02
    )
    # Sanity: metrics monotone in k for every variant.
    for result in results.values():
        assert result.metrics["HR@1"] <= result.metrics["HR@30"]
