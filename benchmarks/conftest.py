"""Shared fixtures for the reproduction benchmarks.

Every bench consumes the same session-scoped workbench (catalog + PKGM
+ MLM-pre-trained encoder at ``bench_config`` scale) and writes its
paper-style output table to ``benchmarks/results/`` so the numbers that
back EXPERIMENTS.md are regenerated on every run.
"""

from pathlib import Path

import pytest

from repro.config import bench_config
from repro.data import TitleGenerator, build_alignment_dataset
from repro.pipeline import build_workbench
from repro.tasks import ProductAlignmentTask

RESULTS_DIR = Path(__file__).parent / "results"
ALIGNMENT_CATEGORIES = (0, 1, 2)


@pytest.fixture(scope="session")
def config():
    return bench_config()


@pytest.fixture(scope="session")
def workbench(config):
    return build_workbench(config, verbose=True)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def fresh_titles(workbench, config):
    """A factory for independent title generators.

    The workbench's generator is stateful (its rng advances with every
    title), which would make bench results depend on execution order.
    Benches that build datasets draw from a fresh generator with a fixed
    seed instead, so every table is reproducible in isolation.
    """

    def make(seed: int) -> TitleGenerator:
        return TitleGenerator(workbench.catalog, config.titles, seed=seed)

    return make


@pytest.fixture(scope="session")
def alignment_datasets(workbench, config):
    """The paper's three per-category alignment datasets (Table V shape)."""
    return {
        category: build_alignment_dataset(
            workbench.catalog,
            TitleGenerator(workbench.catalog, config.titles, seed=300 + category),
            category_id=category,
            ranking_candidates=99,
            train_samples_per_pair=4,
            seed=11 + category,
        )
        for category in ALIGNMENT_CATEGORIES
    }


@pytest.fixture(scope="session")
def alignment_results(workbench, config, alignment_datasets):
    """Fine-tune all four variants on all three categories once.

    Tables VI (Hit@k) and VII (accuracy) both read from these runs, as
    in the paper.
    """
    results = {}
    for category, dataset in alignment_datasets.items():
        task = ProductAlignmentTask(
            dataset,
            workbench.tokenizer,
            workbench.encoder_config,
            server=workbench.server,
            pretrained_state=workbench.mlm_state,
            config=config.finetune_pair,
        )
        for variant in ("base", "pkgm-t", "pkgm-r", "pkgm-all"):
            results[(category, variant)] = task.run(variant, eval_split="all")
    return results


@pytest.fixture
def record_table(results_dir):
    """Write a reproduction table to results/<name>.txt and echo it."""

    def _record(name: str, lines):
        text = "\n".join(lines) + "\n"
        (results_dir / f"{name}.txt").write_text(text, encoding="utf-8")
        print(f"\n=== {name} ===")
        print(text)

    return _record
