"""Ablation — convergence quality under injected parameter-server faults.

The paper's production setting (50 PS nodes, 200 workers) makes dropped
pushes, RPC timeouts, and node restarts routine rather than exceptional.
This bench sweeps fault plans of increasing severity over the same
workload and verifies the reliability stack's acceptance criterion: the
documented plan (>=10% dropped pushes, transient RPC errors retried with
backoff, plus one mid-epoch shard crash recovered from a crash-consistent
checkpoint) must land within 10% of the fault-free final loss.
"""

import numpy as np
import pytest

from repro.core import PKGM
from repro.distributed import DistributedConfig, DistributedPKGMTrainer
from repro.reliability import CrashEvent, FaultPlan, RetryPolicy

FAULT_SEED = 0
DROP_SWEEP = (0.0, 0.05, 0.10, 0.20)


def _config(workbench):
    return DistributedConfig(
        num_shards=8,
        num_workers=16,
        epochs=10,
        batch_size=256,
        learning_rate=0.02,
        seed=FAULT_SEED,
    )


def _model(workbench):
    n_ent = len(workbench.catalog.entities)
    n_rel = len(workbench.catalog.relations)
    return PKGM(
        n_ent, n_rel, workbench.config.pkgm, rng=np.random.default_rng(FAULT_SEED)
    )


def test_ablation_fault_tolerance(benchmark, workbench, record_table, tmp_path):
    store = workbench.catalog.store
    results = {}

    def sweep():
        clean = DistributedPKGMTrainer(_model(workbench), _config(workbench))
        clean_losses = clean.train(store)
        results["fault-free"] = (clean_losses[-1], None, 0)

        for drop in DROP_SWEEP[1:]:
            plan = FaultPlan(
                seed=FAULT_SEED, push_drop_prob=drop, rpc_error_prob=0.02
            )
            trainer = DistributedPKGMTrainer(
                _model(workbench),
                _config(workbench),
                faults=plan,
                retry=RetryPolicy(seed=FAULT_SEED),
            )
            losses = trainer.train(store)
            results[f"drop-{drop:.0%}"] = (
                losses[-1],
                trainer.fault_stats,
                trainer.recoveries,
            )

        # The documented acceptance plan: 10% drops + RPC errors + one
        # shard crash mid-epoch, recovered from the latest checkpoint.
        plan = FaultPlan(
            seed=FAULT_SEED,
            push_drop_prob=0.10,
            rpc_error_prob=0.02,
            crashes=(CrashEvent(epoch=5, batch=2, shard=1),),
        )
        trainer = DistributedPKGMTrainer(
            _model(workbench),
            _config(workbench),
            faults=plan,
            retry=RetryPolicy(seed=FAULT_SEED),
            checkpoint_dir=tmp_path / "ckpt",
            resume=False,
        )
        losses = trainer.train(store)
        results["drop-10%+crash+resume"] = (
            losses[-1],
            trainer.fault_stats,
            trainer.recoveries,
        )
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    clean_loss = results["fault-free"][0]
    lines = [
        "Ablation: fault tolerance — plan | final loss | gap vs clean |"
        " dropped | rpc-errs | recoveries"
    ]
    for name, (loss, stats, recoveries) in results.items():
        gap = abs(loss - clean_loss) / abs(clean_loss)
        if stats is None:
            counts = "- | -"
        else:
            counts = f"{stats.pushes_dropped} | {stats.rpc_errors}"
        lines.append(
            f"{name} | {loss:.4f} | {gap:.2%} | {counts} | {recoveries}"
        )
    record_table("ablation_faults", lines)

    # Acceptance: every swept plan stays within 10% of fault-free, and
    # the crash plan actually exercised checkpoint recovery.
    for name, (loss, _, _) in results.items():
        gap = abs(loss - clean_loss) / abs(clean_loss)
        assert gap <= 0.10, f"{name}: final loss {loss:.4f} is {gap:.1%} off"
    assert results["drop-10%+crash+resume"][2] == 1
    assert results["drop-10%+crash+resume"][1].shard_crashes == 1
