"""Ablation — number of key relations k.

The paper fixes k = 10 key relations per category (§III-A1) without
ablating it.  This bench sweeps k and measures downstream
classification Hit@1, probing how much service signal each extra
relation contributes on the synthetic substrate.
"""

import pytest

from repro.core import KeyRelationSelector, PKGMServer
from repro.data import build_classification_dataset
from repro.tasks import ItemClassificationTask

SWEEP = (1, 2, 5, 8)


@pytest.fixture(scope="module")
def dataset(workbench):
    return build_classification_dataset(
        workbench.catalog, workbench.titles, max_per_category=100, seed=5
    )


def run_with_k(workbench, config, dataset, k):
    item_to_category = {
        item.entity_id: item.category_id for item in workbench.catalog.items
    }
    selector = KeyRelationSelector(workbench.catalog.store, item_to_category, k=k)
    server = PKGMServer(workbench.pkgm, selector)
    task = ItemClassificationTask(
        dataset,
        workbench.tokenizer,
        workbench.encoder_config,
        server=server,
        pretrained_state=workbench.mlm_state,
        config=config.finetune,
    )
    return task.run("pkgm-all")


def test_ablation_key_relations(benchmark, workbench, config, dataset, record_table):
    results = {}

    def sweep():
        for k in SWEEP:
            results[k] = run_with_k(workbench, config, dataset, k)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    record_table(
        "ablation_key_relations",
        [
            "Ablation: key relations k vs classification quality (pkgm-all)",
            "k | Hit@1 | Hit@3 | Hit@10 | AC (percent)",
            *(
                f"{k} | " + results[k].as_table_row().split(" | ", 1)[1]
                for k in SWEEP
            ),
        ],
    )

    # More key relations should not hurt much: best k is not the smallest.
    best_k = max(SWEEP, key=lambda k: results[k].hits[1])
    assert results[best_k].hits[1] >= results[SWEEP[0]].hits[1]
    for k in SWEEP:
        assert 0.0 <= results[k].accuracy <= 1.0
