"""Out-of-core embedding store — throughput, cold start, recovery.

Measures what the storage engine trades for crash safety (repro.store):

* **lookup throughput** — seeded random row gathers through the mmap
  page cache vs numpy fancy-indexing on an in-RAM table, at three
  catalog sizes with a cache budget far below the table bytes;
* **cold start** — ``EmbeddingStore.open`` reads and verifies only the
  manifest, so start cost is proportional to the page-CRC list, not
  the catalog; compared against materializing the full table;
* **recovery** — seeded corruption (torn write + bit flips), then
  ``scrub`` and page-level ``repair`` from a replica, timed, with the
  repaired files asserted byte-identical to the pristine build.

Wall time is real cost here, so ``time.perf_counter`` is fine —
benchmarks live outside the virtual-clock packages lint rule R007
covers.
"""

import time

import numpy as np

from repro.reliability import StorageFaultPlan, inject_storage_faults
from repro.store import EmbeddingStore

SEED = 0
DIM = 64
SIZES = (4_096, 16_384, 65_536)  # rows; float64 -> 2 MiB .. 32 MiB
NUM_SHARDS = 4
PAGE_BYTES = 4096
CACHE_PAGES = 64  # 256 KiB page-cache budget at every size
QUERIES = 4_096
BATCH = 64


def _table(rows):
    rng = np.random.default_rng(SEED)
    return rng.standard_normal((rows, DIM))


def _query_ids(rows):
    return np.random.default_rng(SEED + 1).integers(
        0, rows, size=QUERIES, dtype=np.int64
    )


def _gather_seconds(read_batch, ids):
    start = time.perf_counter()
    for lo in range(0, len(ids), BATCH):
        read_batch(ids[lo : lo + BATCH])
    return time.perf_counter() - start


def _measure_size(tmp_dir, rows):
    table = _table(rows)
    ids = _query_ids(rows)
    primary_dir = tmp_dir / f"{rows}-primary"
    replica_dir = tmp_dir / f"{rows}-replica"
    for directory in (primary_dir, replica_dir):
        EmbeddingStore.build(
            directory,
            {"entity_table": table},
            num_shards=NUM_SHARDS,
            page_bytes=PAGE_BYTES,
        ).close()
    pristine = {
        p.name: p.read_bytes() for p in sorted(primary_dir.iterdir())
    }

    # Cold start: manifest-only open + first row vs full materialize.
    start = time.perf_counter()
    store = EmbeddingStore.open(primary_dir, cache_pages=CACHE_PAGES)
    store.read_row("entity_table", 0)
    open_seconds = time.perf_counter() - start
    start = time.perf_counter()
    full = store.read_table("entity_table")
    load_seconds = time.perf_counter() - start
    assert np.array_equal(full, table)

    # Random-gather throughput: mmap page cache vs in-RAM fancy index.
    store_seconds = _gather_seconds(
        lambda batch: store.read_rows("entity_table", batch), ids
    )
    ram_seconds = _gather_seconds(lambda batch: table[batch], ids)
    assert len(store._cache) <= CACHE_PAGES

    # Recovery: seeded damage, scrub, page-level repair from replica.
    store.close()
    inject_storage_faults(
        primary_dir, StorageFaultPlan(seed=SEED, torn_writes=1, bit_flips=4)
    )
    store = EmbeddingStore.open(primary_dir, cache_pages=CACHE_PAGES)
    start = time.perf_counter()
    scrub = store.scrub()
    scrub_seconds = time.perf_counter() - start
    replica = EmbeddingStore.open(replica_dir)
    start = time.perf_counter()
    repair = store.repair(replica)
    repair_seconds = time.perf_counter() - start
    replica.close()
    assert not scrub.clean and repair.complete
    assert {
        p.name: p.read_bytes() for p in sorted(primary_dir.iterdir())
    } == pristine
    store.close()

    nbytes = table.nbytes
    return {
        "rows": rows,
        "mib": nbytes / 2**20,
        "cache_ratio": (CACHE_PAGES * PAGE_BYTES) / nbytes,
        "open_s": open_seconds,
        "load_s": load_seconds,
        "store_krps": QUERIES / store_seconds / 1e3,
        "ram_krps": QUERIES / ram_seconds / 1e3,
        "bad_pages": scrub.pages_bad,
        "scrub_s": scrub_seconds,
        "repair_s": repair_seconds,
    }


def test_store_out_of_core(benchmark, record_table, tmp_path):
    rows_by_size = {}

    def sweep():
        for rows in SIZES:
            rows_by_size[rows] = _measure_size(tmp_path, rows)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Out-of-core embedding store — crash-safe mmap shards vs in-RAM "
        f"(dim={DIM}, float64, {NUM_SHARDS} shards, {PAGE_BYTES}B pages, "
        f"{CACHE_PAGES}-page cache, {QUERIES} random gathers of {BATCH}, "
        f"seed {SEED})",
        "rows | table MiB | cache/table | open+1row s | full load s | "
        "store kreads/s | RAM kreads/s | bad pages | scrub s | repair s",
    ]
    for rows in SIZES:
        r = rows_by_size[rows]
        lines.append(
            f"{r['rows']} | {r['mib']:.0f} | {r['cache_ratio']:.3f} | "
            f"{r['open_s']:.4f} | {r['load_s']:.4f} | "
            f"{r['store_krps']:.1f} | {r['ram_krps']:.1f} | "
            f"{r['bad_pages']} | {r['scrub_s']:.4f} | {r['repair_s']:.4f}"
        )
    largest = rows_by_size[SIZES[-1]]
    lines.append(
        "acceptance: every size repaired byte-identically; cache budget "
        f"{largest['cache_ratio']:.3f}x of the largest table with bounded "
        "page residency"
    )
    record_table("store_out_of_core", lines)

    assert largest["cache_ratio"] < 0.1  # genuinely out-of-core
    for r in rows_by_size.values():
        assert r["bad_pages"] > 0
