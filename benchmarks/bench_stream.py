"""Catalog churn — incremental absorption vs. the batch alternatives.

Two costs dominate a churning catalog if every delta forces a batch
rebuild: re-clustering the retrieval index and re-training the
embedding tables.  ``repro.stream`` replaces both with incremental
paths, and this bench prices them against the batch baselines:

* **index absorption** — a :class:`DeltaIndex` absorbs each round of
  inserts/deletes via per-list appends and tombstones, vs. a full
  k-means rebuild of the IVF index after every round.  Acceptance:
  the incremental path is >= 10x faster over the run, with recall
  parity against an exact scan of the live set.
* **continual training** — stream-born entities are warm-started and
  refined with bounded replay-buffered TransE steps, vs. a full
  retrain over the final triple set.  Acceptance: filtered
  link-prediction quality on the new entities' triples lands within
  the stated tolerance of the full retrain at a fraction of the
  gradient steps.

Wall time is real cost here, so ``time.perf_counter`` is fine —
benchmarks live outside the virtual-clock packages lint rule R007
covers.
"""

import time

import numpy as np

from repro.baselines import KGETrainer, KGETrainerConfig, TransE
from repro.baselines.link_prediction import evaluate_link_prediction
from repro.config import smoke_config
from repro.data import generate_catalog
from repro.index.ivf import IVFFlatIndex
from repro.kg import TripleStore
from repro.stream import (
    CatalogDeltaStream,
    ContinualConfig,
    ContinualTrainer,
    DeltaIndex,
    DeltaIndexConfig,
    DeltaStreamConfig,
    StreamState,
)

SEED = 0

# --- index churn shape -------------------------------------------------
N_BASE = 2048
DIM = 16
NLIST = 32
NPROBE = 8
ROUNDS = 8
INSERTS_PER_ROUND = 96
DELETES_PER_ROUND = 48
N_QUERIES = 32
K = 10

# --- continual-training shape ------------------------------------------
BATCHES = 8
EPOCHS = 30
MRR_TOLERANCE = 0.20
HITS10_TOLERANCE = 0.20


def _exact_topk(live, query, k):
    ids = np.fromiter(live.keys(), dtype=np.int64)
    vectors = np.stack([live[i] for i in ids])
    distances = np.square(vectors - query).sum(axis=1)
    return set(ids[np.argsort(distances, kind="stable")[:k]].tolist())


def test_incremental_absorption_beats_rebuild(record_table):
    rng = np.random.default_rng(SEED)
    base_vectors = rng.standard_normal((N_BASE, DIM))
    base_ids = np.arange(N_BASE, dtype=np.int64)
    live = {int(i): base_vectors[i] for i in base_ids}

    def fresh_rounds():
        round_rng = np.random.default_rng([SEED, 1])
        rounds = []
        next_id = N_BASE
        alive = list(range(N_BASE))
        for _ in range(ROUNDS):
            inserts = round_rng.standard_normal((INSERTS_PER_ROUND, DIM))
            insert_ids = np.arange(
                next_id, next_id + INSERTS_PER_ROUND, dtype=np.int64
            )
            next_id += INSERTS_PER_ROUND
            doomed = round_rng.choice(
                len(alive), size=DELETES_PER_ROUND, replace=False
            )
            delete_ids = np.asarray(
                sorted(alive[j] for j in doomed), dtype=np.int64
            )
            alive = sorted(
                (set(alive) | set(insert_ids.tolist()))
                - set(delete_ids.tolist())
            )
            rounds.append((inserts, insert_ids, delete_ids))
        return rounds

    churn = fresh_rounds()

    # Incremental: one DeltaIndex absorbs every round.
    base = IVFFlatIndex(dim=DIM, nlist=NLIST, nprobe=NPROBE, seed=SEED)
    base.build(base_vectors, base_ids)
    delta = DeltaIndex(base, DeltaIndexConfig())
    started = time.perf_counter()
    for inserts, insert_ids, delete_ids in churn:
        delta.insert(inserts, insert_ids)
        delta.delete(delete_ids)
        delta.maintenance()
    incremental_s = time.perf_counter() - started

    # Baseline: a full k-means rebuild after every round.
    rebuild_s = 0.0
    for inserts, insert_ids, delete_ids in churn:
        for vector, identity in zip(inserts, insert_ids):
            live[int(identity)] = vector
        for identity in delete_ids:
            del live[int(identity)]
        ids = np.fromiter(live.keys(), dtype=np.int64)
        vectors = np.stack([live[i] for i in ids])
        started = time.perf_counter()
        rebuilt = IVFFlatIndex(dim=DIM, nlist=NLIST, nprobe=NPROBE, seed=SEED)
        rebuilt.build(vectors, ids)
        rebuild_s += time.perf_counter() - started

    # Recall parity: the absorbed index vs the last full rebuild, both
    # against an exact scan — absorption must not degrade the IVF
    # approximation the rebuild would give at the same nprobe.
    query_rng = np.random.default_rng([SEED, 2])
    delta_hits = rebuilt_hits = 0
    for _ in range(N_QUERIES):
        query = query_rng.standard_normal(DIM)
        exact = _exact_topk(live, query, K)
        _, found = delta.search(query[None, :], k=K)
        delta_hits += len(exact & {int(i) for i in found[0] if i >= 0})
        _, found = rebuilt.search(query[None, :], k=K)
        rebuilt_hits += len(exact & {int(i) for i in found[0] if i >= 0})
    recall = delta_hits / (N_QUERIES * K)
    rebuilt_recall = rebuilt_hits / (N_QUERIES * K)
    speedup = rebuild_s / max(incremental_s, 1e-9)

    record_table(
        "stream_churn_index",
        [
            "Incremental IVF absorption vs full rebuild — "
            f"(N={N_BASE}, dim={DIM}, nlist={NLIST}, {ROUNDS} rounds x "
            f"+{INSERTS_PER_ROUND}/-{DELETES_PER_ROUND}, seed {SEED})",
            "path | total s | per round ms | recall@10 vs exact",
            f"incremental (appends+tombstones) | {incremental_s:.3f} | "
            f"{1000 * incremental_s / ROUNDS:.1f} | {recall:.3f}",
            f"full rebuild per round | {rebuild_s:.3f} | "
            f"{1000 * rebuild_s / ROUNDS:.1f} | {rebuilt_recall:.3f}",
            f"acceptance: {speedup:.1f}x >= 10x speedup, absorbed recall "
            f"{recall:.3f} >= rebuilt {rebuilt_recall:.3f} - 0.05",
        ],
    )
    assert speedup >= 10.0, f"incremental only {speedup:.1f}x faster"
    assert recall >= rebuilt_recall - 0.05, (recall, rebuilt_recall)


def test_continual_training_tracks_full_retrain(record_table):
    experiment = smoke_config()
    catalog = generate_catalog(experiment.catalog)
    state = StreamState.from_catalog(catalog)
    base_entities = state.base_entity_count
    num_relations = len(catalog.relations)
    base_triples = sorted(state.triples())

    trainer_config = KGETrainerConfig(
        epochs=EPOCHS, batch_size=128, seed=SEED
    )

    # Base model: full training over the pre-churn catalog.
    base_model = TransE(
        base_entities, num_relations, DIM, rng=np.random.default_rng(SEED)
    )
    started = time.perf_counter()
    KGETrainer(base_model, trainer_config).train(TripleStore(base_triples))
    base_s = time.perf_counter() - started

    # Continual path: absorb the churn with warm starts + bounded steps.
    stream = CatalogDeltaStream(state, DeltaStreamConfig(seed=SEED))
    continual = ContinualTrainer(
        base_model.entities.weight.data,
        base_model.relations.weight.data,
        ContinualConfig(seed=SEED, steps_per_batch=16, step_batch_size=64),
    )
    continual.seed_buffer(base_triples)
    started = time.perf_counter()
    for index in range(BATCHES):
        batch = stream.generate(index)
        continual.absorb(batch, state)
    continual_s = time.perf_counter() - started

    final_triples = sorted(state.triples())
    new_triples = [
        (h, r, t) for h, r, t in final_triples if h >= base_entities
    ]
    assert new_triples, "churn produced no stream-born entities"

    # Full retrain: a fresh model over the final triple set.
    retrain_model = TransE(
        continual.num_entities,
        num_relations,
        DIM,
        rng=np.random.default_rng(SEED),
    )
    started = time.perf_counter()
    KGETrainer(retrain_model, trainer_config).train(
        TripleStore(final_triples)
    )
    retrain_s = time.perf_counter() - started

    continual_model = TransE(
        continual.num_entities,
        num_relations,
        DIM,
        rng=np.random.default_rng(SEED),
    )
    continual_model.entities.weight.data[:] = continual.entity_table
    continual_model.relations.weight.data[:] = continual.relation_table

    test_store = TripleStore(new_triples)
    filters = [TripleStore(final_triples)]
    eval_kwargs = dict(
        ks=(1, 3, 10), max_queries=64, rng=np.random.default_rng(SEED)
    )
    full = evaluate_link_prediction(
        retrain_model, test_store, filters, **eval_kwargs
    )
    cont = evaluate_link_prediction(
        continual_model, test_store, filters, **eval_kwargs
    )

    record_table(
        "stream_churn_continual",
        [
            "Continual absorption vs full retrain — new-entity filtered "
            f"link prediction (smoke catalog, dim={DIM}, {BATCHES} delta "
            f"batches, {len(new_triples)} new-entity triples, seed {SEED})",
            "path | train s | MRR | hits@1 | hits@3 | hits@10",
            f"full retrain ({EPOCHS} epochs over final set) | "
            f"{retrain_s:.2f} | {full.mrr:.3f} | {full.hits[1]:.3f} | "
            f"{full.hits[3]:.3f} | {full.hits[10]:.3f}",
            "continual (warm start + "
            f"{continual.steps_taken} bounded steps) | {continual_s:.2f} | "
            f"{cont.mrr:.3f} | {cont.hits[1]:.3f} | {cont.hits[3]:.3f} | "
            f"{cont.hits[10]:.3f}",
            f"(base model: {base_s:.2f}s once, amortized across churn)",
            f"acceptance: continual MRR within {MRR_TOLERANCE:.2f} and "
            f"hits@10 within {HITS10_TOLERANCE:.2f} of full retrain",
        ],
    )
    assert cont.mrr >= full.mrr - MRR_TOLERANCE, (cont.mrr, full.mrr)
    assert cont.hits[10] >= full.hits[10] - HITS10_TOLERANCE, (
        cont.hits[10],
        full.hits[10],
    )
