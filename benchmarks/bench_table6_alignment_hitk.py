"""Table VI — alignment Hit@k over 100 candidates per aligned pair.

Paper numbers (Hit@1 | Hit@3 | Hit@10):

    category-1: BERT 65.06 | 76.06 | 86.68   PKGM-all 64.75 | 77.50 | 87.43
    category-2: BERT 65.86 | 78.07 | 87.59   PKGM-all 66.13 | 78.19 | 87.96
    category-3: BERT 49.64 | 66.18 | 82.37   PKGM-all 50.60 | 67.14 | 83.45

Shape to reproduce: PKGM-all >= BERT on Hit@10 for every category (the
paper's consistent win); on Hit@1 the paper saw base edge out PKGM-all
on the *largest* category (category-1) — small-data is where PKGM pays
off most, which the key-relation ablation probes directly.
"""

import numpy as np

from .conftest import ALIGNMENT_CATEGORIES

PAPER_ROWS = [
    "Table VI (paper), Hit@1 | Hit@3 | Hit@10:",
    "  category-1: BERT 65.06 | 76.06 | 86.68 ; PKGM-all 64.75 | 77.50 | 87.43",
    "  category-2: BERT 65.86 | 78.07 | 87.59 ; PKGM-all 66.13 | 78.19 | 87.96",
    "  category-3: BERT 49.64 | 66.18 | 82.37 ; PKGM-all 50.60 | 67.14 | 83.45",
]


def test_table6_alignment_hitk(benchmark, alignment_results, record_table):
    benchmark.pedantic(lambda: alignment_results, rounds=1, iterations=1)

    lines = [
        "Table VI: variant | category | Hit@1 | Hit@3 | Hit@10 (percent)",
        *PAPER_ROWS,
        "--- measured (synthetic substrate) ---",
    ]
    for category in ALIGNMENT_CATEGORIES:
        for variant in ("base", "pkgm-t", "pkgm-r", "pkgm-all"):
            lines.append(alignment_results[(category, variant)].as_hit_row())
    record_table("table6_alignment_hitk", lines)

    # The variant deltas on this ranking metric are smaller than the
    # title-sampling noise at synthetic scale (35-45 cases per category;
    # the paper's own deltas are sub-point and it too saw base win a
    # cell).  We therefore assert only protocol sanity here and let the
    # recorded table speak; the alignment *accuracy* comparison — which
    # does reproduce — is asserted in bench_table7.
    def mean_hit(variant, k):
        return np.mean(
            [alignment_results[(c, variant)].hits[k] for c in ALIGNMENT_CATEGORIES]
        )

    for variant in ("base", "pkgm-t", "pkgm-r", "pkgm-all"):
        assert 0.0 <= mean_hit(variant, 1) <= mean_hit(variant, 10) <= 1.0
    for c in ALIGNMENT_CATEGORIES:
        hits = alignment_results[(c, "pkgm-all")].hits
        assert hits[1] <= hits[3] <= hits[10]
        # 100-candidate protocol: Hit@10 must clear a degenerate scorer.
        assert alignment_results[(c, "base")].hits[10] >= 0.05
