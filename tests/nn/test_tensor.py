"""Unit tests for the autograd Tensor: forward values and gradients."""

import numpy as np
import pytest

from repro.nn import Tensor, check_gradients, concat, stack, where
from repro.nn.tensor import _unbroadcast


RNG = np.random.default_rng(7)


def randt(*shape, shift=0.0):
    return Tensor(RNG.normal(size=shape) + shift, requires_grad=True)


class TestForwardValues:
    def test_add(self):
        a, b = Tensor([1.0, 2.0]), Tensor([3.0, 4.0])
        assert np.allclose((a + b).data, [4.0, 6.0])

    def test_add_scalar(self):
        assert np.allclose((Tensor([1.0, 2.0]) + 1.5).data, [2.5, 3.5])

    def test_radd(self):
        assert np.allclose((1.5 + Tensor([1.0])).data, [2.5])

    def test_sub(self):
        assert np.allclose((Tensor([5.0]) - Tensor([2.0])).data, [3.0])

    def test_rsub(self):
        assert np.allclose((10.0 - Tensor([4.0])).data, [6.0])

    def test_mul(self):
        assert np.allclose((Tensor([2.0, 3.0]) * Tensor([4.0, 5.0])).data, [8.0, 15.0])

    def test_div(self):
        assert np.allclose((Tensor([8.0]) / Tensor([2.0])).data, [4.0])

    def test_rdiv(self):
        assert np.allclose((8.0 / Tensor([2.0])).data, [4.0])

    def test_pow(self):
        assert np.allclose((Tensor([3.0]) ** 2).data, [9.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([3.0]) ** Tensor([2.0])

    def test_neg(self):
        assert np.allclose((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_matmul(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        b = Tensor(np.arange(12, dtype=float).reshape(3, 4))
        assert np.allclose((a @ b).data, a.data @ b.data)

    def test_sum_axis(self):
        x = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        assert np.allclose(x.sum(axis=0).data, [3.0, 5.0, 7.0])

    def test_mean(self):
        x = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        assert np.isclose(x.mean().item(), 2.5)

    def test_mean_axis_tuple(self):
        x = Tensor(np.ones((2, 3, 4)))
        assert np.allclose(x.mean(axis=(0, 1)).data, np.ones(4))

    def test_max(self):
        x = Tensor([[1.0, 5.0], [3.0, 2.0]])
        assert np.allclose(x.max(axis=1).data, [5.0, 3.0])

    def test_relu(self):
        assert np.allclose(Tensor([-1.0, 2.0]).relu().data, [0.0, 2.0])

    def test_sigmoid_extremes_stable(self):
        out = Tensor([1000.0, -1000.0]).sigmoid().data
        assert np.all(np.isfinite(out))
        assert np.isclose(out[0], 1.0) and np.isclose(out[1], 0.0)

    def test_clip(self):
        assert np.allclose(Tensor([-2.0, 0.5, 3.0]).clip(-1, 1).data, [-1.0, 0.5, 1.0])

    def test_reshape_and_transpose(self):
        x = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        assert x.reshape(3, 2).shape == (3, 2)
        assert x.transpose().shape == (3, 2)
        assert x.reshape((6,)).shape == (6,)

    def test_getitem(self):
        x = Tensor(np.arange(10, dtype=float))
        assert np.allclose(x[2:5].data, [2.0, 3.0, 4.0])

    def test_take_rows(self):
        table = Tensor(np.arange(12, dtype=float).reshape(4, 3))
        got = table.take_rows(np.array([[0, 3], [1, 1]]))
        assert got.shape == (2, 2, 3)
        assert np.allclose(got.data[0, 1], [9.0, 10.0, 11.0])

    def test_concat(self):
        a, b = Tensor(np.ones((2, 2))), Tensor(np.zeros((2, 3)))
        assert concat([a, b], axis=1).shape == (2, 5)

    def test_stack(self):
        a, b = Tensor(np.ones(3)), Tensor(np.zeros(3))
        assert stack([a, b], axis=0).shape == (2, 3)

    def test_where(self):
        cond = np.array([True, False])
        out = where(cond, Tensor([1.0, 1.0]), Tensor([9.0, 9.0]))
        assert np.allclose(out.data, [1.0, 9.0])

    def test_item_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_detach_cuts_graph(self):
        x = randt(3)
        y = (x * 2).detach()
        assert not y.requires_grad

    def test_repr(self):
        assert "requires_grad" in repr(randt(2))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_len(self):
        assert len(Tensor(np.zeros((4, 2)))) == 4


class TestBackwardGradients:
    """Central-difference checks for every differentiable op."""

    def test_add(self):
        check_gradients(lambda a, b: a + b, [randt(3, 4), randt(3, 4)])

    def test_add_broadcast(self):
        check_gradients(lambda a, b: a + b, [randt(3, 4), randt(4)])

    def test_add_broadcast_keepdim(self):
        check_gradients(lambda a, b: a + b, [randt(3, 4), randt(3, 1)])

    def test_sub(self):
        check_gradients(lambda a, b: a - b, [randt(2, 3), randt(2, 3)])

    def test_mul_broadcast(self):
        check_gradients(lambda a, b: a * b, [randt(2, 3), randt(3)])

    def test_div(self):
        check_gradients(lambda a, b: a / b, [randt(2, 3), randt(2, 3, shift=3.0)])

    def test_pow(self):
        check_gradients(lambda a: a**3, [randt(2, 3)])

    def test_matmul_2d(self):
        check_gradients(lambda a, b: a @ b, [randt(3, 4), randt(4, 5)])

    def test_matmul_batched(self):
        check_gradients(lambda a, b: a @ b, [randt(2, 3, 4), randt(2, 4, 5)])

    def test_matmul_vec_mat(self):
        check_gradients(lambda a, b: a @ b, [randt(4), randt(4, 5)])

    def test_matmul_mat_vec(self):
        check_gradients(lambda a, b: a @ b, [randt(3, 4), randt(4)])

    def test_matmul_vec_vec(self):
        check_gradients(lambda a, b: a @ b, [randt(4), randt(4)])

    def test_sum(self):
        check_gradients(lambda a: a.sum(), [randt(3, 4)])

    def test_sum_axis_keepdims(self):
        check_gradients(lambda a: a.sum(axis=1, keepdims=True), [randt(3, 4)])

    def test_mean_axis(self):
        check_gradients(lambda a: a.mean(axis=0), [randt(3, 4)])

    def test_max_global(self):
        # Distinct values so the argmax subgradient is unambiguous.
        x = Tensor(np.arange(12, dtype=float).reshape(3, 4), requires_grad=True)
        check_gradients(lambda a: a.max(), [x])

    def test_max_axis(self):
        x = Tensor(np.arange(12, dtype=float).reshape(3, 4), requires_grad=True)
        check_gradients(lambda a: a.max(axis=1), [x])

    def test_exp_log(self):
        check_gradients(lambda a: a.exp(), [randt(2, 3)])
        check_gradients(lambda a: a.log(), [randt(2, 3, shift=3.0)])

    def test_sqrt(self):
        check_gradients(lambda a: a.sqrt(), [randt(2, 3, shift=3.0)])

    def test_abs(self):
        check_gradients(lambda a: a.abs(), [randt(2, 3, shift=2.0)])

    def test_relu(self):
        check_gradients(lambda a: a.relu(), [randt(2, 3, shift=1.0)])

    def test_tanh_sigmoid_gelu(self):
        check_gradients(lambda a: a.tanh(), [randt(2, 3)])
        check_gradients(lambda a: a.sigmoid(), [randt(2, 3)])
        check_gradients(lambda a: a.gelu(), [randt(2, 3)])

    def test_clip(self):
        check_gradients(lambda a: a.clip(-0.5, 0.5), [randt(2, 3, shift=2.0)])

    def test_reshape(self):
        check_gradients(lambda a: a.reshape(6), [randt(2, 3)])

    def test_transpose(self):
        check_gradients(lambda a: a.transpose(1, 0, 2), [randt(2, 3, 4)])

    def test_swapaxes(self):
        check_gradients(lambda a: a.swapaxes(0, 2), [randt(2, 3, 4)])

    def test_getitem(self):
        check_gradients(lambda a: a[1:3], [randt(4, 2)])

    def test_getitem_fancy_repeated_index_accumulates(self):
        x = Tensor(np.zeros(3), requires_grad=True)
        y = x[np.array([0, 0, 1])]
        y.sum().backward()
        assert np.allclose(x.grad, [2.0, 1.0, 0.0])

    def test_take_rows(self):
        table = randt(5, 3)
        ids = np.array([0, 2, 2, 4])
        check_gradients(lambda t: t.take_rows(ids), [table])

    def test_take_rows_repeated_accumulates(self):
        table = Tensor(np.zeros((3, 2)), requires_grad=True)
        out = table.take_rows(np.array([1, 1, 1]))
        out.sum().backward()
        assert np.allclose(table.grad[1], [3.0, 3.0])
        assert np.allclose(table.grad[0], [0.0, 0.0])

    def test_concat(self):
        check_gradients(lambda a, b: concat([a, b], axis=1), [randt(2, 3), randt(2, 2)])

    def test_stack(self):
        check_gradients(lambda a, b: stack([a, b], axis=0), [randt(3), randt(3)])

    def test_where(self):
        cond = np.array([[True, False, True]])
        check_gradients(lambda a, b: where(cond, a, b), [randt(2, 3), randt(2, 3)])

    def test_grad_accumulates_across_backward_calls(self):
        x = randt(3)
        (x * 2).sum().backward()
        first = x.grad.copy()
        (x * 2).sum().backward()
        assert np.allclose(x.grad, 2 * first)

    def test_diamond_graph(self):
        # x used twice: gradient must sum both paths.
        x = Tensor([2.0], requires_grad=True)
        y = x * x + x * 3.0
        y.backward()
        assert np.allclose(x.grad, [2 * 2.0 + 3.0])

    def test_backward_without_requires_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_explicit_grad(self):
        x = randt(2, 2)
        y = x * 3.0
        y.backward(np.ones((2, 2)) * 0.5)
        assert np.allclose(x.grad, 1.5)


class TestUnbroadcast:
    def test_noop_when_shapes_match(self):
        g = np.ones((2, 3))
        assert _unbroadcast(g, (2, 3)) is g

    def test_sums_leading_axes(self):
        assert _unbroadcast(np.ones((4, 2, 3)), (2, 3)).shape == (2, 3)
        assert np.allclose(_unbroadcast(np.ones((4, 2, 3)), (2, 3)), 4.0)

    def test_sums_size_one_axes(self):
        out = _unbroadcast(np.ones((2, 3)), (2, 1))
        assert out.shape == (2, 1)
        assert np.allclose(out, 3.0)

    def test_scalar_target(self):
        assert _unbroadcast(np.ones((2, 3)), ()).shape == ()
