"""Unit tests for optimizers and the warmup schedule."""

import numpy as np
import pytest

from repro.nn import Adam, AdamW, Linear, Parameter, SGD, Tensor, WarmupLinearSchedule
from repro.nn import functional as F


def quadratic_param(start=5.0):
    """A single scalar parameter minimizing f(w) = w^2."""
    return Parameter(np.array([start]))


def run_steps(optimizer, param, steps):
    for _ in range(steps):
        optimizer.zero_grad()
        (param**2).sum().backward()
        optimizer.step()
    return float(param.data[0])


class TestSGD:
    def test_converges_on_quadratic(self):
        w = quadratic_param()
        assert abs(run_steps(SGD([w], lr=0.1), w, 100)) < 1e-4

    def test_momentum_accelerates(self):
        w_plain, w_momentum = quadratic_param(), quadratic_param()
        plain = abs(run_steps(SGD([w_plain], lr=0.01), w_plain, 50))
        fast = abs(run_steps(SGD([w_momentum], lr=0.01, momentum=0.9), w_momentum, 50))
        assert fast < plain

    def test_weight_decay_shrinks_weights(self):
        w = Parameter(np.array([1.0]))
        opt = SGD([w], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        w.grad = np.zeros(1)  # pure decay step
        opt.step()
        assert w.data[0] < 1.0

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=0.1, momentum=1.0)

    def test_skips_params_without_grad(self):
        w = quadratic_param()
        before = w.data.copy()
        SGD([w], lr=0.1).step()
        assert np.allclose(w.data, before)


class TestAdam:
    def test_converges_on_quadratic(self):
        w = quadratic_param()
        assert abs(run_steps(Adam([w], lr=0.3), w, 200)) < 1e-3

    def test_bias_correction_first_step(self):
        # After one step with grad g, Adam moves by ~lr * sign(g).
        w = Parameter(np.array([1.0]))
        opt = Adam([w], lr=0.1)
        w.grad = np.array([4.0])
        opt.step()
        assert w.data[0] == pytest.approx(1.0 - 0.1, abs=1e-6)

    def test_fits_linear_regression(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(64, 4))
        w_true = np.array([1.0, -2.0, 3.0, 0.5])
        y = X @ w_true
        model = Linear(4, 1, rng=np.random.default_rng(1))
        opt = Adam(model.parameters(), lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            loss = F.mse_loss(model(Tensor(X)).reshape(64), y)
            loss.backward()
            opt.step()
        assert loss.item() < 1e-6

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_rejects_nonpositive_lr(self):
        with pytest.raises(ValueError):
            Adam([quadratic_param()], lr=0.0)


class TestAdamW:
    def test_decay_applied_decoupled(self):
        w = Parameter(np.array([1.0]))
        opt = AdamW([w], lr=0.1, weight_decay=0.5)
        w.grad = np.zeros(1)
        opt.step()
        # Pure decay: data * (1 - lr*decay) = 0.95 (the Adam part is ~0).
        assert w.data[0] == pytest.approx(0.95, abs=1e-6)

    def test_decay_restored_after_step(self):
        opt = AdamW([quadratic_param()], lr=0.1, weight_decay=0.5)
        opt.parameters[0].grad = np.ones(1)
        opt.step()
        assert opt.weight_decay == 0.5


class TestGradClipping:
    def test_clips_to_max_norm(self):
        w = Parameter(np.array([0.0, 0.0]))
        opt = SGD([w], lr=0.1)
        w.grad = np.array([3.0, 4.0])  # norm 5
        pre = opt.clip_grad_norm(1.0)
        assert pre == pytest.approx(5.0)
        assert np.linalg.norm(w.grad) == pytest.approx(1.0)

    def test_no_clip_when_under(self):
        w = Parameter(np.array([0.0]))
        opt = SGD([w], lr=0.1)
        w.grad = np.array([0.5])
        opt.clip_grad_norm(1.0)
        assert w.grad[0] == pytest.approx(0.5)


class TestWarmupLinearSchedule:
    def test_warmup_then_decay(self):
        opt = SGD([quadratic_param()], lr=1.0)
        sched = WarmupLinearSchedule(opt, warmup_steps=2, total_steps=10)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[0] == pytest.approx(0.5)
        assert lrs[1] == pytest.approx(1.0)
        assert lrs[-1] == pytest.approx(0.0)
        assert all(a >= b for a, b in zip(lrs[1:], lrs[2:]))

    def test_validates_arguments(self):
        opt = SGD([quadratic_param()], lr=1.0)
        with pytest.raises(ValueError):
            WarmupLinearSchedule(opt, warmup_steps=5, total_steps=0)
        with pytest.raises(ValueError):
            WarmupLinearSchedule(opt, warmup_steps=11, total_steps=10)
