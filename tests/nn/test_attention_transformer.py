"""Unit tests for attention and the transformer encoder stack."""

import numpy as np
import pytest

from repro.nn import (
    MultiHeadAttention,
    Tensor,
    TransformerConfig,
    TransformerEncoder,
    TransformerEncoderLayer,
    check_gradients,
)


RNG = np.random.default_rng(21)


def config(**overrides):
    base = dict(dim=16, num_layers=2, num_heads=2, ffn_dim=32, dropout=0.0)
    base.update(overrides)
    return TransformerConfig(**base)


class TestMultiHeadAttention:
    def test_output_shape(self):
        mha = MultiHeadAttention(16, 4, rng=RNG)
        x = Tensor(RNG.normal(size=(2, 5, 16)))
        assert mha(x).shape == (2, 5, 16)

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3)

    def test_mask_blocks_padding(self):
        """Changing a masked position must not change unmasked outputs."""
        mha = MultiHeadAttention(8, 2, rng=np.random.default_rng(1))
        mha.eval()
        x = RNG.normal(size=(1, 4, 8))
        mask = np.array([[1, 1, 0, 0]])
        out1 = mha(Tensor(x), attention_mask=mask).data
        x2 = x.copy()
        x2[0, 2] += 100.0  # perturb a padded position
        out2 = mha(Tensor(x2), attention_mask=mask).data
        assert np.allclose(out1[0, :2], out2[0, :2], atol=1e-8)

    def test_mask_shape_validated(self):
        mha = MultiHeadAttention(8, 2, rng=RNG)
        x = Tensor(RNG.normal(size=(2, 4, 8)))
        with pytest.raises(ValueError):
            mha(x, attention_mask=np.ones((2, 5)))

    def test_gradients_flow_through_attention(self):
        mha = MultiHeadAttention(4, 2, rng=np.random.default_rng(2))
        mha.eval()
        x = Tensor(RNG.normal(size=(1, 3, 4)), requires_grad=True)
        check_gradients(lambda inp: mha(inp), [x], atol=1e-4, rtol=1e-3)

    def test_uniform_attention_for_identical_keys(self):
        """With identical tokens, attention output is identical per position."""
        mha = MultiHeadAttention(8, 2, rng=np.random.default_rng(3))
        mha.eval()
        token = RNG.normal(size=8)
        x = Tensor(np.tile(token, (1, 6, 1)))
        out = mha(x).data
        assert np.allclose(out[0, 0], out[0, 5], atol=1e-10)


class TestTransformerConfig:
    def test_rejects_indivisible_dim(self):
        with pytest.raises(ValueError):
            TransformerConfig(dim=10, num_heads=3)

    def test_rejects_zero_layers(self):
        with pytest.raises(ValueError):
            TransformerConfig(num_layers=0)


class TestTransformerEncoder:
    def test_output_shape(self):
        enc = TransformerEncoder(config(), rng=RNG)
        x = Tensor(RNG.normal(size=(3, 7, 16)))
        assert enc(x).shape == (3, 7, 16)

    def test_layer_count(self):
        enc = TransformerEncoder(config(num_layers=3), rng=RNG)
        layers = [m for m in enc.modules() if isinstance(m, TransformerEncoderLayer)]
        assert len(layers) == 3

    def test_deterministic_given_seed(self):
        a = TransformerEncoder(config(), rng=np.random.default_rng(9))
        b = TransformerEncoder(config(), rng=np.random.default_rng(9))
        x = RNG.normal(size=(2, 4, 16))
        assert np.allclose(a(Tensor(x)).data, b(Tensor(x)).data)

    def test_backward_reaches_all_parameters(self):
        enc = TransformerEncoder(config(), rng=RNG)
        x = Tensor(RNG.normal(size=(2, 4, 16)), requires_grad=True)
        (enc(x) ** 2).mean().backward()
        for name, param in enc.named_parameters():
            assert param.grad is not None, f"no grad for {name}"
        assert x.grad is not None

    def test_masked_positions_do_not_leak(self):
        enc = TransformerEncoder(config(), rng=np.random.default_rng(4))
        enc.eval()
        x = RNG.normal(size=(1, 5, 16))
        mask = np.array([[1, 1, 1, 0, 0]])
        out1 = enc(Tensor(x), attention_mask=mask).data
        x2 = x.copy()
        x2[0, 4] = -x2[0, 4] * 7.0
        out2 = enc(Tensor(x2), attention_mask=mask).data
        assert np.allclose(out1[0, :3], out2[0, :3], atol=1e-8)

    def test_dropout_only_in_training(self):
        enc = TransformerEncoder(config(dropout=0.3), rng=np.random.default_rng(5))
        x = RNG.normal(size=(1, 4, 16))
        enc.eval()
        out1 = enc(Tensor(x)).data
        out2 = enc(Tensor(x)).data
        assert np.allclose(out1, out2)
        enc.train()
        out3 = enc(Tensor(x)).data
        out4 = enc(Tensor(x)).data
        assert not np.allclose(out3, out4)
