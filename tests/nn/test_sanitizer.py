"""Tests for the runtime NaN/Inf numeric sanitizer."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    NumericGuardError,
    Parameter,
    Tensor,
    no_grad,
    sanitizer,
)


@pytest.fixture(autouse=True)
def _sanitizer_off():
    """Every test starts and ends with the sanitizer disabled."""
    sanitizer.disable()
    yield
    sanitizer.disable()


class TestSwitches:
    def test_default_is_disabled(self):
        assert not sanitizer.is_enabled()

    def test_enable_disable(self):
        sanitizer.enable()
        assert sanitizer.is_enabled()
        sanitizer.disable()
        assert not sanitizer.is_enabled()

    def test_guard_restores_previous_state(self):
        with sanitizer.guard():
            assert sanitizer.is_enabled()
        assert not sanitizer.is_enabled()

    def test_guard_false_is_a_no_op_scope(self):
        sanitizer.enable()
        with sanitizer.guard(False):
            # A disabled inner scope never turns an outer guard off.
            assert sanitizer.is_enabled()
        assert sanitizer.is_enabled()

    def test_guard_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with sanitizer.guard():
                raise RuntimeError("boom")
        assert not sanitizer.is_enabled()

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("ON", True),
        ("0", False), ("", False), ("off", False),
    ])
    def test_env_flag_parsing(self, monkeypatch, value, expected):
        monkeypatch.setenv(sanitizer.ENV_FLAG, value)
        assert sanitizer.env_enabled() is expected

    def test_env_flag_unset(self, monkeypatch):
        monkeypatch.delenv(sanitizer.ENV_FLAG, raising=False)
        assert not sanitizer.env_enabled()


class TestForwardGuard:
    def test_nan_in_forward_names_the_op(self):
        a = Tensor(np.array([1.0, np.nan]), requires_grad=True)
        b = Tensor(np.array([1.0, 1.0]), requires_grad=True)
        with sanitizer.guard():
            with pytest.raises(NumericGuardError) as info:
                _ = a + b
        assert info.value.op == "add"
        assert "NaN" in str(info.value)
        assert info.value.shapes == ((2,), (2,))

    def test_inf_from_overflow_is_caught(self):
        x = Tensor(np.array([1e308]), requires_grad=True)
        with sanitizer.guard(), np.errstate(over="ignore"):
            with pytest.raises(NumericGuardError) as info:
                _ = x * x
        assert info.value.op == "mul"
        assert "Inf" in str(info.value)

    def test_log_of_zero_names_log(self):
        x = Tensor(np.array([0.0]), requires_grad=True)
        with sanitizer.guard(), np.errstate(divide="ignore"):
            with pytest.raises(NumericGuardError) as info:
                _ = x.log()
        assert info.value.op == "log"

    def test_finite_forward_passes_through(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        with sanitizer.guard():
            out = (a * a).sum()
            out.backward()
        assert a.grad is not None

    def test_disabled_forward_does_not_raise(self):
        a = Tensor(np.array([np.nan]), requires_grad=True)
        out = a + a
        assert np.isnan(out.data).all()


class TestOptimizerGuard:
    def test_inf_gradient_names_sgd_step(self):
        param = Parameter(np.array([1.0, 2.0]))
        param.grad = np.array([np.inf, 0.0])
        opt = SGD([param], lr=0.1)
        with sanitizer.guard():
            with pytest.raises(NumericGuardError) as info:
                opt.step()
        assert info.value.op == "SGD.step"
        assert "Inf" in str(info.value)

    def test_nan_gradient_names_adam_step(self):
        param = Parameter(np.array([1.0]))
        param.grad = np.array([np.nan])
        opt = Adam([param], lr=0.1)
        with sanitizer.guard():
            with pytest.raises(NumericGuardError) as info:
                opt.step()
        assert info.value.op == "Adam.step"

    def test_finite_step_passes(self):
        param = Parameter(np.array([1.0]))
        param.grad = np.array([0.5])
        opt = SGD([param], lr=0.1)
        with sanitizer.guard():
            opt.step()
        assert param.data == pytest.approx(0.95)

    def test_disabled_step_skips_checks(self):
        param = Parameter(np.array([1.0]))
        param.grad = np.array([np.inf])
        SGD([param], lr=0.1).step()
        assert np.isinf(param.data).all()


class TestZeroOverheadWhenDisabled:
    def test_check_op_never_called_when_disabled(self, monkeypatch):
        calls = []
        monkeypatch.setattr(
            sanitizer, "check_op", lambda *a, **k: calls.append(a)
        )
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        ((a * a) + a).sum().backward()
        assert calls == []
        with sanitizer.guard():
            _ = a + a
        assert len(calls) == 1

    def test_check_update_never_called_when_disabled(self, monkeypatch):
        calls = []
        monkeypatch.setattr(
            sanitizer, "check_update", lambda *a, **k: calls.append(a)
        )
        param = Parameter(np.array([1.0]))
        param.grad = np.array([0.5])
        opt = SGD([param], lr=0.1)
        opt.step()
        assert calls == []
        param.grad = np.array([0.5])
        with sanitizer.guard():
            opt.step()
        assert len(calls) == 2  # grad check + post-update check


class TestTrainerIntegration:
    def _store(self):
        from repro.kg import TripleStore

        return TripleStore([(0, 0, 1), (1, 0, 2), (2, 1, 3), (3, 1, 0)])

    def test_pkgm_trainer_numeric_guard_flag(self):
        from repro.core import PKGM, PKGMConfig
        from repro.core.trainer import PKGMTrainer, TrainerConfig

        model = PKGM(
            4, 2, config=PKGMConfig(dim=4), rng=np.random.default_rng(0)
        )
        with no_grad():
            model.triple_module.entity_embeddings.weight.data[0] = np.nan
        trainer = PKGMTrainer(
            model,
            TrainerConfig(epochs=1, batch_size=4, numeric_guard=True),
        )
        with pytest.raises(NumericGuardError):
            trainer.train(self._store())
        assert not sanitizer.is_enabled()  # guard released after the run

    def test_pkgm_trainer_env_flag(self, monkeypatch):
        from repro.core import PKGM, PKGMConfig
        from repro.core.trainer import PKGMTrainer, TrainerConfig

        monkeypatch.setenv(sanitizer.ENV_FLAG, "1")
        model = PKGM(
            4, 2, config=PKGMConfig(dim=4), rng=np.random.default_rng(0)
        )
        with no_grad():
            model.triple_module.relation_embeddings.weight.data[:] = np.inf
        trainer = PKGMTrainer(model, TrainerConfig(epochs=1, batch_size=4))
        with pytest.raises(NumericGuardError):
            trainer.train(self._store())

    def test_kge_trainer_numeric_guard_flag(self):
        from repro.baselines import TransE
        from repro.baselines.trainer import KGETrainer, KGETrainerConfig

        model = TransE(4, 2, dim=4, rng=np.random.default_rng(0))
        with no_grad():
            model.entities.weight.data[1] = np.inf
        trainer = KGETrainer(
            model, KGETrainerConfig(epochs=1, batch_size=4, numeric_guard=True)
        )
        with pytest.raises(NumericGuardError):
            trainer.train(self._store())

    def test_trainer_without_flag_leaves_guard_off(self):
        from repro.core import PKGM, PKGMConfig
        from repro.core.trainer import PKGMTrainer, TrainerConfig

        model = PKGM(
            4, 2, config=PKGMConfig(dim=4), rng=np.random.default_rng(0)
        )
        trainer = PKGMTrainer(model, TrainerConfig(epochs=1, batch_size=4))
        history = trainer.train(self._store())
        assert len(history.epoch_losses) == 1
        assert not sanitizer.is_enabled()
