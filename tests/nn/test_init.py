"""Unit tests for the weight initializers."""

import numpy as np
import pytest

from repro.nn import init


RNG = np.random.default_rng(0)


class TestBasicInitializers:
    def test_uniform_bounds(self):
        out = init.uniform(RNG, (200, 50), -0.3, 0.7)
        assert out.min() >= -0.3 and out.max() < 0.7

    def test_normal_std(self):
        out = init.normal(RNG, (500, 100), std=0.02)
        assert abs(out.std() - 0.02) < 0.002
        assert abs(out.mean()) < 0.001

    def test_zeros_ones(self):
        assert np.all(init.zeros((3, 4)) == 0)
        assert np.all(init.ones((3, 4)) == 1)


class TestXavierKaiming:
    def test_xavier_uniform_bound(self):
        fan_in, fan_out = 60, 40
        out = init.xavier_uniform(RNG, (fan_out, fan_in))
        bound = np.sqrt(6.0 / (fan_in + fan_out))
        assert np.abs(out).max() <= bound

    def test_xavier_normal_std(self):
        out = init.xavier_normal(RNG, (300, 300))
        expected = np.sqrt(2.0 / 600)
        assert abs(out.std() - expected) < expected * 0.1

    def test_kaiming_uniform_bound(self):
        out = init.kaiming_uniform(RNG, (50, 80))
        assert np.abs(out).max() <= np.sqrt(6.0 / 80)

    def test_1d_shape_fans(self):
        out = init.xavier_uniform(RNG, (64,))
        assert out.shape == (64,)

    def test_scalar_shape_rejected(self):
        with pytest.raises(ValueError):
            init.xavier_uniform(RNG, ())


class TestTransEInit:
    def test_bound_formula(self):
        dim = 25
        out = init.transe_embedding(RNG, (100, dim))
        assert np.abs(out).max() <= 6.0 / np.sqrt(dim)


class TestIdentityStack:
    def test_exact_identity_without_noise(self):
        out = init.identity_stack(4, 5)
        assert out.shape == (4, 5, 5)
        for matrix in out:
            assert np.array_equal(matrix, np.eye(5))

    def test_noise_perturbs(self):
        out = init.identity_stack(2, 4, noise_std=0.05, rng=np.random.default_rng(1))
        assert not np.array_equal(out[0], np.eye(4))
        assert np.allclose(out[0], np.eye(4), atol=0.3)

    def test_noise_requires_rng(self):
        with pytest.raises(ValueError):
            init.identity_stack(2, 4, noise_std=0.1)
