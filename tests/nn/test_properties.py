"""Property-based tests (hypothesis) for the autograd engine invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import Tensor, concat
from repro.nn import functional as F


finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


def small_arrays(max_side=4):
    shapes = st.tuples(
        st.integers(1, max_side), st.integers(1, max_side)
    )
    return shapes.flatmap(
        lambda s: arrays(np.float64, s, elements=finite_floats)
    )


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_softmax_is_distribution(data):
    out = F.softmax(Tensor(data), axis=-1).data
    assert np.all(out >= 0)
    assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(small_arrays(), st.floats(min_value=-5, max_value=5, allow_nan=False))
def test_softmax_shift_invariance(data, shift):
    a = F.softmax(Tensor(data), axis=-1).data
    b = F.softmax(Tensor(data + shift), axis=-1).data
    assert np.allclose(a, b, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_add_commutative_gradients(data):
    x = Tensor(data, requires_grad=True)
    y = Tensor(data.copy(), requires_grad=True)
    (x + y).sum().backward()
    assert np.allclose(x.grad, np.ones_like(data))
    assert np.allclose(y.grad, np.ones_like(data))


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_mul_gradient_is_other_operand(data):
    x = Tensor(data, requires_grad=True)
    y = Tensor(np.full_like(data, 3.0))
    (x * y).sum().backward()
    assert np.allclose(x.grad, 3.0)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_sum_then_backward_gives_ones(data):
    x = Tensor(data, requires_grad=True)
    x.sum().backward()
    assert np.allclose(x.grad, 1.0)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_reshape_roundtrip_preserves_gradient(data):
    x = Tensor(data, requires_grad=True)
    x.reshape(-1).reshape(data.shape).sum().backward()
    assert np.allclose(x.grad, 1.0)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_relu_output_nonnegative(data):
    out = Tensor(data).relu().data
    assert np.all(out >= 0)
    assert np.allclose(out, np.maximum(data, 0))


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_normalize_produces_unit_rows(data):
    # Skip rows that are exactly zero (normalize keeps them near zero).
    data = data + 0.5
    normed = F.normalize(Tensor(data)).data
    norms = np.linalg.norm(normed, axis=-1)
    assert np.allclose(norms, 1.0, atol=1e-6)


@settings(max_examples=40, deadline=None)
@given(small_arrays(), small_arrays())
def test_concat_preserves_content(a, b):
    if a.shape[0] != b.shape[0]:
        a = a[: min(a.shape[0], b.shape[0])]
        b = b[: min(a.shape[0], b.shape[0])]
    out = concat([Tensor(a), Tensor(b)], axis=1).data
    assert np.allclose(out[:, : a.shape[1]], a)
    assert np.allclose(out[:, a.shape[1] :], b)


@settings(max_examples=40, deadline=None)
@given(
    arrays(np.float64, (3, 4), elements=finite_floats),
    st.integers(0, 3),
)
def test_cross_entropy_nonnegative(logits, label):
    labels = np.array([label, label, label])
    loss = F.cross_entropy(Tensor(logits), labels)
    assert loss.item() >= -1e-9


@settings(max_examples=40, deadline=None)
@given(arrays(np.float64, (5,), elements=finite_floats))
def test_margin_loss_nonnegative(scores):
    pos = Tensor(scores)
    neg = Tensor(scores[::-1].copy())
    loss = F.margin_ranking_loss(pos, neg, margin=1.0)
    assert loss.item() >= 0.0
