"""Unit tests for functional ops: softmax, losses, norms, dropout."""

import numpy as np
import pytest

from repro.nn import Tensor, check_gradients
from repro.nn import functional as F


RNG = np.random.default_rng(11)


def randt(*shape, shift=0.0):
    return Tensor(RNG.normal(size=shape) + shift, requires_grad=True)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = F.softmax(randt(4, 7)).data
        assert np.allclose(out.sum(axis=-1), 1.0)
        assert np.all(out > 0)

    def test_stable_for_large_logits(self):
        out = F.softmax(Tensor([[1000.0, 1000.0]])).data
        assert np.allclose(out, 0.5)

    def test_log_softmax_matches_log_of_softmax(self):
        x = randt(3, 5)
        assert np.allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-10
        )

    def test_softmax_gradient(self):
        check_gradients(lambda x: F.softmax(x, axis=-1), [randt(3, 4)])

    def test_log_softmax_gradient(self):
        check_gradients(lambda x: F.log_softmax(x, axis=-1), [randt(3, 4)])


class TestCrossEntropy:
    def test_value_against_manual(self):
        logits = Tensor([[2.0, 1.0, 0.0]])
        labels = np.array([0])
        expected = -np.log(np.exp(2.0) / np.exp([2.0, 1.0, 0.0]).sum())
        assert F.cross_entropy(logits, labels).item() == pytest.approx(expected)

    def test_perfect_prediction_near_zero(self):
        logits = Tensor([[100.0, 0.0], [0.0, 100.0]])
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-8

    def test_gradient(self):
        labels = np.array([1, 0, 2])
        check_gradients(lambda x: F.cross_entropy(x, labels), [randt(3, 4)])

    def test_sum_reduction(self):
        logits = randt(3, 4)
        labels = np.array([0, 1, 2])
        mean = F.cross_entropy(logits, labels, reduction="mean").item()
        total = F.cross_entropy(logits, labels, reduction="sum").item()
        assert total == pytest.approx(3 * mean)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            F.cross_entropy(randt(3), np.array([0]))

    def test_rejects_bad_reduction(self):
        with pytest.raises(ValueError):
            F.cross_entropy(randt(2, 3), np.array([0, 1]), reduction="bogus")


class TestBCE:
    def test_value_against_manual(self):
        logit, target = 0.7, 1.0
        expected = -np.log(1.0 / (1.0 + np.exp(-logit)))
        got = F.binary_cross_entropy_with_logits(Tensor([logit]), np.array([target]))
        assert got.item() == pytest.approx(expected)

    def test_stable_for_extreme_logits(self):
        loss = F.binary_cross_entropy_with_logits(
            Tensor([1000.0, -1000.0]), np.array([1.0, 0.0])
        )
        assert np.isfinite(loss.item())
        assert loss.item() < 1e-8

    def test_gradient(self):
        targets = np.array([1.0, 0.0, 1.0])
        check_gradients(
            lambda x: F.binary_cross_entropy_with_logits(x, targets), [randt(3)]
        )

    def test_accepts_tensor_targets(self):
        loss = F.binary_cross_entropy_with_logits(Tensor([0.0]), Tensor([1.0]))
        assert loss.item() == pytest.approx(np.log(2.0))


class TestMarginRanking:
    def test_zero_when_margin_satisfied(self):
        pos, neg = Tensor([1.0]), Tensor([5.0])
        assert F.margin_ranking_loss(pos, neg, margin=2.0).item() == 0.0

    def test_positive_when_violated(self):
        pos, neg = Tensor([3.0]), Tensor([3.5])
        assert F.margin_ranking_loss(pos, neg, margin=2.0).item() == pytest.approx(1.5)

    def test_matches_paper_equation(self):
        # L = [f(pos) + gamma - f(neg)]_+ summed over the batch (Eq. 4-5).
        pos = Tensor([1.0, 4.0, 0.0])
        neg = Tensor([3.0, 4.0, 0.5])
        gamma = 1.0
        expected = sum(max(p + gamma - n, 0.0) for p, n in zip(pos.data, neg.data))
        assert F.margin_ranking_loss(pos, neg, margin=gamma).item() == pytest.approx(
            expected
        )

    def test_gradient(self):
        check_gradients(
            lambda p, n: F.margin_ranking_loss(p, n, margin=1.0),
            [randt(4, shift=0.3), randt(4)],
        )


class TestNorms:
    def test_l1_norm(self):
        x = Tensor([[3.0, -4.0]])
        assert F.l1_norm(x).item() == pytest.approx(7.0)

    def test_l2_norm(self):
        x = Tensor([[3.0, 4.0]])
        assert F.l2_norm(x).item() == pytest.approx(5.0)

    def test_normalize_unit_rows(self):
        x = randt(5, 8)
        normed = F.normalize(x).data
        assert np.allclose(np.linalg.norm(normed, axis=-1), 1.0)

    def test_l1_gradient(self):
        check_gradients(lambda x: F.l1_norm(x), [randt(3, 4, shift=2.0)])

    def test_l2_gradient(self):
        check_gradients(lambda x: F.l2_norm(x), [randt(3, 4, shift=2.0)])


class TestDropoutAndUtils:
    def test_dropout_noop_in_eval(self):
        x = randt(10, 10)
        out = F.dropout(x, 0.5, training=False, rng=np.random.default_rng(0))
        assert out is x

    def test_dropout_preserves_expectation(self):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, training=True, rng=np.random.default_rng(0))
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_dropout_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            F.dropout(randt(2), 1.0, training=True, rng=np.random.default_rng(0))

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        assert np.allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_preserves_leading_shape(self):
        out = F.one_hot(np.array([[0, 1], [2, 0]]), 3)
        assert out.shape == (2, 2, 3)

    def test_mse(self):
        assert F.mse_loss(Tensor([1.0, 3.0]), np.array([1.0, 1.0])).item() == pytest.approx(2.0)
