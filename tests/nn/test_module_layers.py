"""Unit tests for Module bookkeeping and the core layers."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Adam,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    Sequential,
    Tensor,
    check_gradients,
    no_grad,
)


RNG = np.random.default_rng(3)


class TinyModel(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=np.random.default_rng(0))
        self.fc2 = Linear(8, 2, rng=np.random.default_rng(1))
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu()) * self.scale


class TestModule:
    def test_named_parameters_recursive(self):
        names = dict(TinyModel().named_parameters())
        assert set(names) == {
            "fc1.weight",
            "fc1.bias",
            "fc2.weight",
            "fc2.bias",
            "scale",
        }

    def test_num_parameters(self):
        model = TinyModel()
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2 + 1

    def test_train_eval_recursive(self):
        model = Sequential(Dropout(0.5), Linear(2, 2))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        model = TinyModel()
        out = model(Tensor(RNG.normal(size=(3, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_state_dict_roundtrip(self):
        src, dst = TinyModel(), TinyModel()
        dst.load_state_dict(src.state_dict())
        for (_, a), (_, b) in zip(src.named_parameters(), dst.named_parameters()):
            assert np.allclose(a.data, b.data)

    def test_state_dict_is_a_copy(self):
        model = TinyModel()
        state = model.state_dict()
        state["scale"][:] = 99.0
        assert model.scale.data[0] == 1.0

    def test_load_rejects_missing_keys(self):
        model = TinyModel()
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_rejects_shape_mismatch(self):
        model = TinyModel()
        state = model.state_dict()
        state["scale"] = np.ones(5)
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestLinear:
    def test_output_shape(self):
        layer = Linear(4, 6, rng=RNG)
        assert layer(Tensor(RNG.normal(size=(3, 4)))).shape == (3, 6)

    def test_no_bias(self):
        layer = Linear(4, 6, bias=False, rng=RNG)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_batched_input(self):
        layer = Linear(4, 6, rng=RNG)
        assert layer(Tensor(RNG.normal(size=(2, 5, 4)))).shape == (2, 5, 6)

    def test_gradients(self):
        layer = Linear(3, 2, rng=RNG)
        x = Tensor(RNG.normal(size=(4, 3)), requires_grad=True)
        check_gradients(lambda inp, w, b: layer(inp), [x, layer.weight, layer.bias])


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4, rng=RNG)
        assert emb(np.array([[1, 2], [3, 4]])).shape == (2, 2, 4)

    def test_out_of_range_raises(self):
        emb = Embedding(10, 4, rng=RNG)
        with pytest.raises(IndexError):
            emb(np.array([10]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_scatter(self):
        emb = Embedding(5, 3, rng=RNG)
        out = emb(np.array([2, 2, 4]))
        out.sum().backward()
        assert np.allclose(emb.weight.grad[2], 2.0)
        assert np.allclose(emb.weight.grad[4], 1.0)
        assert np.allclose(emb.weight.grad[0], 0.0)

    def test_renormalize_caps_norms(self):
        emb = Embedding(6, 4, rng=RNG)
        with no_grad():
            emb.weight.data = emb.weight.data * 10.0
        emb.renormalize(max_norm=1.0)
        norms = np.linalg.norm(emb.weight.data, axis=1)
        assert np.all(norms <= 1.0 + 1e-9)

    def test_renormalize_leaves_small_rows(self):
        emb = Embedding(3, 4, rng=RNG)
        with no_grad():
            emb.weight.data = np.full((3, 4), 0.1)
        before = emb.weight.data.copy()
        emb.renormalize(max_norm=1.0)
        assert np.allclose(emb.weight.data, before)


class TestLayerNorm:
    def test_output_statistics(self):
        ln = LayerNorm(16)
        out = ln(Tensor(RNG.normal(size=(4, 16)) * 5 + 3)).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gradients(self):
        ln = LayerNorm(5)
        x = Tensor(RNG.normal(size=(3, 5)), requires_grad=True)
        check_gradients(lambda inp, g, b: ln(inp), [x, ln.gamma, ln.beta])


class TestDropout:
    def test_eval_mode_identity(self):
        drop = Dropout(0.9, rng=np.random.default_rng(0))
        drop.eval()
        x = Tensor(np.ones((5, 5)))
        assert np.allclose(drop(x).data, 1.0)

    def test_train_mode_zeroes_fraction(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        out = drop(Tensor(np.ones((100, 100)))).data
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6

    def test_rejects_rate_one(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestSequentialAndMLP:
    def test_sequential_applies_in_order(self):
        model = Sequential(Linear(2, 3, rng=RNG), Linear(3, 1, rng=RNG))
        assert model(Tensor(np.ones((4, 2)))).shape == (4, 1)
        assert len(model) == 2

    def test_mlp_tower_shapes(self):
        # The NCF tower: [32, 16, 8] hidden layers above a 64-dim concat.
        mlp = MLP([64, 32, 16, 8], rng=RNG)
        assert mlp(Tensor(RNG.normal(size=(5, 64)))).shape == (5, 8)

    def test_mlp_rejects_single_size(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_mlp_rejects_unknown_activation(self):
        with pytest.raises(ValueError):
            MLP([4, 2], activation="swish")

    def test_mlp_learns_xor(self):
        # Sanity: the stack of layers + Adam can fit a non-linear function.
        X = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]])
        y = np.array([0.0, 1.0, 1.0, 0.0])
        mlp = MLP([2, 8, 1], activation="tanh", rng=np.random.default_rng(5))
        opt = Adam(mlp.parameters(), lr=0.05)
        from repro.nn import functional as F

        for _ in range(400):
            opt.zero_grad()
            logits = mlp(Tensor(X)).reshape(4)
            loss = F.binary_cross_entropy_with_logits(logits, y)
            loss.backward()
            opt.step()
        preds = (mlp(Tensor(X)).data.reshape(4) > 0).astype(float)
        assert np.allclose(preds, y)
