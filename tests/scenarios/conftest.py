"""Fixtures for the scenario suite: smoke catalog + untrained server.

Explanation and recommendation *mechanics* (citations, entailment,
caching, degraded paths) do not depend on trained weights, so the
shared server skips pre-training; the cold-start quality claims live
in ``benchmarks/bench_scenarios.py``, which does train.
"""

import numpy as np
import pytest

from repro.config import PRESETS
from repro.core import KeyRelationSelector, PKGM, PKGMServer
from repro.data import generate_catalog
from repro.kg.rules import RuleMiner


@pytest.fixture(scope="session")
def experiment():
    return PRESETS["smoke"]()


@pytest.fixture(scope="session")
def catalog(experiment):
    return generate_catalog(experiment.catalog)


@pytest.fixture(scope="session")
def server(experiment, catalog):
    item_to_category = {
        item.entity_id: item.category_id for item in catalog.items
    }
    selector = KeyRelationSelector(
        catalog.store, item_to_category, k=experiment.key_relations
    )
    model = PKGM(
        len(catalog.entities),
        len(catalog.relations),
        experiment.pkgm,
        rng=np.random.default_rng(experiment.seed),
    )
    return PKGMServer(model, selector)


@pytest.fixture(scope="session")
def rules(catalog):
    return RuleMiner(min_support=2, min_confidence=0.6).mine(catalog.store)
