"""Tests for the explanation service: payloads, entailment, sidecar,
and cross-category rule transfer."""

import numpy as np
import pytest

from repro.kg import Rule, RuleCompleter, TripleStore
from repro.kg.rules import RuleMiner
from repro.scenarios import (
    Citation,
    ExplanationPayload,
    Explainer,
    TransferReport,
    category_subgraphs,
    evaluate_rule_transfer,
    load_sidecar,
    save_sidecar,
)


@pytest.fixture(scope="module")
def explainer(catalog, rules, server):
    return Explainer(catalog.store, rules=rules, server=server)


class TestExplainer:
    def test_completion_matches_completer(self, explainer, catalog):
        item = catalog.items[0].entity_id
        relation = explainer.completer.head_relations()[0]
        payload = explainer.explain(item, relation)
        expected = explainer.completer.predict(
            catalog.store, item, relation, top_k=3
        )
        assert list(payload.predictions) == [
            (int(v), float(s)) for v, s in expected
        ]
        assert payload.kind == "completion"

    def test_every_explained_completion_is_entailed(self, explainer, catalog):
        """The acceptance property: supporting triples entail the answer
        for every explained completion over a seeded query sweep."""
        relations = explainer.completer.head_relations()
        checked = 0
        for item in catalog.items[:30]:
            for relation in relations:
                payload = explainer.explain(item.entity_id, relation)
                assert payload.entailed_by(catalog.store)
                if payload.predictions:
                    assert payload.citations
                    checked += 1
        assert checked > 0

    def test_unknown_entity_raises_keyerror(self, explainer, catalog):
        with pytest.raises(KeyError):
            explainer.explain(len(catalog.entities) + 1000, 0)

    def test_invalid_kind_rejected(self, explainer, catalog):
        with pytest.raises(ValueError):
            explainer.explain(catalog.items[0].entity_id, 0, kind="vibes")

    def test_existence_carries_server_score(self, explainer, server, catalog):
        item = catalog.items[0].entity_id
        payload = explainer.explain(item, 0, kind="existence")
        assert payload.kind == "existence"
        assert payload.existence_score == pytest.approx(
            float(server.relation_existence_score(item, 0))
        )

    def test_canonical_bytes_order_invariant(self, catalog, rules, server):
        item = catalog.items[0].entity_id
        relation = RuleCompleter(rules).head_relations()[0]
        reference = Explainer(catalog.store, rules=rules, server=server)
        rng = np.random.default_rng(5)
        shuffled = list(rules)
        rng.shuffle(shuffled)
        other = Explainer(catalog.store, rules=shuffled, server=server)
        assert (
            reference.explain(item, relation).canonical_bytes()
            == other.explain(item, relation).canonical_bytes()
        )

    def test_citations_sorted(self, explainer, catalog):
        for item in catalog.items[:10]:
            for relation in explainer.completer.head_relations():
                payload = explainer.explain(item.entity_id, relation)
                keys = [(c.value, c.rule.sort_key) for c in payload.citations]
                assert keys == sorted(keys)


class TestEntailment:
    def rule(self):
        return Rule(0, 100, 1, 200, support=3, confidence=0.9)

    def test_rejects_citation_missing_from_store(self):
        payload = ExplanationPayload(
            entity_id=7,
            relation=1,
            predictions=((200, 0.9),),
            citations=(Citation(200, self.rule(), (7, 0, 100)),),
        )
        assert payload.entailed_by(TripleStore([(7, 0, 100)]))
        assert not payload.entailed_by(TripleStore([(7, 0, 101)]))

    def test_rejects_uncited_prediction(self):
        payload = ExplanationPayload(
            entity_id=7, relation=1, predictions=((200, 0.9),)
        )
        assert not payload.entailed_by(TripleStore([(7, 0, 100)]))

    def test_rejects_wrong_entity_citation(self):
        payload = ExplanationPayload(
            entity_id=7,
            relation=1,
            predictions=((200, 0.9),),
            citations=(Citation(200, self.rule(), (8, 0, 100)),),
        )
        assert not payload.entailed_by(
            TripleStore([(7, 0, 100), (8, 0, 100)])
        )

    def test_degraded_payload_vacuously_entailed(self):
        payload = ExplanationPayload(entity_id=7, relation=1, degraded=True)
        assert payload.entailed_by(TripleStore([]))


class TestSidecar:
    def test_roundtrip_preserves_explanations(
        self, tmp_path, catalog, rules, server
    ):
        save_sidecar(str(tmp_path), catalog.store, rules)
        loaded = load_sidecar(str(tmp_path), server=server)
        assert loaded is not None
        direct = Explainer(catalog.store, rules=rules, server=server)
        item = catalog.items[0].entity_id
        for relation in direct.completer.head_relations()[:3]:
            assert (
                loaded.explain(item, relation).canonical_bytes()
                == direct.explain(item, relation).canonical_bytes()
            )

    def test_save_is_byte_deterministic(self, tmp_path, catalog, rules):
        path_a = tmp_path / "a"
        path_b = tmp_path / "b"
        path_a.mkdir()
        path_b.mkdir()
        save_sidecar(str(path_a), catalog.store, rules)
        save_sidecar(str(path_b), catalog.store, list(reversed(rules)))
        assert (path_a / "scenarios.json").read_bytes() == (
            path_b / "scenarios.json"
        ).read_bytes()

    def test_missing_sidecar_loads_none(self, tmp_path):
        assert load_sidecar(str(tmp_path)) is None


class TestRuleTransfer:
    def determined_store(self, offset=0):
        triples = []
        for item in range(10):
            group = item % 2
            triples.append((item + offset, 0, 100 + group))
            triples.append((item + offset, 1, 200 + group))
        return TripleStore(triples)

    def test_perfect_transfer(self):
        report = evaluate_rule_transfer(
            self.determined_store(),
            self.determined_store(offset=50),
            miner=RuleMiner(min_support=2, min_confidence=0.9),
            source_category=0,
            target_category=1,
        )
        assert isinstance(report, TransferReport)
        assert report.slots > 0
        assert report.predicted == report.slots
        assert report.precision == pytest.approx(1.0)
        assert report.coverage == pytest.approx(1.0)
        assert "0 -> 1" in report.as_row()

    def test_no_rules_no_predictions(self):
        source = TripleStore([(0, 0, 100)])  # nothing minable
        report = evaluate_rule_transfer(source, self.determined_store())
        assert report.rules_mined == 0
        assert report.predicted == 0
        assert report.precision == 0.0
        assert report.coverage == 0.0

    def test_category_subgraphs_partition_item_facts(self, catalog):
        subgraphs = category_subgraphs(catalog)
        assert set(subgraphs) == {item.category_id for item in catalog.items}
        total = sum(len(store) for store in subgraphs.values())
        item_facts = sum(
            len(catalog.store.triples_with_head(item.entity_id))
            for item in catalog.items
        )
        assert total == item_facts

    def test_transfer_on_catalog_categories(self, catalog):
        subgraphs = category_subgraphs(catalog)
        categories = sorted(subgraphs)[:2]
        report = evaluate_rule_transfer(
            subgraphs[categories[0]],
            subgraphs[categories[1]],
            miner=RuleMiner(min_support=2, min_confidence=0.6),
            source_category=categories[0],
            target_category=categories[1],
        )
        assert 0.0 <= report.precision <= 1.0
        assert 0.0 <= report.coverage <= 1.0
        assert report.correct <= report.predicted <= report.slots
