"""Tests for the zero-shot cold-start scenario: split construction,
the co-occurrence alignment head, and the evaluation harness."""

import numpy as np
import pytest

from repro.core import PKGMConfig
from repro.core.trainer import TrainerConfig
from repro.scenarios import (
    ColdStartConfig,
    ColdStartReport,
    ColdStartSplit,
    CooccurrenceAligner,
    evaluate_coldstart,
    generate_coldstart_split,
    pretrain_multitask,
)


@pytest.fixture(scope="module")
def split(catalog, experiment):
    return generate_coldstart_split(
        catalog, experiment.interactions, ColdStartConfig(seed=0)
    )


class TestSplit:
    def test_cold_items_absent_by_construction(self, split):
        """The defining invariant: no training event touches a cold item."""
        assert isinstance(split, ColdStartSplit)
        cold = set(split.cold_items)
        assert cold
        assert all(
            event.item_id not in cold
            for event in split.interactions.interactions
        )

    def test_cold_and_warm_partition_items(self, split):
        assert sorted(split.cold_items + split.warm_items) == list(
            range(split.interactions.num_items)
        )

    def test_every_user_keeps_minimum_warm_history(self, split):
        config = ColdStartConfig()
        histories = split.interactions.by_user()
        for user_id in range(split.interactions.num_users):
            assert len(histories.get(user_id, [])) >= config.min_warm_per_user

    def test_heldout_positives_are_cold(self, split):
        cold = set(split.cold_items)
        assert len(split.heldout) == split.interactions.num_users
        assert all(item in cold for item in split.heldout.values())

    def test_deterministic(self, catalog, experiment, split):
        again = generate_coldstart_split(
            catalog, experiment.interactions, ColdStartConfig(seed=0)
        )
        assert again.cold_items == split.cold_items
        assert again.heldout == split.heldout
        assert again.interactions.interactions == split.interactions.interactions

    def test_seed_changes_split(self, catalog, experiment, split):
        other = generate_coldstart_split(
            catalog, experiment.interactions, ColdStartConfig(seed=1)
        )
        assert other.cold_items != split.cold_items

    def test_summary_line(self, split):
        summary = split.summary()
        assert "coldstart split:" in summary
        assert f"{len(split.cold_items)} cold" in summary

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ColdStartConfig(cold_fraction=0.0)
        with pytest.raises(ValueError):
            ColdStartConfig(cold_fraction=1.0)
        with pytest.raises(ValueError):
            ColdStartConfig(alignment_lr=0.0)
        with pytest.raises(ValueError):
            ColdStartConfig(min_warm_per_user=0)


class TestAligner:
    def test_steps_reduce_alignment_loss(self, split, catalog):
        item_entity_ids = [item.entity_id for item in catalog.items]
        aligner = CooccurrenceAligner(split.interactions, item_entity_ids)
        assert aligner.num_pairs > 0
        rng = np.random.default_rng(0)
        table = rng.normal(size=(len(catalog.entities), 8))
        losses = [aligner.step(table, lr=0.05, weight=0.5) for _ in range(5)]
        losses.append(aligner.loss(table))
        assert losses[-1] < losses[0]
        assert all(b <= a for a, b in zip(losses, losses[1:]))

    def test_cold_entities_never_paired(self, split, catalog):
        item_entity_ids = [item.entity_id for item in catalog.items]
        aligner = CooccurrenceAligner(split.interactions, item_entity_ids)
        cold_entities = {item_entity_ids[i] for i in split.cold_items}
        assert not cold_entities & set(aligner._a.tolist())
        assert not cold_entities & set(aligner._b.tolist())

    def test_max_pairs_keeps_strongest(self, split, catalog):
        item_entity_ids = [item.entity_id for item in catalog.items]
        full = CooccurrenceAligner(split.interactions, item_entity_ids)
        capped = CooccurrenceAligner(
            split.interactions, item_entity_ids, max_pairs=3
        )
        assert capped.num_pairs == 3
        assert capped.num_pairs <= full.num_pairs

    def test_empty_interactions_are_harmless(self, catalog):
        from repro.data.interactions import InteractionDataset

        empty = InteractionDataset(
            num_users=2,
            num_items=len(catalog.items),
            interactions=[],
            user_personas=[{}, {}],
        )
        item_entity_ids = [item.entity_id for item in catalog.items]
        aligner = CooccurrenceAligner(empty, item_entity_ids)
        assert aligner.num_pairs == 0
        table = np.ones((4, 4))
        assert aligner.step(table, lr=0.1, weight=1.0) == 0.0
        assert np.array_equal(table, np.ones((4, 4)))


class TestMultitask:
    def test_alignment_interleaves_with_epochs(self, catalog, split):
        item_entity_ids = [item.entity_id for item in catalog.items]
        model, history, alignment_losses = pretrain_multitask(
            catalog.store,
            len(catalog.entities),
            len(catalog.relations),
            split,
            item_entity_ids,
            model_config=PKGMConfig(dim=8),
            trainer_config=TrainerConfig(epochs=3, batch_size=128),
            coldstart=ColdStartConfig(),
            seed=0,
        )
        assert len(alignment_losses) == len(history.epoch_losses) == 3
        assert all(loss >= 0.0 for loss in alignment_losses)
        assert model.num_entities == len(catalog.entities)

    def test_evaluation_reports_all_methods(self, catalog, split, server):
        item_entity_ids = [item.entity_id for item in catalog.items]
        report = evaluate_coldstart(
            server, split, item_entity_ids, catalog, config=ColdStartConfig()
        )
        assert isinstance(report, ColdStartReport)
        assert set(report.methods) == {"service", "popularity", "random"}
        for metrics in report.methods.values():
            for k in (1, 5, 10):
                assert 0.0 <= metrics[f"HR@{k}"] <= 1.0
                assert 0.0 <= metrics[f"NDCG@{k}"] <= 1.0
        assert report.num_users == len(split.heldout)
        assert report.num_cold == len(split.cold_items)
        lines = report.lines()
        assert any("service" in line for line in lines)

    def test_evaluation_deterministic(self, catalog, split, server):
        item_entity_ids = [item.entity_id for item in catalog.items]
        first = evaluate_coldstart(server, split, item_entity_ids, catalog)
        second = evaluate_coldstart(server, split, item_entity_ids, catalog)
        assert first.methods == second.methods
