"""Gateway tests for the scenario endpoints (satellite: degraded modes).

The PR 3 invariants, re-proven for ``submit_explanation`` and
``submit_recommendation``: expired budgets and open breakers are
answered with *typed* degraded payloads — never exceptions — and
degraded payloads are never cached by the scenario backend.
"""

import numpy as np
import pytest

from repro.reliability import (
    GatewayConfig,
    PKGMGateway,
    StepClock,
    TimedBackend,
)
from repro.reliability.retry import CircuitBreaker
from repro.scenarios import (
    Explainer,
    ExplanationPayload,
    RecommendationPayload,
    ScenarioService,
    ServiceRecommender,
)


class ScriptedLatency:
    def __init__(self, values):
        self._values = [float(v) for v in values]
        self._index = 0

    def sample(self):
        value = self._values[self._index % len(self._values)]
        self._index += 1
        return value


@pytest.fixture()
def scenario_parts(catalog, rules, server):
    clock = StepClock()
    service = ScenarioService(
        Explainer(catalog.store, rules=rules, server=server),
        ServiceRecommender(server),
        clock=clock,
    )
    return clock, service


def make_gateway(server, service, clock, latency=0.01):
    replicas = [
        TimedBackend(server, latency=ScriptedLatency([latency]), name=f"r{i}")
        for i in range(2)
    ]
    return PKGMGateway(
        replicas,
        GatewayConfig(deadline_budget=0.25, hedge_after=None),
        clock=clock,
        scenarios=service,
    )


class TestDegradedModes:
    def test_expired_budget_explanation_rejected_pre_dispatch(
        self, server, scenario_parts, catalog
    ):
        clock, service = scenario_parts
        gateway = make_gateway(server, service, clock)
        item = catalog.items[0].entity_id
        response = gateway.submit_explanation(item, 0, budget=0.0)
        assert response is not None  # answered immediately, no queueing
        assert not response.ok
        assert response.reason == "deadline"
        payload = response.vectors
        assert isinstance(payload, ExplanationPayload)
        assert payload.degraded
        assert payload.predictions == ()
        assert gateway.stats.deadline_rejected == 1
        assert gateway.stats.explanations == 1
        assert len(service) == 0  # never cached

    def test_expired_budget_recommendation_rejected_pre_dispatch(
        self, server, scenario_parts, catalog
    ):
        clock, service = scenario_parts
        gateway = make_gateway(server, service, clock)
        item = catalog.items[0].entity_id
        response = gateway.submit_recommendation(item, k=5, budget=0.0)
        assert response is not None
        assert response.reason == "deadline"
        payload = response.vectors
        assert isinstance(payload, RecommendationPayload)
        assert payload.degraded
        assert np.all(np.isinf(payload.distances))
        assert np.all(payload.neighbor_ids == -1)
        assert gateway.stats.deadline_rejected == 1
        assert gateway.stats.recommendations == 1
        assert len(service) == 0

    def test_breaker_open_degrades_both_kinds_never_raises(
        self, server, scenario_parts, catalog
    ):
        clock, service = scenario_parts
        # Trip the breaker directly: every scenario call now fails fast
        # as RPCError inside the facade.
        service.breaker._trip()
        assert service.breaker.state == CircuitBreaker.OPEN
        gateway = make_gateway(server, service, clock)
        item = catalog.items[0].entity_id
        gateway.submit_explanation(item, 0)
        gateway.submit_recommendation(item, k=5)
        responses = gateway.drain()
        assert len(responses) == 2
        by_kind = {type(r.vectors): r for r in responses}
        for response in responses:
            assert not response.ok
            assert response.reason == "rpc-error"
            assert response.vectors.degraded
        assert set(by_kind) == {ExplanationPayload, RecommendationPayload}
        assert gateway.stats.backend_errors == 2
        assert gateway.stats.completed_degraded == 2
        assert len(service) == 0  # degraded answers were not cached

    def test_slow_backend_deadline_degrades(
        self, server, scenario_parts, catalog
    ):
        clock, service = scenario_parts
        gateway = make_gateway(server, service, clock, latency=10.0)
        item = catalog.items[0].entity_id
        gateway.submit_explanation(item, 0)
        responses = gateway.drain()
        assert len(responses) == 1
        assert responses[0].reason == "deadline"
        assert responses[0].vectors.degraded
        assert gateway.stats.deadline_backend_misses == 1
        assert len(service) == 0

    def test_unknown_entity_degrades_as_unknown_id(
        self, server, scenario_parts, catalog
    ):
        clock, service = scenario_parts
        gateway = make_gateway(server, service, clock)
        missing = len(catalog.entities) + 1000
        gateway.submit_explanation(missing, 0)
        gateway.submit_recommendation(missing, k=5)
        responses = gateway.drain()
        assert [r.reason for r in responses] == ["unknown-id", "unknown-id"]
        assert all(r.vectors.degraded for r in responses)
        assert len(service) == 0


class TestOkPath:
    def test_ok_answers_cached_and_counted(
        self, server, scenario_parts, catalog
    ):
        clock, service = scenario_parts
        gateway = make_gateway(server, service, clock)
        item = catalog.items[0].entity_id
        gateway.submit_explanation(item, 0)
        gateway.submit_recommendation(item, k=5)
        responses = gateway.drain()
        assert all(r.ok for r in responses)
        assert gateway.stats.completed_ok == 2
        assert gateway.stats.explanations == 1
        assert gateway.stats.recommendations == 1
        assert service.cached(("explain", item, 0, "completion")) is not None
        assert service.cached(("recommend", item, 5)) is not None
        ok_explain = next(
            r for r in responses if isinstance(r.vectors, ExplanationPayload)
        )
        assert ok_explain.vectors.entailed_by(catalog.store)

    def test_gateway_without_scenarios_rejects_submission(self, server):
        gateway = PKGMGateway(
            [TimedBackend(server, latency=ScriptedLatency([0.01]))],
            GatewayConfig(deadline_budget=0.25, hedge_after=None),
            clock=StepClock(),
        )
        with pytest.raises(ValueError, match="scenario backend"):
            gateway.submit_explanation(0, 0)
        with pytest.raises(ValueError, match="scenario backend"):
            gateway.submit_recommendation(0)
