"""The scenario workload gate, in-process: deterministic and passing."""

from repro.scenarios import ScenarioWorkloadReport, run_scenarios_workload


class TestScenarioWorkload:
    def test_two_runs_byte_identical_and_pass(self):
        first = run_scenarios_workload(seed=0, requests=36, pool_requests=12)
        second = run_scenarios_workload(seed=0, requests=36, pool_requests=12)
        assert isinstance(first, ScenarioWorkloadReport)
        assert first.lines() == second.lines()
        assert first.passed
        assert first.lines()[-1] == "scenarios workload: PASS"

    def test_transcript_shape(self):
        report = run_scenarios_workload(seed=3, requests=24, pool_requests=8)
        assert report.passed
        assert "== gateway phase ==" in report.lines()
        assert "== pool phase ==" in report.lines()
        # One transcript line per answered request in each phase.
        assert len(report.gateway_lines) == 24
        assert len(report.pool_lines) == 8
        outcomes = {line.split("outcome=")[1].split()[0] for line in report.gateway_lines}
        assert "ok" in outcomes
        # Metric lines carry the scenario counter surface.
        assert any(
            line.startswith("scenarios.") for line in report.metric_lines
        )

    def test_seed_changes_transcript(self):
        assert (
            run_scenarios_workload(seed=0, requests=24, pool_requests=8).lines()
            != run_scenarios_workload(seed=1, requests=24, pool_requests=8).lines()
        )
