"""Tests for the scenario serving facade: the zero-shot recommender,
the breaker+cache discipline, and the worker-side engine bundle."""

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.reliability.retry import CircuitBreaker, RPCError, StepClock
from repro.scenarios import (
    ScenarioService,
    ServiceRecommender,
    WorkerScenarios,
    degraded_explanation,
    degraded_recommendation,
)


class TestServiceRecommender:
    @pytest.fixture(scope="class")
    def recommender(self, server):
        return ServiceRecommender(server)

    def test_never_recommends_the_anchor(self, recommender):
        anchor = int(recommender.items[0])
        payload = recommender.recommend(anchor, k=5)
        assert anchor not in payload.neighbor_ids.tolist()
        assert payload.entity_id == anchor
        assert payload.k == 5
        assert not payload.degraded

    def test_distances_ascending(self, recommender):
        payload = recommender.recommend(int(recommender.items[0]), k=8)
        finite = payload.distances[np.isfinite(payload.distances)]
        assert np.all(np.diff(finite) >= 0)

    def test_deterministic(self, recommender, server):
        anchor = int(recommender.items[3])
        first = recommender.recommend(anchor, k=5)
        second = ServiceRecommender(server).recommend(anchor, k=5)
        assert np.array_equal(first.neighbor_ids, second.neighbor_ids)
        assert np.array_equal(first.distances, second.distances)

    def test_unknown_id_raises(self, recommender):
        with pytest.raises(KeyError):
            recommender.recommend(10**6, k=5)

    def test_k_beyond_pool_pads(self, recommender):
        n = len(recommender.items)
        payload = recommender.recommend(int(recommender.items[0]), k=n + 5)
        assert len(payload.neighbor_ids) == n + 5
        assert payload.neighbor_ids[-1] == -1
        assert np.isinf(payload.distances[-1])


class FlakyExplainer:
    """Stub: raises the scripted error, else returns the scripted payload."""

    def __init__(self, payload=None, error=None):
        self.payload = payload
        self.error = error
        self.calls = 0

    def explain(self, entity_id, relation, kind="completion"):
        self.calls += 1
        if self.error is not None:
            raise self.error
        return self.payload


class StaticRecommender:
    def __init__(self, payload):
        self.payload = payload
        self.calls = 0

    def recommend(self, entity_id, k=10):
        self.calls += 1
        return self.payload


def make_service(explainer, recommender=None, registry=None, breaker=None):
    clock = StepClock()
    return ScenarioService(
        explainer,
        recommender if recommender is not None else StaticRecommender(None),
        clock=clock,
        registry=registry,
        breaker=breaker,
    )


class TestScenarioService:
    def test_ok_payload_cached(self):
        from repro.scenarios.explain import ExplanationPayload

        payload = ExplanationPayload(entity_id=1, relation=0)
        explainer = FlakyExplainer(payload=payload)
        service = make_service(explainer)
        assert service.explain(1, 0) is payload
        assert service.explain(1, 0) is payload
        assert explainer.calls == 1  # second answer came from the cache
        assert service.cached(("explain", 1, 0, "completion")) is payload

    def test_degraded_payload_never_cached(self):
        degraded = degraded_explanation(1, 0)
        explainer = FlakyExplainer(payload=degraded)
        registry = MetricsRegistry()
        service = make_service(explainer, registry=registry)
        assert service.explain(1, 0).degraded
        assert service.explain(1, 0).degraded
        assert explainer.calls == 2  # both calls hit the engine
        assert len(service) == 0
        snapshot = registry.snapshot()
        assert snapshot["scenarios.cache.degraded_skips"] == 2

    def test_degraded_recommendation_never_cached(self):
        recommender = StaticRecommender(degraded_recommendation(1, 5))
        service = make_service(FlakyExplainer(), recommender=recommender)
        assert service.recommend(1, k=5).degraded
        assert len(service) == 0
        assert recommender.calls == 1

    def test_domain_errors_pass_through_without_tripping(self):
        explainer = FlakyExplainer(error=KeyError(99))
        breaker = CircuitBreaker(failure_threshold=2, clock=StepClock())
        service = make_service(explainer, breaker=breaker)
        for _ in range(5):
            with pytest.raises(KeyError):
                service.explain(99, 0)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_breaker_opens_on_rpc_errors_then_fails_fast(self):
        explainer = FlakyExplainer(error=RPCError("backend down"))
        breaker = CircuitBreaker(failure_threshold=2, clock=StepClock())
        service = make_service(explainer, breaker=breaker)
        for _ in range(2):
            with pytest.raises(RPCError):
                service.explain(1, 0)
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(RPCError, match="breaker open"):
            service.explain(1, 0)
        assert explainer.calls == 2  # the short-circuit never hit the engine

    def test_cache_hits_served_while_breaker_open(self):
        from repro.scenarios.explain import ExplanationPayload

        payload = ExplanationPayload(entity_id=1, relation=0)
        explainer = FlakyExplainer(payload=payload)
        breaker = CircuitBreaker(failure_threshold=1, clock=StepClock())
        service = make_service(explainer, breaker=breaker)
        assert service.explain(1, 0) is payload  # primed
        explainer.error = RPCError("backend down")
        with pytest.raises(RPCError):
            service.explain(2, 0)
        assert breaker.state == CircuitBreaker.OPEN
        # Stale-on-open: the cached query still answers.
        assert service.explain(1, 0) is payload
        with pytest.raises(RPCError):
            service.explain(3, 0)


class TestWorkerScenarios:
    def test_recommend_without_sidecar(self, server, tmp_path):
        scenarios = WorkerScenarios(server, str(tmp_path))
        anchor = int(sorted(server.known_items())[0])
        distances, neighbor_ids = scenarios.recommend(anchor, 5)
        assert len(distances) == len(neighbor_ids) == 5
        with pytest.raises(RuntimeError, match="sidecar"):
            scenarios.explain(anchor, 0)

    def test_explain_with_sidecar(self, server, catalog, rules, tmp_path):
        from repro.scenarios import Explainer, save_sidecar

        save_sidecar(str(tmp_path), catalog.store, rules)
        scenarios = WorkerScenarios(server, str(tmp_path))
        direct = Explainer(catalog.store, rules=rules, server=server)
        item = catalog.items[0].entity_id
        relation = direct.completer.head_relations()[0]
        assert scenarios.explain(item, relation) == direct.explain(
            item, relation
        ).canonical_dict()
