"""Tests for the scenario op kinds on the pool wire protocol and the
forked worker pool (explain/recommend end to end)."""

import numpy as np
import pytest

from repro.serving import PoolConfig, PoolError, Supervisor, payload_checksum, run_batch
from repro.serving.protocol import KINDS, STATUS_ERROR, STATUS_OK, STATUS_UNKNOWN
from repro.scenarios import (
    Explainer,
    ServiceRecommender,
    WorkerScenarios,
    save_sidecar,
)


class TestProtocol:
    def test_scenario_kinds_registered(self):
        assert "explain" in KINDS
        assert "recommend" in KINDS

    def test_explain_checksum_deterministic(self, catalog, rules, server):
        explainer = Explainer(catalog.store, rules=rules, server=server)
        item = catalog.items[0].entity_id
        relation = explainer.completer.head_relations()[0]
        payload = explainer.explain(item, relation).canonical_dict()
        assert payload_checksum("explain", payload) == payload_checksum(
            "explain", dict(reversed(list(payload.items())))
        )
        other = explainer.explain(item, relation, top_k=1).canonical_dict()
        if other != payload:
            assert payload_checksum("explain", other) != payload_checksum(
                "explain", payload
            )

    def test_recommend_checksum_covers_both_arrays(self):
        distances = np.asarray([0.5, 1.5])
        ids = np.asarray([3, 4], dtype=np.int64)
        base = payload_checksum("recommend", (distances, ids))
        assert base == payload_checksum("recommend", (distances.copy(), ids.copy()))
        assert base != payload_checksum(
            "recommend", (distances, np.asarray([3, 5], dtype=np.int64))
        )
        assert base != payload_checksum(
            "recommend", (np.asarray([0.5, 2.5]), ids)
        )


class TestRunBatch:
    def test_scenario_kinds_without_engines_degrade(self, server):
        for kind in ("explain", "recommend"):
            results = run_batch(server, kind, 5, [(1, 0, 0, None)], scenarios=None)
            assert results == [(1, STATUS_ERROR, "worker has no scenario engines")]

    def test_scenario_kinds_with_engines(
        self, server, catalog, rules, tmp_path
    ):
        save_sidecar(str(tmp_path), catalog.store, rules)
        scenarios = WorkerScenarios(server, str(tmp_path))
        item = catalog.items[0].entity_id
        results = run_batch(
            server, "recommend", 5, [(1, item, 0, None)], scenarios=scenarios
        )
        rid, status, payload = results[0]
        assert (rid, status) == (1, STATUS_OK)
        direct = ServiceRecommender(server).recommend(item, k=5)
        assert np.array_equal(payload[0], direct.distances)
        assert np.array_equal(payload[1], direct.neighbor_ids)

        explainer = Explainer(catalog.store, rules=rules, server=server)
        relation = explainer.completer.head_relations()[0]
        results = run_batch(
            server, "explain", 0, [(2, item, relation, None)], scenarios=scenarios
        )
        rid, status, payload = results[0]
        assert (rid, status) == (2, STATUS_OK)
        assert payload == explainer.explain(item, relation).canonical_dict()

    def test_unknown_ids_degrade_per_item(self, server, catalog, tmp_path):
        scenarios = WorkerScenarios(server, str(tmp_path))
        item = catalog.items[0].entity_id
        results = run_batch(
            server,
            "recommend",
            5,
            [(1, item, 0, None), (2, 10**6, 0, None)],
            scenarios=scenarios,
        )
        by_id = {rid: status for rid, status, _ in results}
        assert by_id == {1: STATUS_OK, 2: STATUS_UNKNOWN}


@pytest.fixture(scope="module")
def scenario_store(tmp_path_factory, server, catalog, rules):
    path = tmp_path_factory.mktemp("scenarios") / "store"
    server.save_store(path, num_shards=2, page_bytes=4096).close()
    save_sidecar(str(path), catalog.store, rules)
    return path


@pytest.fixture(scope="module")
def bare_store(tmp_path_factory, server):
    """Same embeddings, no sidecar: recommend works, explain errors."""
    path = tmp_path_factory.mktemp("scenarios-bare") / "store"
    server.save_store(path, num_shards=2, page_bytes=4096).close()
    return path


class TestForkedPool:
    def test_pool_matches_direct_engines(
        self, scenario_store, server, catalog, rules
    ):
        explainer = Explainer(catalog.store, rules=rules, server=server)
        recommender = ServiceRecommender(server)
        item = catalog.items[0].entity_id
        relation = explainer.completer.head_relations()[0]
        pool = Supervisor(scenario_store, PoolConfig(num_workers=2, max_batch=4))
        pool.start()
        try:
            payload = pool.explain(item, relation)
            assert payload == explainer.explain(item, relation).canonical_dict()
            distances, neighbor_ids = pool.recommend(item, k=5)
            direct = recommender.recommend(item, k=5)
            assert np.array_equal(distances, direct.distances)
            assert np.array_equal(neighbor_ids, direct.neighbor_ids)
            with pytest.raises(KeyError):
                pool.explain(10**6, relation)
        finally:
            pool.shutdown()

    def test_missing_sidecar_fails_explain_not_recommend(
        self, bare_store, server, catalog
    ):
        item = catalog.items[0].entity_id
        pool = Supervisor(bare_store, PoolConfig(num_workers=1, max_batch=4))
        pool.start()
        try:
            with pytest.raises(PoolError, match="error"):
                pool.explain(item, 0)
            distances, neighbor_ids = pool.recommend(item, k=5)
            assert len(distances) == len(neighbor_ids) == 5
        finally:
            pool.shutdown()
