"""Tests for KG statistics (Table II shape) and (de)serialization."""

import numpy as np
import pytest

from repro.kg import (
    EntityVocabulary,
    RelationVocabulary,
    TripleStore,
    kg_statistics,
    relation_frequency_table,
)
from repro.kg.io import load_kg_npz, load_triples_tsv, save_kg_npz, save_triples_tsv


@pytest.fixture
def kg():
    entities = EntityVocabulary()
    relations = RelationVocabulary()
    store = TripleStore()
    brand = relations.add_property("brandIs")
    color = relations.add_property("colorIs")
    same = relations.add_item_relation("same_product_as")
    apple = entities.add_value("Apple")
    green = entities.add_value("Green")
    for i in range(3):
        item = entities.add_item(f"item_{i}")
        store.add(item, brand, apple)
    store.add(entities.id_of("item_0"), color, green)
    store.add(entities.id_of("item_0"), same, entities.id_of("item_1"))
    return store, entities, relations


class TestStatistics:
    def test_table2_columns(self, kg):
        store, entities, relations = kg
        stats = kg_statistics(store, entities, relations)
        assert stats.num_items == 3
        assert stats.num_entities == 5  # 3 items + 2 values
        assert stats.num_relations == 3
        assert stats.num_triples == 5

    def test_mean_triples_per_item(self, kg):
        store, entities, relations = kg
        stats = kg_statistics(store, entities, relations)
        # item_0 has 3, item_1 and item_2 have 1 each.
        assert stats.mean_triples_per_item == pytest.approx(5 / 3)

    def test_table_row_format(self, kg):
        store, entities, relations = kg
        row = kg_statistics(store, entities, relations).as_table_row("X")
        assert row.startswith("X | 3 | 5 | 3 | 5")

    def test_relation_frequency_sorted(self, kg):
        store, entities, relations = kg
        table = relation_frequency_table(store, relations)
        assert list(table) == ["brandIs", "colorIs", "same_product_as"]
        assert table["brandIs"] == 3

    def test_empty_kg(self):
        stats = kg_statistics(TripleStore(), EntityVocabulary(), RelationVocabulary())
        assert stats.num_triples == 0
        assert stats.mean_triples_per_item == 0.0


class TestTsvRoundtrip:
    def test_roundtrip_preserves_triples(self, kg, tmp_path):
        store, entities, relations = kg
        path = tmp_path / "triples.tsv"
        save_triples_tsv(path, store, entities, relations)
        loaded_store, loaded_entities, loaded_relations = load_triples_tsv(path)
        original = {
            (entities.label_of(t.head), relations.label_of(t.relation), entities.label_of(t.tail))
            for t in store
        }
        reloaded = {
            (
                loaded_entities.label_of(t.head),
                loaded_relations.label_of(t.relation),
                loaded_entities.label_of(t.tail),
            )
            for t in loaded_store
        }
        assert original == reloaded

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("only\ttwo\n")
        with pytest.raises(ValueError):
            load_triples_tsv(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.tsv"
        path.write_text("a\tr\tb\n\n")
        store, _, _ = load_triples_tsv(path)
        assert len(store) == 1


class TestNpzRoundtrip:
    def test_roundtrip_preserves_everything(self, kg, tmp_path):
        store, entities, relations = kg
        path = tmp_path / "kg.npz"
        save_kg_npz(path, store, entities, relations)
        s2, e2, r2 = load_kg_npz(path)
        assert np.array_equal(store.to_array(), s2.to_array())
        assert e2.labels() == entities.labels()
        assert e2.item_ids() == entities.item_ids()
        assert r2.labels() == relations.labels()
        assert r2.property_ids() == relations.property_ids()
