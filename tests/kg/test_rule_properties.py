"""Property-based tests for rule mining invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kg import RuleMiner, TripleStore


triples_strategy = st.lists(
    st.tuples(
        st.integers(0, 10),  # items
        st.integers(0, 3),  # relations
        st.integers(20, 26),  # values
    ),
    min_size=2,
    max_size=60,
)


@settings(max_examples=40, deadline=None)
@given(triples_strategy, st.integers(1, 4), st.floats(0.3, 1.0))
def test_thresholds_respected(triples, min_support, min_confidence):
    store = TripleStore(triples)
    rules = RuleMiner(min_support=min_support, min_confidence=min_confidence).mine(store)
    for rule in rules:
        assert rule.support >= min_support
        assert rule.confidence >= min_confidence - 1e-12
        assert rule.confidence <= 1.0 + 1e-12
        assert rule.body_relation != rule.head_relation


@settings(max_examples=40, deadline=None)
@given(triples_strategy)
def test_support_counts_are_exact(triples):
    """Every mined rule's support equals the actual co-occurrence count."""
    store = TripleStore(triples)
    rules = RuleMiner(min_support=1, min_confidence=0.01).mine(store)
    for rule in rules[:10]:
        count = 0
        for head in store.heads():
            facts = {
                (t.relation, t.tail) for t in store.triples_with_head(head)
            }
            if (rule.body_relation, rule.body_value) in facts and (
                rule.head_relation,
                rule.head_value,
            ) in facts:
                count += 1
        assert count == rule.support


@settings(max_examples=40, deadline=None)
@given(triples_strategy)
def test_stricter_thresholds_give_subset(triples):
    store = TripleStore(triples)
    loose = RuleMiner(min_support=1, min_confidence=0.2).mine(store)
    strict = RuleMiner(min_support=2, min_confidence=0.8).mine(store)
    loose_keys = {
        (r.body_relation, r.body_value, r.head_relation, r.head_value)
        for r in loose
    }
    strict_keys = {
        (r.body_relation, r.body_value, r.head_relation, r.head_value)
        for r in strict
    }
    assert strict_keys <= loose_keys
