"""Tests for the edge sampler (Graph-learn substitute) and splits."""

import numpy as np
import pytest

from repro.kg import (
    EdgeSampler,
    TripleStore,
    holdout_incompleteness,
    split_triples,
)


def dense_store(num_heads=20, num_relations=4, tails_per=3):
    triples = []
    for h in range(num_heads):
        for r in range(num_relations):
            for k in range(tails_per):
                triples.append((h, r, 100 + (h * 7 + r * 3 + k) % 50))
    return TripleStore(triples)


class TestEdgeSampler:
    def make(self, store=None, **kwargs):
        store = store if store is not None else dense_store()
        defaults = dict(
            batch_size=16,
            num_entities=200,
            num_relations=4,
            rng=np.random.default_rng(0),
        )
        defaults.update(kwargs)
        return EdgeSampler.with_uniform(store, **defaults)

    def test_epoch_covers_every_edge_once(self):
        store = dense_store()
        sampler = self.make(store)
        seen = []
        for batch in sampler.epoch():
            seen.extend(map(tuple, batch.positives))
        assert len(seen) == len(store)
        assert set(seen) == {(t.head, t.relation, t.tail) for t in store}

    def test_negatives_shape_matches(self):
        sampler = self.make(negatives_per_edge=3)
        batch = next(iter(sampler.epoch()))
        assert batch.negatives.shape == (3, len(batch), 3)

    def test_negatives_differ_from_positives(self):
        sampler = self.make()
        for batch in sampler.epoch():
            assert not np.any(np.all(batch.negatives[0] == batch.positives, axis=1))

    def test_shuffling_changes_order_between_epochs(self):
        sampler = self.make()
        first = [tuple(p) for b in sampler.epoch() for p in b.positives]
        second = [tuple(p) for b in sampler.epoch() for p in b.positives]
        assert first != second
        assert set(first) == set(second)

    def test_num_batches(self):
        store = dense_store()  # 240 triples
        assert self.make(store, batch_size=100).num_batches() == 3
        sampler = EdgeSampler.with_uniform(
            store, batch_size=100, num_entities=200, num_relations=4
        )
        sampler.drop_last = True
        assert sampler.num_batches() == 2

    def test_drop_last(self):
        store = dense_store()
        sampler = self.make(store, batch_size=100)
        sampler.drop_last = True
        batches = list(sampler.epoch())
        assert all(len(b) == 100 for b in batches)

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            self.make(batch_size=0)
        with pytest.raises(ValueError):
            self.make(negatives_per_edge=0)
        with pytest.raises(ValueError):
            self.make(store=TripleStore())


class TestSplitTriples:
    def test_partition_is_exact(self):
        store = dense_store()
        split = split_triples(store, 0.1, 0.1, np.random.default_rng(0))
        n_train, n_valid, n_test = split.sizes()
        assert n_train + n_valid + n_test == len(store)
        all_triples = {(t.head, t.relation, t.tail) for t in store}
        got = set()
        for part in (split.train, split.valid, split.test):
            got |= {(t.head, t.relation, t.tail) for t in part}
        assert got == all_triples

    def test_train_covers_all_entities_and_relations(self):
        store = dense_store()
        split = split_triples(store, 0.2, 0.2, np.random.default_rng(1))
        assert split.train.entities() == store.entities()
        assert split.train.relations() == store.relations()

    def test_fractions_respected_approximately(self):
        store = dense_store(num_heads=50)
        split = split_triples(store, 0.1, 0.1, np.random.default_rng(2))
        n = len(store)
        assert abs(len(split.valid) - 0.1 * n) <= 0.05 * n
        assert abs(len(split.test) - 0.1 * n) <= 0.05 * n

    def test_validates_fractions(self):
        store = dense_store()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            split_triples(store, 0.6, 0.5, rng)
        with pytest.raises(ValueError):
            split_triples(store, -0.1, 0.1, rng)

    def test_empty_store_raises(self):
        with pytest.raises(ValueError):
            split_triples(TripleStore(), 0.1, 0.1, np.random.default_rng(0))


class TestHoldoutIncompleteness:
    def test_partition_exact(self):
        store = dense_store()
        observed, missing = holdout_incompleteness(store, 0.2, np.random.default_rng(0))
        assert len(observed) + len(missing) == len(store)
        for t in missing:
            assert (t.head, t.relation, t.tail) not in observed

    def test_every_head_keeps_a_triple(self):
        store = dense_store()
        observed, _ = holdout_incompleteness(store, 0.9, np.random.default_rng(1))
        assert observed.heads() == store.heads()

    def test_fraction_zero_keeps_everything(self):
        store = dense_store()
        observed, missing = holdout_incompleteness(store, 0.0, np.random.default_rng(0))
        assert len(missing) == 0
        assert len(observed) == len(store)

    def test_validates_fraction(self):
        with pytest.raises(ValueError):
            holdout_incompleteness(dense_store(), 1.0, np.random.default_rng(0))
