"""Unit tests for vocabularies and the indexed triple store."""

import numpy as np
import pytest

from repro.kg import (
    EntityVocabulary,
    RelationVocabulary,
    Triple,
    TripleStore,
    Vocabulary,
)


class TestVocabulary:
    def test_add_assigns_dense_ids(self):
        vocab = Vocabulary()
        assert vocab.add("a") == 0
        assert vocab.add("b") == 1
        assert vocab.add("a") == 0  # idempotent

    def test_roundtrip(self):
        vocab = Vocabulary(["x", "y"])
        assert vocab.label_of(vocab.id_of("y")) == "y"

    def test_missing_label_raises(self):
        with pytest.raises(KeyError):
            Vocabulary().id_of("nope")

    def test_bad_id_raises(self):
        vocab = Vocabulary(["a"])
        with pytest.raises(IndexError):
            vocab.label_of(1)
        with pytest.raises(IndexError):
            vocab.label_of(-1)

    def test_contains_len_iter(self):
        vocab = Vocabulary(["a", "b"])
        assert "a" in vocab and "c" not in vocab
        assert len(vocab) == 2
        assert list(vocab) == ["a", "b"]

    def test_labels_is_copy(self):
        vocab = Vocabulary(["a"])
        vocab.labels().append("b")
        assert len(vocab) == 1


class TestEntityVocabulary:
    def test_item_value_partition(self):
        vocab = EntityVocabulary()
        item = vocab.add_item("item_1")
        value = vocab.add_value("Apple")
        assert vocab.is_item(item)
        assert not vocab.is_item(value)
        assert vocab.num_items == 1
        assert vocab.item_ids() == [item]

    def test_shared_id_space(self):
        vocab = EntityVocabulary()
        vocab.add_item("i")
        vocab.add_value("v")
        assert len(vocab) == 2


class TestRelationVocabulary:
    def test_property_partition(self):
        vocab = RelationVocabulary()
        prop = vocab.add_property("brandIs")
        rel = vocab.add_item_relation("same_product_as")
        assert vocab.is_property(prop)
        assert not vocab.is_property(rel)
        assert vocab.num_properties == 1
        assert vocab.property_ids() == [prop]


@pytest.fixture
def small_store():
    # item 0: brand(10)=apple(100), color(11)=green(101)
    # item 1: brand(10)=apple(100)
    store = TripleStore()
    store.add(0, 10, 100)
    store.add(0, 11, 101)
    store.add(1, 10, 100)
    return store


class TestTripleStore:
    def test_add_deduplicates(self, small_store):
        assert not small_store.add(0, 10, 100)
        assert len(small_store) == 3

    def test_add_all_counts_new(self, small_store):
        added = small_store.add_all([(0, 10, 100), (2, 10, 100)])
        assert added == 1

    def test_contains(self, small_store):
        assert (0, 10, 100) in small_store
        assert (0, 10, 101) not in small_store

    def test_tails_triple_query(self, small_store):
        assert small_store.tails(0, 10) == [100]
        assert small_store.tails(0, 99) == []

    def test_multivalued_tails(self, small_store):
        small_store.add(0, 10, 102)
        assert sorted(small_store.tails(0, 10)) == [100, 102]

    def test_relations_of(self, small_store):
        assert small_store.relations_of(0) == {10, 11}
        assert small_store.relations_of(1) == {10}
        assert small_store.relations_of(999) == set()

    def test_has_relation(self, small_store):
        assert small_store.has_relation(0, 11)
        assert not small_store.has_relation(1, 11)

    def test_triples_with_head_tail_relation(self, small_store):
        assert len(small_store.triples_with_head(0)) == 2
        assert len(small_store.triples_with_tail(100)) == 2
        assert len(small_store.triples_with_relation(10)) == 2

    def test_entities_and_relations(self, small_store):
        assert small_store.entities() == {0, 1, 100, 101}
        assert small_store.relations() == {10, 11}
        assert small_store.heads() == {0, 1}

    def test_to_array(self, small_store):
        arr = small_store.to_array()
        assert arr.shape == (3, 3)
        assert arr.dtype == np.int64
        assert (0, 10, 100) in small_store

    def test_to_array_empty(self):
        assert TripleStore().to_array().shape == (0, 3)

    def test_relation_counts(self, small_store):
        assert small_store.relation_counts() == {10: 2, 11: 1}

    def test_filter_relations_drops_rare(self, small_store):
        filtered = small_store.filter_relations(min_count=2)
        assert filtered.relations() == {10}
        assert len(filtered) == 2

    def test_iteration_yields_triples(self, small_store):
        triples = list(small_store)
        assert all(isinstance(t, Triple) for t in triples)
        assert triples[0] == Triple(0, 10, 100)

    def test_constructor_from_iterable(self):
        store = TripleStore([(1, 2, 3), (1, 2, 3), (4, 5, 6)])
        assert len(store) == 2
