"""Tests for the symbolic query engine and negative samplers."""

import numpy as np
import pytest

from repro.kg import (
    BernoulliNegativeSampler,
    QueryEngine,
    TripleStore,
    UniformNegativeSampler,
    recover_all_triples,
)


@pytest.fixture
def store():
    return TripleStore(
        [
            (0, 0, 10),
            (0, 1, 11),
            (1, 0, 10),
            (1, 1, 12),
            (2, 0, 13),
        ]
    )


class TestQueryEngine:
    def test_triple_query_hits(self, store):
        result = QueryEngine(store).triple_query(0, 0)
        assert result.exists
        assert result.tails == (10,)

    def test_triple_query_miss(self, store):
        result = QueryEngine(store).triple_query(2, 1)
        assert not result.exists
        assert result.tails == ()

    def test_relation_query(self, store):
        result = QueryEngine(store).relation_query(1)
        assert result.relations == (0, 1)
        assert result.has(0) and not result.has(7)

    def test_recover_all_triples(self, store):
        """Paper claim: the two query types recover the whole KG."""
        engine = QueryEngine(store)
        recovered = recover_all_triples(engine, store)
        expected = {(t.head, t.relation, t.tail) for t in store}
        assert recovered == expected


class TestUniformNegativeSampler:
    def make(self, **kwargs):
        defaults = dict(
            num_entities=50,
            num_relations=5,
            rng=np.random.default_rng(0),
            corrupt_relation_prob=0.2,
        )
        defaults.update(kwargs)
        return UniformNegativeSampler(**defaults)

    def test_every_negative_differs_from_positive(self):
        sampler = self.make()
        positives = np.array([[1, 2, 3]] * 500)
        negatives = sampler.corrupt_batch(positives)
        assert not np.any(np.all(negatives == positives, axis=1))

    def test_exactly_one_slot_corrupted(self):
        sampler = self.make()
        positives = np.array([[1, 2, 3]] * 200)
        negatives = sampler.corrupt_batch(positives)
        changed = (negatives != positives).sum(axis=1)
        assert np.all(changed == 1)

    def test_relation_corruption_share(self):
        sampler = self.make(corrupt_relation_prob=0.5, rng=np.random.default_rng(1))
        positives = np.array([[1, 2, 3]] * 4000)
        negatives = sampler.corrupt_batch(positives)
        rel_changed = (negatives[:, 1] != positives[:, 1]).mean()
        assert 0.45 < rel_changed < 0.55

    def test_zero_relation_prob_only_entities(self):
        sampler = self.make(corrupt_relation_prob=0.0)
        positives = np.array([[1, 2, 3]] * 300)
        negatives = sampler.corrupt_batch(positives)
        assert np.all(negatives[:, 1] == 2)

    def test_relation_corruption_disabled_for_single_relation(self):
        sampler = self.make(num_relations=1, corrupt_relation_prob=0.9)
        assert sampler.corrupt_relation_prob == 0.0

    def test_ids_stay_in_range(self):
        sampler = self.make(num_entities=10, num_relations=3)
        positives = np.array([[9, 2, 0]] * 1000)
        negatives = sampler.corrupt_batch(positives)
        assert negatives[:, 0].max() < 10 and negatives[:, 0].min() >= 0
        assert negatives[:, 2].max() < 10 and negatives[:, 2].min() >= 0
        assert negatives[:, 1].max() < 3

    def test_filtered_avoids_known_positives(self):
        # Dense tiny KG: unfiltered corruption would often hit positives.
        triples = [(h, 0, t) for h in range(4) for t in range(4, 7)]
        store = TripleStore(triples)
        sampler = UniformNegativeSampler(
            num_entities=8,
            num_relations=1,
            rng=np.random.default_rng(2),
            corrupt_relation_prob=0.0,
            filter_store=store,
            max_resample=50,
        )
        positives = store.to_array()
        for _ in range(20):
            negatives = sampler.corrupt_batch(positives)
            hits = sum(tuple(n) in store for n in negatives)
            assert hits == 0

    def test_validates_arguments(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            UniformNegativeSampler(1, 5, rng)
        with pytest.raises(ValueError):
            UniformNegativeSampler(5, 0, rng)
        with pytest.raises(ValueError):
            UniformNegativeSampler(5, 5, rng, corrupt_relation_prob=1.5)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            self.make().corrupt_batch(np.array([1, 2, 3]))


class TestBernoulliNegativeSampler:
    def test_corrupts_one_entity_slot(self, store):
        sampler = BernoulliNegativeSampler(store, num_entities=20, rng=np.random.default_rng(0))
        positives = store.to_array()
        negatives = sampler.corrupt_batch(positives)
        changed = (negatives != positives).sum(axis=1)
        assert np.all(changed == 1)
        assert np.all(negatives[:, 1] == positives[:, 1])  # never the relation

    def test_one_to_many_relation_prefers_head_corruption(self):
        # Relation 0: one head, many tails -> tph high -> corrupt head often.
        triples = [(0, 0, t) for t in range(1, 30)]
        store = TripleStore(triples)
        sampler = BernoulliNegativeSampler(store, num_entities=60, rng=np.random.default_rng(1))
        positives = np.array(triples * 10)
        negatives = sampler.corrupt_batch(positives)
        head_changed = (negatives[:, 0] != positives[:, 0]).mean()
        assert head_changed > 0.8

    def test_validates_entities(self, store):
        with pytest.raises(ValueError):
            BernoulliNegativeSampler(store, num_entities=1, rng=np.random.default_rng(0))
