"""Property-based tests for the KG substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kg import (
    QueryEngine,
    TripleStore,
    UniformNegativeSampler,
    holdout_incompleteness,
    recover_all_triples,
    split_triples,
)


triples_strategy = st.lists(
    st.tuples(
        st.integers(0, 15),  # heads
        st.integers(0, 4),  # relations
        st.integers(16, 40),  # tails
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=50, deadline=None)
@given(triples_strategy)
def test_store_membership_matches_input(triples):
    store = TripleStore(triples)
    for triple in triples:
        assert triple in store
    assert len(store) == len(set(triples))


@settings(max_examples=50, deadline=None)
@given(triples_strategy)
def test_queries_recover_entire_graph(triples):
    """The paper's claim: triple + relation queries recover all triples."""
    store = TripleStore(triples)
    recovered = recover_all_triples(QueryEngine(store), store)
    assert recovered == set((t.head, t.relation, t.tail) for t in store)


@settings(max_examples=50, deadline=None)
@given(triples_strategy)
def test_tails_consistent_with_relations_of(triples):
    store = TripleStore(triples)
    for head in store.heads():
        for relation in store.relations_of(head):
            assert store.tails(head, relation), (
                "relation reported for head but no tails found"
            )


@settings(max_examples=30, deadline=None)
@given(triples_strategy, st.integers(0, 2**31 - 1))
def test_split_partitions_exactly(triples, seed):
    store = TripleStore(triples)
    split = split_triples(store, 0.15, 0.15, np.random.default_rng(seed))
    total = sum(split.sizes())
    assert total == len(store)
    # No triple appears in two parts.
    parts = [
        {(t.head, t.relation, t.tail) for t in part}
        for part in (split.train, split.valid, split.test)
    ]
    assert not (parts[0] & parts[1])
    assert not (parts[0] & parts[2])
    assert not (parts[1] & parts[2])


@settings(max_examples=30, deadline=None)
@given(
    triples_strategy,
    st.floats(0.0, 0.9),
    st.integers(0, 2**31 - 1),
)
def test_holdout_preserves_heads_and_partitions(triples, fraction, seed):
    store = TripleStore(triples)
    observed, missing = holdout_incompleteness(store, fraction, np.random.default_rng(seed))
    assert len(observed) + len(missing) == len(store)
    assert observed.heads() == store.heads()


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 2), st.integers(0, 9)),
        min_size=1,
        max_size=30,
    ),
    st.integers(0, 2**31 - 1),
)
def test_negative_sampler_never_returns_the_positive(triples, seed):
    positives = np.asarray(triples, dtype=np.int64)
    sampler = UniformNegativeSampler(
        num_entities=10, num_relations=3, rng=np.random.default_rng(seed)
    )
    negatives = sampler.corrupt_batch(positives)
    assert not np.any(np.all(negatives == positives, axis=1))
    assert negatives[:, 0].max() < 10 and negatives[:, 2].max() < 10
    assert negatives[:, 1].max() < 3
    assert negatives.min() >= 0
