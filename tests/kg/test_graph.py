"""Tests for the networkx graph view and audit utilities."""

import networkx as nx
import numpy as np
import pytest

from repro.data import CatalogConfig, generate_catalog
from repro.kg import (
    TripleStore,
    connected_component_sizes,
    degree_statistics,
    shared_value_neighbors,
    to_networkx,
)


@pytest.fixture(scope="module")
def catalog():
    return generate_catalog(
        CatalogConfig(
            num_categories=3,
            products_per_category=8,
            min_items_per_product=2,
            max_items_per_product=3,
            seed=2,
        )
    )


class TestToNetworkx:
    def test_edge_and_node_counts(self, catalog):
        graph = to_networkx(catalog.store, catalog.entities, catalog.relations)
        assert graph.number_of_edges() == len(catalog.store)
        assert graph.number_of_nodes() == len(catalog.store.entities())

    def test_node_kinds(self, catalog):
        graph = to_networkx(catalog.store, catalog.entities, catalog.relations)
        item = catalog.items[0]
        assert graph.nodes[item.entity_id]["kind"] == "item"
        some_value = catalog.store.triples_with_head(item.entity_id)[0].tail
        assert graph.nodes[some_value]["kind"] == "value"

    def test_edge_labels(self, catalog):
        graph = to_networkx(catalog.store, catalog.entities, catalog.relations)
        _, _, data = next(iter(graph.edges(data=True)))
        assert data["label"] in catalog.relations.labels()

    def test_without_vocabularies(self):
        store = TripleStore([(0, 0, 1)])
        graph = to_networkx(store)
        assert graph.nodes[0]["kind"] == "unknown"

    def test_parallel_edges_preserved(self):
        store = TripleStore([(0, 0, 1), (0, 1, 1)])
        graph = to_networkx(store)
        assert graph.number_of_edges() == 2


class TestAudits:
    def test_catalog_kg_is_highly_connected(self, catalog):
        """Shared brands/colors should merge almost everything."""
        sizes = connected_component_sizes(catalog.store)
        assert sizes[0] > 0.5 * len(catalog.store.entities())

    def test_component_sizes_sorted_and_partition(self, catalog):
        sizes = connected_component_sizes(catalog.store)
        assert sizes == sorted(sizes, reverse=True)
        assert sum(sizes) == len(catalog.store.entities())

    def test_degree_statistics_keys_and_bounds(self, catalog):
        stats = degree_statistics(catalog.store)
        assert stats["max_out_degree"] >= stats["mean_out_degree"] > 0
        assert stats["max_in_degree"] >= stats["mean_in_degree"] > 0

    def test_degree_statistics_empty_store(self):
        stats = degree_statistics(TripleStore())
        assert stats["mean_out_degree"] == 0.0

    def test_shared_value_neighbors_finds_siblings(self, catalog):
        """Listings of the same product top the shared-value ranking."""
        product = next(
            p for p in catalog.products if len(catalog.items_of_product(p.product_id)) >= 2
        )
        siblings = catalog.items_of_product(product.product_id)
        anchor = siblings[0]
        ranked = shared_value_neighbors(catalog.store, anchor.entity_id, limit=5)
        top_ids = [entity for entity, _ in ranked[:3]]
        assert any(s.entity_id in top_ids for s in siblings[1:])

    def test_shared_value_neighbors_excludes_self(self, catalog):
        anchor = catalog.items[0].entity_id
        ranked = shared_value_neighbors(catalog.store, anchor)
        assert all(entity != anchor for entity, _ in ranked)

    def test_shared_value_counts_descending(self, catalog):
        ranked = shared_value_neighbors(catalog.store, catalog.items[0].entity_id)
        counts = [count for _, count in ranked]
        assert counts == sorted(counts, reverse=True)
