"""Tests for attribute-implication rule mining and completion."""

import numpy as np
import pytest

from repro.kg import Rule, RuleCompleter, RuleMiner, TripleStore


def implication_store():
    """10 items: relation 0 value determines relation 1 value."""
    triples = []
    for item in range(10):
        group = item % 2
        triples.append((item, 0, 100 + group))  # body: two possible values
        triples.append((item, 1, 200 + group))  # head: determined by body
        triples.append((item, 2, 300 + item))  # noise: unique values
    return TripleStore(triples)


class TestRuleMiner:
    def test_finds_deterministic_implication(self):
        rules = RuleMiner(min_support=3, min_confidence=0.9).mine(implication_store())
        found = {
            (r.body_relation, r.body_value, r.head_relation, r.head_value)
            for r in rules
        }
        assert (0, 100, 1, 200) in found
        assert (0, 101, 1, 201) in found

    def test_confidence_and_support_values(self):
        rules = RuleMiner(min_support=2, min_confidence=0.5).mine(implication_store())
        rule = next(
            r for r in rules if (r.body_relation, r.body_value) == (0, 100)
            and r.head_relation == 1
        )
        assert rule.support == 5
        assert rule.confidence == pytest.approx(1.0)

    def test_no_same_relation_rules(self):
        rules = RuleMiner(min_support=1, min_confidence=0.1).mine(implication_store())
        assert all(r.body_relation != r.head_relation for r in rules)

    def test_min_support_filters(self):
        # Unique noise values can never reach support 2 as bodies.
        rules = RuleMiner(min_support=2, min_confidence=0.1).mine(implication_store())
        assert all(r.body_relation != 2 for r in rules)

    def test_low_confidence_filtered(self):
        # Make relation 0 -> relation 1 only 60% consistent.
        triples = []
        for item in range(10):
            triples.append((item, 0, 100))
            triples.append((item, 1, 200 if item < 6 else 201))
        store = TripleStore(triples)
        strict = RuleMiner(min_support=2, min_confidence=0.7).mine(store)
        assert not any(
            r.head_relation == 1 and r.head_value == 200 for r in strict
        )
        loose = RuleMiner(min_support=2, min_confidence=0.5).mine(store)
        assert any(r.head_value == 200 for r in loose)

    def test_sorted_by_confidence(self):
        rules = RuleMiner(min_support=1, min_confidence=0.1).mine(implication_store())
        confidences = [r.confidence for r in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            RuleMiner(min_support=0)
        with pytest.raises(ValueError):
            RuleMiner(min_confidence=0.0)

    def test_rule_str(self):
        rule = Rule(0, 100, 1, 200, support=5, confidence=1.0)
        assert "=>" in str(rule)


class TestRuleCompleter:
    @pytest.fixture
    def completer(self):
        rules = RuleMiner(min_support=3, min_confidence=0.9).mine(implication_store())
        return RuleCompleter(rules)

    def test_predicts_missing_value(self, completer):
        # Item 20 has only the body fact; predict the head.
        store = TripleStore([(20, 0, 100)])
        predictions = completer.predict(store, 20, 1)
        assert predictions
        assert predictions[0][0] == 200

    def test_no_prediction_without_matching_body(self, completer):
        store = TripleStore([(20, 2, 300)])
        assert completer.predict(store, 20, 1) == []

    def test_votes_accumulate_confidence(self):
        rules = [
            Rule(0, 100, 1, 200, support=3, confidence=0.9),
            Rule(2, 300, 1, 200, support=3, confidence=0.8),
            Rule(3, 400, 1, 201, support=3, confidence=0.95),
        ]
        completer = RuleCompleter(rules)
        store = TripleStore([(7, 0, 100), (7, 2, 300), (7, 3, 400)])
        predictions = completer.predict(store, 7, 1)
        # 200 gets 1.7 votes, 201 gets 0.95.
        assert predictions[0] == (200, pytest.approx(1.7))

    def test_complete_store_fills_only_missing(self, completer):
        store = TripleStore([(20, 0, 100), (21, 0, 101), (21, 1, 999)])
        completed = completer.complete_store(store, min_score=0.9)
        assert (20, 1, 200) in completed  # inferred
        assert (21, 1, 999) in completed  # existing kept
        assert len(completed.tails(21, 1)) == 1  # not overwritten

    def test_complete_store_respects_min_score(self, completer):
        store = TripleStore([(20, 0, 100)])
        nothing = completer.complete_store(store, min_score=5.0)
        assert len(nothing) == len(store)

    def test_num_rules(self, completer):
        assert completer.num_rules > 0


class TestRuleCompleterHardening:
    """Edge cases the explanation service leans on: empty rule sets,
    retired relations, and deterministic tie-breaks."""

    def test_empty_rule_set_is_valid(self):
        completer = RuleCompleter([])
        store = TripleStore([(0, 0, 100)])
        assert completer.num_rules == 0
        assert completer.rules == []
        assert completer.head_relations() == []
        assert completer.predict(store, 0, 1) == []
        assert completer.supporting_rules(store, 0, 1, 200) == []
        assert len(completer.complete_store(store)) == len(store)

    def test_duplicate_signatures_collapse_to_best(self):
        weak = Rule(0, 100, 1, 200, support=3, confidence=0.7)
        strong = Rule(0, 100, 1, 200, support=5, confidence=0.9)
        for ordering in ([weak, strong], [strong, weak]):
            completer = RuleCompleter(ordering)
            assert completer.num_rules == 1
            assert completer.rules[0].confidence == pytest.approx(0.9)
            assert completer.rules[0].support == 5

    def test_prune_drops_retired_relations(self):
        rules = [
            Rule(0, 100, 1, 200, support=3, confidence=0.9),
            Rule(2, 300, 1, 201, support=3, confidence=0.8),  # retired body
            Rule(0, 100, 3, 400, support=3, confidence=0.8),  # retired head
        ]
        pruned = RuleCompleter(rules).prune({0, 1})
        assert pruned.num_rules == 1
        assert pruned.rules[0].signature == (0, 100, 1, 200)
        # The original completer is untouched.
        assert RuleCompleter(rules).num_rules == 3

    def test_prune_to_nothing(self):
        rules = [Rule(0, 100, 1, 200, support=3, confidence=0.9)]
        pruned = RuleCompleter(rules).prune([])
        assert pruned.num_rules == 0
        assert pruned.predict(TripleStore([(0, 0, 100)]), 0, 1) == []

    def test_rule_order_invariant_under_shuffle(self):
        mined = RuleMiner(min_support=1, min_confidence=0.1).mine(
            implication_store()
        )
        reference = RuleCompleter(mined).rules
        rng = np.random.default_rng(3)
        for _ in range(5):
            shuffled = list(mined)
            rng.shuffle(shuffled)
            assert RuleCompleter(shuffled).rules == reference

    def test_confidence_ties_break_to_lowest_ids(self):
        tied = [
            Rule(5, 100, 1, 210, support=3, confidence=0.8),
            Rule(2, 101, 1, 205, support=3, confidence=0.8),
            Rule(2, 100, 1, 204, support=3, confidence=0.8),
        ]
        ordered = RuleCompleter(tied).rules
        signatures = [r.signature for r in ordered]
        assert signatures == sorted(signatures)

    def test_predict_vote_ties_break_to_lowest_value(self):
        rules = [
            Rule(0, 100, 1, 205, support=3, confidence=0.8),
            Rule(0, 100, 1, 204, support=3, confidence=0.8),
        ]
        store = TripleStore([(7, 0, 100)])
        predictions = RuleCompleter(rules).predict(store, 7, 1)
        assert [value for value, _ in predictions] == [204, 205]

    def test_complete_store_skips_retired_head_relations(self):
        # Relation 1 appears in the rules but no longer in the store:
        # completion must not resurrect it.
        rules = [Rule(0, 100, 1, 200, support=3, confidence=0.9)]
        store = TripleStore([(20, 0, 100)])
        completed = RuleCompleter(rules).complete_store(store, min_score=0.5)
        assert (20, 1, 200) not in completed
        assert len(completed) == len(store)

    def test_supporting_rules_cite_concrete_triples(self):
        rules = [
            Rule(0, 100, 1, 200, support=3, confidence=0.9),
            Rule(2, 300, 1, 200, support=3, confidence=0.8),
            Rule(3, 400, 1, 201, support=3, confidence=0.95),
        ]
        store = TripleStore([(7, 0, 100), (7, 2, 300), (7, 3, 400)])
        support = RuleCompleter(rules).supporting_rules(store, 7, 1, 200)
        assert [rule.signature for rule, _ in support] == [
            (0, 100, 1, 200),
            (2, 300, 1, 200),
        ]
        for rule, (head, relation, tail) in support:
            assert head == 7
            assert (relation, tail) == (rule.body_relation, rule.body_value)
            assert (head, relation, tail) in store
