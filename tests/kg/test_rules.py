"""Tests for attribute-implication rule mining and completion."""

import numpy as np
import pytest

from repro.kg import Rule, RuleCompleter, RuleMiner, TripleStore


def implication_store():
    """10 items: relation 0 value determines relation 1 value."""
    triples = []
    for item in range(10):
        group = item % 2
        triples.append((item, 0, 100 + group))  # body: two possible values
        triples.append((item, 1, 200 + group))  # head: determined by body
        triples.append((item, 2, 300 + item))  # noise: unique values
    return TripleStore(triples)


class TestRuleMiner:
    def test_finds_deterministic_implication(self):
        rules = RuleMiner(min_support=3, min_confidence=0.9).mine(implication_store())
        found = {
            (r.body_relation, r.body_value, r.head_relation, r.head_value)
            for r in rules
        }
        assert (0, 100, 1, 200) in found
        assert (0, 101, 1, 201) in found

    def test_confidence_and_support_values(self):
        rules = RuleMiner(min_support=2, min_confidence=0.5).mine(implication_store())
        rule = next(
            r for r in rules if (r.body_relation, r.body_value) == (0, 100)
            and r.head_relation == 1
        )
        assert rule.support == 5
        assert rule.confidence == pytest.approx(1.0)

    def test_no_same_relation_rules(self):
        rules = RuleMiner(min_support=1, min_confidence=0.1).mine(implication_store())
        assert all(r.body_relation != r.head_relation for r in rules)

    def test_min_support_filters(self):
        # Unique noise values can never reach support 2 as bodies.
        rules = RuleMiner(min_support=2, min_confidence=0.1).mine(implication_store())
        assert all(r.body_relation != 2 for r in rules)

    def test_low_confidence_filtered(self):
        # Make relation 0 -> relation 1 only 60% consistent.
        triples = []
        for item in range(10):
            triples.append((item, 0, 100))
            triples.append((item, 1, 200 if item < 6 else 201))
        store = TripleStore(triples)
        strict = RuleMiner(min_support=2, min_confidence=0.7).mine(store)
        assert not any(
            r.head_relation == 1 and r.head_value == 200 for r in strict
        )
        loose = RuleMiner(min_support=2, min_confidence=0.5).mine(store)
        assert any(r.head_value == 200 for r in loose)

    def test_sorted_by_confidence(self):
        rules = RuleMiner(min_support=1, min_confidence=0.1).mine(implication_store())
        confidences = [r.confidence for r in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            RuleMiner(min_support=0)
        with pytest.raises(ValueError):
            RuleMiner(min_confidence=0.0)

    def test_rule_str(self):
        rule = Rule(0, 100, 1, 200, support=5, confidence=1.0)
        assert "=>" in str(rule)


class TestRuleCompleter:
    @pytest.fixture
    def completer(self):
        rules = RuleMiner(min_support=3, min_confidence=0.9).mine(implication_store())
        return RuleCompleter(rules)

    def test_predicts_missing_value(self, completer):
        # Item 20 has only the body fact; predict the head.
        store = TripleStore([(20, 0, 100)])
        predictions = completer.predict(store, 20, 1)
        assert predictions
        assert predictions[0][0] == 200

    def test_no_prediction_without_matching_body(self, completer):
        store = TripleStore([(20, 2, 300)])
        assert completer.predict(store, 20, 1) == []

    def test_votes_accumulate_confidence(self):
        rules = [
            Rule(0, 100, 1, 200, support=3, confidence=0.9),
            Rule(2, 300, 1, 200, support=3, confidence=0.8),
            Rule(3, 400, 1, 201, support=3, confidence=0.95),
        ]
        completer = RuleCompleter(rules)
        store = TripleStore([(7, 0, 100), (7, 2, 300), (7, 3, 400)])
        predictions = completer.predict(store, 7, 1)
        # 200 gets 1.7 votes, 201 gets 0.95.
        assert predictions[0] == (200, pytest.approx(1.7))

    def test_complete_store_fills_only_missing(self, completer):
        store = TripleStore([(20, 0, 100), (21, 0, 101), (21, 1, 999)])
        completed = completer.complete_store(store, min_score=0.9)
        assert (20, 1, 200) in completed  # inferred
        assert (21, 1, 999) in completed  # existing kept
        assert len(completed.tails(21, 1)) == 1  # not overwritten

    def test_complete_store_respects_min_score(self, completer):
        store = TripleStore([(20, 0, 100)])
        nothing = completer.complete_store(store, min_score=5.0)
        assert len(nothing) == len(store)

    def test_num_rules(self, completer):
        assert completer.num_rules > 0
