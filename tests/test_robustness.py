"""Failure-injection and robustness tests across the stack.

The chaos classes at the bottom exercise the :mod:`repro.reliability`
stack end-to-end; their fault plans are seeded from ``REPRO_CHAOS_SEED``
(default 0, exported by ``tools/check.sh``) so the gate always replays
one documented fault sequence.
"""

import os

import numpy as np
import pytest

from repro.core import (
    PKGM,
    PKGMConfig,
    PKGMServer,
    PKGMTrainer,
    SnapshotError,
    TrainerConfig,
)
from repro.distributed import DistributedConfig, DistributedPKGMTrainer
from repro.kg import TripleStore
from repro.kg.io import load_kg_npz, load_triples_tsv
from repro.nn import no_grad
from repro.reliability import CrashEvent, FaultPlan, RetryPolicy

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


class TestTrainerGuards:
    def test_nan_loss_raises_floating_point_error(self):
        """A poisoned embedding table must fail loudly, not train on NaN."""
        store = TripleStore([(0, 0, 1), (1, 0, 2), (2, 0, 3)])
        model = PKGM(5, 1, PKGMConfig(dim=4), rng=np.random.default_rng(0))
        model.triple_module.entity_embeddings.weight.data[0, 0] = np.nan
        trainer = PKGMTrainer(model, TrainerConfig(epochs=1, batch_size=4))
        with pytest.raises(FloatingPointError):
            trainer.train(store)

    def test_training_on_single_triple_store(self):
        """Degenerate but valid input: one triple still trains."""
        store = TripleStore([(0, 0, 1)])
        model = PKGM(3, 1, PKGMConfig(dim=4), rng=np.random.default_rng(0))
        history = PKGMTrainer(model, TrainerConfig(epochs=2, batch_size=4)).train(store)
        assert len(history.epoch_losses) == 2


class TestCorruptArtifacts:
    def test_load_truncated_npz_raises(self, tmp_path):
        path = tmp_path / "broken.npz"
        path.write_bytes(b"PK\x03\x04 not a real archive")
        with pytest.raises(Exception):
            load_kg_npz(path)

    def test_load_server_with_missing_keys_raises(self, tmp_path):
        path = tmp_path / "bad_server.npz"
        np.savez_compressed(path, entity_table=np.zeros((3, 2)))
        with pytest.raises(SnapshotError, match="relation_table"):
            PKGMServer.load(path)

    def test_tsv_with_embedded_tabs_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("a\tr\tb\textra\n")
        with pytest.raises(ValueError):
            load_triples_tsv(path)


class TestNumericEdgeCases:
    def test_large_embedding_values_stay_finite(self):
        """Scores remain finite even with extreme embeddings."""
        model = PKGM(4, 2, PKGMConfig(dim=4), rng=np.random.default_rng(0))
        with no_grad():
            model.triple_module.entity_embeddings.weight.data *= 1e150
        score = model.score(np.array([[0, 0, 1]]))
        assert np.isfinite(score.data).all()

    def test_zero_dim_rejected_everywhere(self):
        with pytest.raises(ValueError):
            PKGMConfig(dim=0)

    def test_softmax_all_equal_large(self):
        from repro.nn import Tensor, functional as F

        out = F.softmax(Tensor(np.full((2, 4), 1e300))).data
        assert np.allclose(out, 0.25)

    def test_adam_survives_zero_gradients(self):
        from repro.nn import Adam, Parameter

        w = Parameter(np.ones(3))
        opt = Adam([w], lr=0.1)
        w.grad = np.zeros(3)
        opt.step()
        assert np.allclose(w.data, 1.0)


class TestEmptyAndBoundaryInputs:
    def test_empty_store_queries(self):
        store = TripleStore()
        assert store.tails(0, 0) == []
        assert store.relations_of(0) == set()
        assert len(store) == 0

    def test_single_class_vocabulary(self):
        from repro.text import WordTokenizer

        tok = WordTokenizer([])
        assert tok.vocab_size == 5  # specials only
        ids, mask, _ = tok.encode(["unknown"], max_length=4)
        assert ids[1] == tok.unk_id

    def test_serve_item_with_no_triples(self):
        """An item whose category has key relations but which itself has
        none still gets service vectors (pure embedding math)."""
        from repro.core import KeyRelationSelector

        store = TripleStore([(0, 0, 5), (0, 1, 6)])
        # Item 1 in the same category but with zero observed triples.
        selector = KeyRelationSelector(store, {0: 0, 1: 0}, k=2)
        model = PKGM(8, 2, PKGMConfig(dim=4), rng=np.random.default_rng(0))
        server = PKGMServer(model, selector)
        vectors = server.serve(1)
        assert vectors.triple_vectors.shape == (2, 4)
        assert np.isfinite(vectors.sequence()).all()


def _chaos_store(num_entities=40, num_relations=5, num_triples=300):
    rng = np.random.default_rng(CHAOS_SEED)
    triples = {
        (
            int(rng.integers(0, num_entities)),
            int(rng.integers(0, num_relations)),
            int(rng.integers(0, num_entities)),
        )
        for _ in range(num_triples)
    }
    return TripleStore(sorted(triples))


def _chaos_model(num_entities=40, num_relations=5):
    return PKGM(
        num_entities,
        num_relations,
        PKGMConfig(dim=8),
        rng=np.random.default_rng(CHAOS_SEED),
    )


def _chaos_config(epochs=8):
    return DistributedConfig(
        num_shards=4,
        num_workers=4,
        epochs=epochs,
        batch_size=32,
        learning_rate=0.02,
        seed=CHAOS_SEED,
    )


class TestChaosTraining:
    """End-to-end fault plans against the distributed trainer."""

    def test_push_drops_still_converge_within_tolerance(self):
        """≥10% dropped pushes must not change where training lands."""
        store = _chaos_store()
        clean = DistributedPKGMTrainer(_chaos_model(), _chaos_config()).train(store)
        plan = FaultPlan(seed=CHAOS_SEED, push_drop_prob=0.15)
        trainer = DistributedPKGMTrainer(
            _chaos_model(), _chaos_config(), faults=plan
        )
        faulted = trainer.train(store)
        assert trainer.fault_stats.pushes_dropped > 0
        assert faulted[-1] < clean[0]  # it still actually trained
        assert abs(faulted[-1] - clean[-1]) <= 0.10 * abs(clean[-1])

    def test_shard_crash_with_checkpoint_resume_matches_no_fault_run(
        self, tmp_path
    ):
        """Crash + restore replays the checkpointed epochs bit-exactly,
        so the final trajectory matches the fault-free run."""
        store = _chaos_store()
        clean = DistributedPKGMTrainer(_chaos_model(), _chaos_config()).train(store)
        plan = FaultPlan(
            seed=CHAOS_SEED,
            crashes=(CrashEvent(epoch=4, batch=3, shard=1),),
        )
        trainer = DistributedPKGMTrainer(
            _chaos_model(),
            _chaos_config(),
            faults=plan,
            checkpoint_dir=tmp_path,
            resume=False,
        )
        faulted = trainer.train(store)
        assert trainer.fault_stats.shard_crashes == 1
        assert trainer.recoveries == 1
        # Pure crash + recovery (no other faults): identical trajectory.
        assert np.allclose(faulted, clean)

    def test_shard_crash_without_checkpoint_degrades(self):
        """The same crash with no checkpoint keeps training on damaged
        state — reliably worse mid-run, which is what checkpoints buy."""
        store = _chaos_store()
        clean = DistributedPKGMTrainer(_chaos_model(), _chaos_config()).train(store)
        plan = FaultPlan(
            seed=CHAOS_SEED,
            crashes=(CrashEvent(epoch=4, batch=3, shard=1),),
        )
        trainer = DistributedPKGMTrainer(_chaos_model(), _chaos_config(), faults=plan)
        faulted = trainer.train(store)
        assert trainer.recoveries == 0
        # The crash epoch loses trained rows: loss jumps above clean.
        assert faulted[4] > clean[4]

    def test_documented_fault_plan_is_deterministic(self, tmp_path):
        """The acceptance-criteria plan: ≥10% drops + one crash with
        resume.  Two runs under the same seeds are identical."""
        store = _chaos_store()

        def run(directory):
            plan = FaultPlan(
                seed=CHAOS_SEED,
                push_drop_prob=0.10,
                rpc_error_prob=0.02,
                crashes=(CrashEvent(epoch=4, batch=2, shard=0),),
            )
            trainer = DistributedPKGMTrainer(
                _chaos_model(),
                _chaos_config(),
                faults=plan,
                retry=RetryPolicy(seed=CHAOS_SEED),
                checkpoint_dir=directory,
                resume=False,
            )
            return trainer.train(store), trainer

        losses_a, trainer_a = run(tmp_path / "a")
        losses_b, trainer_b = run(tmp_path / "b")
        assert np.allclose(losses_a, losses_b)
        assert trainer_a.fault_stats.pushes_dropped == (
            trainer_b.fault_stats.pushes_dropped
        )
        clean = DistributedPKGMTrainer(_chaos_model(), _chaos_config()).train(store)
        assert abs(losses_a[-1] - clean[-1]) <= 0.10 * abs(clean[-1])

    def test_killed_distributed_run_resumes_bit_exactly(self, tmp_path):
        """Train 4 epochs, 'die', resume to 8: same as training 8."""
        store = _chaos_store()
        full = DistributedPKGMTrainer(_chaos_model(), _chaos_config(8)).train(store)
        DistributedPKGMTrainer(
            _chaos_model(), _chaos_config(4), checkpoint_dir=tmp_path
        ).train(store)
        resumed = DistributedPKGMTrainer(
            _chaos_model(), _chaos_config(8), checkpoint_dir=tmp_path
        ).train(store)
        assert np.allclose(full, resumed)

    def test_killed_single_process_run_resumes_bit_exactly(self, tmp_path):
        """PKGMTrainer: kill after 3 of 6 epochs, resume, same result."""
        store = _chaos_store()

        def fresh():
            return _chaos_model()

        config6 = TrainerConfig(epochs=6, batch_size=32, seed=CHAOS_SEED)
        full_model = fresh()
        full = PKGMTrainer(full_model, config6).train(store)
        PKGMTrainer(
            fresh(),
            TrainerConfig(epochs=3, batch_size=32, seed=CHAOS_SEED),
            checkpoint_dir=tmp_path,
        ).train(store)
        resumed_model = fresh()
        resumed = PKGMTrainer(
            resumed_model, config6, checkpoint_dir=tmp_path
        ).train(store)
        assert np.allclose(full.epoch_losses, resumed.epoch_losses)
        assert np.allclose(
            full_model.triple_module.entity_embeddings.weight.data,
            resumed_model.triple_module.entity_embeddings.weight.data,
        )
