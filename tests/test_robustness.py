"""Failure-injection and robustness tests across the stack."""

import numpy as np
import pytest

from repro.core import (
    PKGM,
    PKGMConfig,
    PKGMServer,
    PKGMTrainer,
    TrainerConfig,
)
from repro.kg import TripleStore
from repro.kg.io import load_kg_npz, load_triples_tsv
from repro.nn import no_grad


class TestTrainerGuards:
    def test_nan_loss_raises_floating_point_error(self):
        """A poisoned embedding table must fail loudly, not train on NaN."""
        store = TripleStore([(0, 0, 1), (1, 0, 2), (2, 0, 3)])
        model = PKGM(5, 1, PKGMConfig(dim=4), rng=np.random.default_rng(0))
        model.triple_module.entity_embeddings.weight.data[0, 0] = np.nan
        trainer = PKGMTrainer(model, TrainerConfig(epochs=1, batch_size=4))
        with pytest.raises(FloatingPointError):
            trainer.train(store)

    def test_training_on_single_triple_store(self):
        """Degenerate but valid input: one triple still trains."""
        store = TripleStore([(0, 0, 1)])
        model = PKGM(3, 1, PKGMConfig(dim=4), rng=np.random.default_rng(0))
        history = PKGMTrainer(model, TrainerConfig(epochs=2, batch_size=4)).train(store)
        assert len(history.epoch_losses) == 2


class TestCorruptArtifacts:
    def test_load_truncated_npz_raises(self, tmp_path):
        path = tmp_path / "broken.npz"
        path.write_bytes(b"PK\x03\x04 not a real archive")
        with pytest.raises(Exception):
            load_kg_npz(path)

    def test_load_server_with_missing_keys_raises(self, tmp_path):
        path = tmp_path / "bad_server.npz"
        np.savez_compressed(path, entity_table=np.zeros((3, 2)))
        with pytest.raises(KeyError):
            PKGMServer.load(path)

    def test_tsv_with_embedded_tabs_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("a\tr\tb\textra\n")
        with pytest.raises(ValueError):
            load_triples_tsv(path)


class TestNumericEdgeCases:
    def test_large_embedding_values_stay_finite(self):
        """Scores remain finite even with extreme embeddings."""
        model = PKGM(4, 2, PKGMConfig(dim=4), rng=np.random.default_rng(0))
        with no_grad():
            model.triple_module.entity_embeddings.weight.data *= 1e150
        score = model.score(np.array([[0, 0, 1]]))
        assert np.isfinite(score.data).all()

    def test_zero_dim_rejected_everywhere(self):
        with pytest.raises(ValueError):
            PKGMConfig(dim=0)

    def test_softmax_all_equal_large(self):
        from repro.nn import Tensor, functional as F

        out = F.softmax(Tensor(np.full((2, 4), 1e300))).data
        assert np.allclose(out, 0.25)

    def test_adam_survives_zero_gradients(self):
        from repro.nn import Adam, Parameter

        w = Parameter(np.ones(3))
        opt = Adam([w], lr=0.1)
        w.grad = np.zeros(3)
        opt.step()
        assert np.allclose(w.data, 1.0)


class TestEmptyAndBoundaryInputs:
    def test_empty_store_queries(self):
        store = TripleStore()
        assert store.tails(0, 0) == []
        assert store.relations_of(0) == set()
        assert len(store) == 0

    def test_single_class_vocabulary(self):
        from repro.text import WordTokenizer

        tok = WordTokenizer([])
        assert tok.vocab_size == 5  # specials only
        ids, mask, _ = tok.encode(["unknown"], max_length=4)
        assert ids[1] == tok.unk_id

    def test_serve_item_with_no_triples(self):
        """An item whose category has key relations but which itself has
        none still gets service vectors (pure embedding math)."""
        from repro.core import KeyRelationSelector

        store = TripleStore([(0, 0, 5), (0, 1, 6)])
        # Item 1 in the same category but with zero observed triples.
        selector = KeyRelationSelector(store, {0: 0, 1: 0}, k=2)
        model = PKGM(8, 2, PKGMConfig(dim=4), rng=np.random.default_rng(0))
        server = PKGMServer(model, selector)
        vectors = server.serve(1)
        assert vectors.triple_vectors.shape == (2, 4)
        assert np.isfinite(vectors.sequence()).all()
