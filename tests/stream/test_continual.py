"""Continual trainer: growth contract, frozen baselines, replay buffer."""

import numpy as np
import pytest

from repro.stream import (
    CatalogDeltaStream,
    ContinualConfig,
    ContinualTrainer,
    DeltaStreamConfig,
    ReplayBuffer,
    StreamState,
)


def build_trainer(catalog, rng, **overrides):
    entity_table = rng.standard_normal((len(catalog.entities), 6)) * 0.3
    relation_table = rng.standard_normal((len(catalog.relations), 6)) * 0.3
    return ContinualTrainer(
        entity_table, relation_table, ContinualConfig(**overrides)
    )


class TestReplayBuffer:
    def test_reservoir_is_bounded_and_seeded(self):
        buffers = []
        for _ in range(2):
            buffer = ReplayBuffer(capacity=8, seed=3)
            for n in range(100):
                buffer.offer((n, 0, n + 1))
            buffers.append(buffer)
        assert len(buffers[0]) == 8
        assert buffers[0]._items == buffers[1]._items

    def test_sample_uses_caller_rng(self):
        buffer = ReplayBuffer(capacity=8, seed=0)
        for n in range(8):
            buffer.offer((n, 0, n))
        a = buffer.sample(4, np.random.default_rng(1))
        b = buffer.sample(4, np.random.default_rng(1))
        assert np.array_equal(a, b)
        assert a.shape == (4, 3)

    def test_empty_sample(self):
        buffer = ReplayBuffer(capacity=4, seed=0)
        assert buffer.sample(4, np.random.default_rng(0)).shape == (0, 3)


class TestAbsorb:
    def test_absorb_grows_table_and_trains(self, catalog):
        rng = np.random.default_rng(0)
        trainer = build_trainer(catalog, rng)
        state = StreamState.from_catalog(catalog)
        stream = CatalogDeltaStream(state, DeltaStreamConfig(seed=0))
        before_rows = trainer.num_entities
        batch = stream.generate(0)
        stats = trainer.absorb(batch, state)
        new_items = sum(1 for op in batch.ops if op.op == "new-item")
        assert trainer.num_entities == before_rows + new_items
        assert stats["new_entities"] == new_items
        assert trainer.steps_taken > 0

    def test_relation_table_is_frozen(self, catalog):
        rng = np.random.default_rng(0)
        trainer = build_trainer(catalog, rng)
        frozen = trainer.relation_table.copy()
        state = StreamState.from_catalog(catalog)
        stream = CatalogDeltaStream(state, DeltaStreamConfig(seed=0))
        trainer.absorb(stream.generate(0), state)
        assert np.array_equal(trainer.relation_table, frozen)

    def test_source_entity_table_is_not_mutated(self, catalog):
        rng = np.random.default_rng(0)
        entity_table = rng.standard_normal((len(catalog.entities), 6))
        original = entity_table.copy()
        relation_table = rng.standard_normal((len(catalog.relations), 6))
        trainer = ContinualTrainer(entity_table, relation_table, ContinualConfig())
        state = StreamState.from_catalog(catalog)
        stream = CatalogDeltaStream(state, DeltaStreamConfig(seed=0))
        trainer.absorb(stream.generate(0), state)
        assert np.array_equal(entity_table, original)

    def test_out_of_order_entity_is_rejected(self, catalog):
        from repro.stream import DeltaBatch, DeltaOp

        rng = np.random.default_rng(0)
        trainer = build_trainer(catalog, rng)
        state = StreamState.from_catalog(catalog)
        bogus = DeltaBatch(
            batch_index=0, base_seq=0, last_seq=0,
            ops=(
                DeltaOp(
                    seq=0, op="new-item",
                    head=trainer.num_entities + 3,
                    relation=-1, tail=-1, category_id=0,
                ),
            ),
        )
        with pytest.raises(ValueError, match="out of order"):
            trainer.absorb(bogus, state)

    def test_replayed_batches_train_identically(self, catalog):
        tables = []
        for _ in range(2):
            rng = np.random.default_rng(0)
            trainer = build_trainer(catalog, rng)
            state = StreamState.from_catalog(catalog)
            trainer.seed_buffer(sorted(state.triples()))
            stream = CatalogDeltaStream(state, DeltaStreamConfig(seed=0))
            for i in range(3):
                trainer.absorb(stream.generate(i), state)
            tables.append(trainer.entity_table)
        assert np.array_equal(tables[0], tables[1])

    def test_max_norm_respected_for_touched_rows(self, catalog):
        rng = np.random.default_rng(0)
        trainer = build_trainer(catalog, rng, learning_rate=0.5, max_norm=1.0)
        state = StreamState.from_catalog(catalog)
        trainer.seed_buffer(sorted(state.triples()))
        stream = CatalogDeltaStream(state, DeltaStreamConfig(seed=0))
        for i in range(3):
            trainer.absorb(stream.generate(i), state)
        norms = np.linalg.norm(trainer.entity_table, axis=1)
        # Rows the SGD touched were renormalized; untouched rows keep
        # their (already small) init norms.
        assert norms.max() <= max(1.0 + 1e-9, norms[: len(catalog.entities)].max())
