"""The ``repro stream`` subcommand surface."""

from repro.cli import main


class TestStreamCLI:
    def test_run_then_replay_identical_stdout(self, tmp_path, capsys):
        argv = [
            "stream", "run", "--dir", str(tmp_path / "run"),
            "--batches", "4", "--publish-every", "2",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        replay = [
            "stream", "replay", "--dir", str(tmp_path / "run"),
            "--batches", "4", "--publish-every", "2",
        ]
        assert main(replay) == 0
        assert capsys.readouterr().out == first
        assert "published: 2 versions" in first

    def test_chaos_reports_recovered(self, tmp_path, capsys):
        argv = [
            "stream", "chaos", "--dir", str(tmp_path / "drill"),
            "--batches", "5", "--publish-every", "2", "--kill-batch", "2",
            "--verbose",
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "stream drill: RECOVERED" in captured.out
        assert "0 mismatched" in captured.out
        assert "replayed" in captured.err

    def test_verbose_run_exercises_gateway_swap(self, tmp_path, capsys):
        argv = [
            "stream", "run", "--dir", str(tmp_path / "swap"),
            "--batches", "4", "--publish-every", "2", "--verbose",
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "swap drill: gateway serving" in captured.err
