"""Versioned snapshot publication, verification, and gateway swap."""

import numpy as np
import pytest

from repro.index.ivf import IVFFlatIndex
from repro.reliability import PKGMGateway, build_replicas
from repro.stream import (
    SnapshotSwapError,
    SnapshotVersioner,
    swap_gateway,
)


@pytest.fixture()
def tables(rng):
    entity_table = np.random.default_rng(0).standard_normal((30, 4))
    relation_table = np.random.default_rng(1).standard_normal((3, 4))
    transfer = np.random.default_rng(2).standard_normal((3, 4, 4))
    item_ids = np.arange(10, dtype=np.int64)
    key_relations = np.tile(np.arange(2, dtype=np.int64), (10, 1))
    return {
        "entity_table": entity_table,
        "relation_table": relation_table,
        "transfer": transfer,
        "item_ids": item_ids,
        "key_relations": key_relations,
    }


@pytest.fixture()
def index(tables):
    built = IVFFlatIndex(dim=4, nlist=2, nprobe=2, seed=0)
    built.build(
        tables["entity_table"][:10], np.arange(10, dtype=np.int64)
    )
    return built


def publish(versioner, tables, index, version=0, seq=41):
    return versioner.publish(
        version, tables, index, seq=seq, k=2, dim=4
    )


class TestPublish:
    def test_publish_promotes_current(self, tmp_path, tables, index):
        versioner = SnapshotVersioner(tmp_path)
        assert versioner.current_version() is None
        publish(versioner, tables, index)
        assert versioner.current_version() == 0
        assert versioner.verify(0)["seq"] == 41

    def test_republish_is_byte_identical(self, tmp_path, tables, index):
        paths = []
        for run in ("a", "b"):
            versioner = SnapshotVersioner(tmp_path / run)
            paths.append(publish(versioner, tables, index))
        files = sorted(p.relative_to(paths[0]) for p in paths[0].rglob("*") if p.is_file())
        assert files
        for name in files:
            assert (paths[0] / name).read_bytes() == (paths[1] / name).read_bytes()

    def test_verify_catches_store_tampering(self, tmp_path, tables, index):
        versioner = SnapshotVersioner(tmp_path)
        directory = publish(versioner, tables, index)
        manifest = directory / "store" / "manifest.json"
        manifest.write_bytes(manifest.read_bytes() + b" ")
        with pytest.raises(SnapshotSwapError, match="store manifest"):
            versioner.verify(0)

    def test_verify_catches_index_tampering(self, tmp_path, tables, index):
        versioner = SnapshotVersioner(tmp_path)
        directory = publish(versioner, tables, index)
        payload = directory / "index.npz"
        blob = bytearray(payload.read_bytes())
        blob[10] ^= 0xFF
        payload.write_bytes(bytes(blob))
        with pytest.raises(SnapshotSwapError, match="index payload"):
            versioner.verify(0)

    def test_missing_version_raises(self, tmp_path):
        versioner = SnapshotVersioner(tmp_path)
        with pytest.raises(SnapshotSwapError, match="no sealed manifest"):
            versioner.verify(7)


class TestLoadAndSwap:
    def test_load_server_serves_published_items(self, tmp_path, tables, index):
        versioner = SnapshotVersioner(tmp_path)
        publish(versioner, tables, index)
        server = versioner.load_server(0)
        assert sorted(server.known_items()) == list(range(10))
        vectors = server.serve(3)
        assert vectors.triple_vectors.shape == (2, 4)

    def test_load_index_roundtrip(self, tmp_path, tables, index):
        versioner = SnapshotVersioner(tmp_path)
        publish(versioner, tables, index)
        loaded = versioner.load_index(0)
        query = tables["entity_table"][:1]
        d0, i0 = index.search(query, 3)
        d1, i1 = loaded.search(query, 3)
        assert np.array_equal(i0, i1)
        assert np.allclose(d0, d1)

    def test_swap_gateway_promotes_new_version(self, tmp_path, tables, index):
        versioner = SnapshotVersioner(tmp_path)
        publish(versioner, tables, index, version=0)
        old_server = versioner.load_server(0)
        gateway = PKGMGateway(build_replicas(old_server, 2, seed=0), seed=0)
        bumped = dict(tables)
        bumped["entity_table"] = tables["entity_table"] + 1.0
        publish(versioner, bumped, index, version=1, seq=99)
        server = swap_gateway(gateway, versioner, 1)
        assert gateway.state == "serving"
        assert versioner.current_version() == 1
        # The swapped-in server really serves the bumped table.
        assert not np.allclose(
            server.serve(3).triple_vectors, old_server.serve(3).triple_vectors
        )
