"""Delta-aware IVF: inserts, tombstones, updates, seeded maintenance."""

import numpy as np
import pytest

from repro.index.ivf import IVFFlatIndex
from repro.stream import DeltaIndex, DeltaIndexConfig


def build_delta_index(rng, n=64, dim=4, nlist=4, **config):
    vectors = rng.standard_normal((n, dim))
    ids = np.arange(n, dtype=np.int64)
    base = IVFFlatIndex(dim=dim, nlist=nlist, nprobe=nlist, seed=0)
    base.build(vectors, ids)
    return DeltaIndex(base, DeltaIndexConfig(**config)), vectors


class TestMutations:
    def test_insert_then_search_finds_new_vector(self):
        rng = np.random.default_rng(0)
        index, vectors = build_delta_index(rng)
        new = rng.standard_normal(4)
        index.insert(new[None, :], np.asarray([100], dtype=np.int64))
        _, ids = index.search(new[None, :], k=1)
        assert ids[0, 0] == 100
        assert index.live_count == 65

    def test_insert_rejects_duplicate_id(self):
        rng = np.random.default_rng(0)
        index, _ = build_delta_index(rng)
        with pytest.raises(ValueError, match="already indexed"):
            index.insert(
                rng.standard_normal((1, 4)), np.asarray([5], dtype=np.int64)
            )

    def test_delete_hides_id_from_search(self):
        rng = np.random.default_rng(1)
        index, vectors = build_delta_index(rng)
        _, before = index.search(vectors[7][None, :], k=1)
        assert before[0, 0] == 7
        assert index.delete(np.asarray([7], dtype=np.int64)) == 1
        _, after = index.search(vectors[7][None, :], k=1)
        assert after[0, 0] != 7
        assert index.live_count == 63

    def test_delete_of_absent_id_is_zero(self):
        rng = np.random.default_rng(1)
        index, _ = build_delta_index(rng)
        assert index.delete(np.asarray([999], dtype=np.int64)) == 0

    def test_update_moves_vector(self):
        rng = np.random.default_rng(2)
        index, vectors = build_delta_index(rng)
        target = rng.standard_normal(4) * 5.0
        index.update(3, target)
        _, ids = index.search(target[None, :], k=1)
        assert ids[0, 0] == 3
        assert index.index.ntotal == 64  # moved, not duplicated

    def test_update_of_unknown_id_raises(self):
        rng = np.random.default_rng(2)
        index, _ = build_delta_index(rng)
        with pytest.raises(KeyError):
            index.update(999, np.zeros(4))


class TestMaintenance:
    def test_compaction_trigger_on_tombstone_ratio(self):
        rng = np.random.default_rng(3)
        index, _ = build_delta_index(rng, tombstone_ratio=0.25)
        index.delete(np.arange(20, dtype=np.int64))  # 20/64 > 0.25
        actions = index.maintenance()
        assert "compact" in actions
        assert not index.tombstones
        assert index.index.ntotal == 44

    def test_recluster_trigger_on_skew(self):
        rng = np.random.default_rng(4)
        index, _ = build_delta_index(
            rng, skew_ratio=2.0, min_vectors_for_recluster=32
        )
        # Pile far-away inserts into one centroid's cell to skew it.
        crowd = rng.standard_normal((200, 4)) * 0.05 + 40.0
        index.insert(crowd, np.arange(1000, 1200, dtype=np.int64))
        assert index.skew() >= 2.0
        actions = index.maintenance()
        assert "recluster" in actions
        assert index.recluster_count == 1
        assert index.skew() < 2.0

    def test_recluster_is_seeded_and_deterministic(self):
        results = []
        for _ in range(2):
            rng = np.random.default_rng(5)
            index, _ = build_delta_index(rng)
            index.insert(
                rng.standard_normal((40, 4)) + 10.0,
                np.arange(500, 540, dtype=np.int64),
            )
            index.recluster()
            vectors, ids = index._live_rows()
            results.append((vectors.tobytes(), ids.tobytes()))
        assert results[0] == results[1]

    def test_search_overfetch_survives_poisoned_probes(self):
        rng = np.random.default_rng(6)
        index, vectors = build_delta_index(rng, n=32, nlist=2)
        query = vectors[0][None, :]
        _, ranked = index.search(query, k=32)
        top = [int(v) for v in ranked[0] if v >= 0][:8]
        index.delete(np.asarray(top[:7], dtype=np.int64))
        _, ids = index.search(query, k=1)
        assert ids[0, 0] == top[7]
