"""Regression tests: seeding the stream pipeline from a trained
PKGMServer snapshot (``repro stream run --from-checkpoint``)."""

import dataclasses

import numpy as np
import pytest

from repro.core import KeyRelationSelector, PKGM, PKGMServer
from repro.stream import StreamPipeline, StreamRunConfig


@pytest.fixture(scope="module")
def trained_server(experiment, catalog):
    """A server whose tables are recognizably non-default.

    The pipeline's untrained path seeds its own PKGM from
    ``experiment.seed``; overwriting the tables with distinctive values
    makes 'served the checkpoint' distinguishable from 'fresh init'.
    """
    item_to_category = {
        item.entity_id: item.category_id for item in catalog.items
    }
    selector = KeyRelationSelector(
        catalog.store, item_to_category, k=experiment.key_relations
    )
    model = PKGM(
        len(catalog.entities),
        len(catalog.relations),
        experiment.pkgm,
        rng=np.random.default_rng(experiment.seed),
    )
    server = PKGMServer(model, selector)
    rng = np.random.default_rng(99)
    server._entity_table[:] = rng.normal(size=server._entity_table.shape)
    server._relation_table[:] = rng.normal(size=server._relation_table.shape)
    return server


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory, trained_server):
    path = tmp_path_factory.mktemp("ckpt") / "server.npz"
    trained_server.save(path)
    return path


class TestFromCheckpoint:
    def test_tables_seeded_from_snapshot(
        self, experiment, checkpoint, trained_server, tmp_path
    ):
        pipeline = StreamPipeline(
            experiment,
            tmp_path / "run",
            StreamRunConfig(batches=2, publish_every=2),
            from_checkpoint=checkpoint,
        )
        assert pipeline.dim == trained_server.dim
        assert np.array_equal(
            pipeline.trainer.entity_table, trained_server.entity_table
        )
        assert np.array_equal(
            pipeline.relation_table, trained_server.relation_table
        )
        assert np.array_equal(pipeline.transfer, trained_server.transfer_tensor)

    def test_untrained_path_differs(self, experiment, checkpoint, tmp_path):
        seeded = StreamPipeline(
            experiment,
            tmp_path / "a",
            StreamRunConfig(batches=2),
            from_checkpoint=checkpoint,
        )
        fresh = StreamPipeline(
            experiment, tmp_path / "b", StreamRunConfig(batches=2)
        )
        assert not np.array_equal(
            seeded.trainer.entity_table, fresh.trainer.entity_table
        )

    def test_published_snapshot_serves_trained_embeddings(
        self, experiment, checkpoint, trained_server, tmp_path
    ):
        """The satellite's acceptance: a snapshot published by a
        checkpoint-seeded pipeline serves the trained vectors."""
        pipeline = StreamPipeline(
            experiment,
            tmp_path / "run",
            StreamRunConfig(batches=2, publish_every=2),
            from_checkpoint=checkpoint,
        )
        pipeline.publish()
        version = pipeline.versioner.current_version()
        assert version is not None
        served = pipeline.versioner.load_server(version)
        for item in sorted(served.known_items())[:5]:
            reference = trained_server.serve(int(item))
            snapshot = served.serve(int(item))
            assert np.array_equal(
                reference.triple_vectors, snapshot.triple_vectors
            )
            assert np.array_equal(
                reference.relation_vectors, snapshot.relation_vectors
            )

    def test_shape_mismatch_rejected(
        self, experiment, catalog, checkpoint, tmp_path
    ):
        wrong_k = dataclasses.replace(
            experiment, key_relations=experiment.key_relations + 1
        )
        with pytest.raises(ValueError, match="key relations"):
            StreamPipeline(
                wrong_k,
                tmp_path / "run",
                StreamRunConfig(batches=2),
                from_checkpoint=checkpoint,
            )

    def test_entity_count_mismatch_rejected(self, experiment, tmp_path):
        from repro.data import generate_catalog

        small_config = dataclasses.replace(
            experiment,
            catalog=dataclasses.replace(
                experiment.catalog, products_per_category=6
            ),
        )
        small_catalog = generate_catalog(small_config.catalog)
        item_to_category = {
            item.entity_id: item.category_id for item in small_catalog.items
        }
        selector = KeyRelationSelector(
            small_catalog.store, item_to_category, k=experiment.key_relations
        )
        model = PKGM(
            len(small_catalog.entities),
            len(small_catalog.relations),
            experiment.pkgm,
            rng=np.random.default_rng(0),
        )
        path = tmp_path / "small.npz"
        PKGMServer(model, selector).save(path)
        with pytest.raises(ValueError, match="entities"):
            StreamPipeline(
                experiment,
                tmp_path / "run",
                StreamRunConfig(batches=2),
                from_checkpoint=path,
            )
