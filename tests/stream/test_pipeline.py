"""The ingest loop: run, resume, replay, publish, metrics."""

import json

import numpy as np
import pytest

from repro.stream import StreamPipeline, StreamReport, StreamRunConfig


def small_config(**overrides):
    defaults = dict(batches=6, publish_every=3)
    defaults.update(overrides)
    return StreamRunConfig(**defaults)


class TestRun:
    def test_run_produces_report_and_versions(self, experiment, tmp_path):
        pipeline = StreamPipeline(experiment, tmp_path, small_config())
        report = pipeline.run()
        assert isinstance(report, StreamReport)
        assert report.batches == 6
        assert report.replayed_batches == 0
        assert report.publishes == 2
        assert pipeline.versioner.current_version() == 1
        assert (tmp_path / "CURRENT").read_text().strip() == "v000001"

    def test_replay_is_byte_identical(self, experiment, tmp_path):
        first = StreamPipeline(experiment, tmp_path, small_config())
        first_report = first.run()
        second = StreamPipeline(experiment, tmp_path, small_config())
        second_report = second.run()
        assert second_report.replayed_batches == 6
        assert first_report.lines() == second_report.lines()
        assert first.metrics_dump() == second.metrics_dump()
        assert first.state.checksum() == second.state.checksum()

    def test_partial_run_resumes_from_log(self, experiment, tmp_path):
        partial = StreamPipeline(experiment, tmp_path, small_config())
        partial.run(4)
        resumed = StreamPipeline(experiment, tmp_path, small_config())
        report = resumed.run()
        clean = StreamPipeline(
            experiment, tmp_path / "clean", small_config()
        ).run()
        assert report.replayed_batches == 4
        assert report.lines() == clean.lines()

    def test_two_directories_same_seed_match(self, experiment, tmp_path):
        a = StreamPipeline(experiment, tmp_path / "a", small_config()).run()
        b = StreamPipeline(experiment, tmp_path / "b", small_config()).run()
        assert a.lines() == b.lines()

    def test_published_snapshot_serves_stream_born_items(
        self, experiment, tmp_path
    ):
        pipeline = StreamPipeline(experiment, tmp_path, small_config())
        pipeline.run()
        version = pipeline.versioner.current_version()
        server = pipeline.versioner.load_server(version)
        base = pipeline.state.base_entity_count
        stream_born = [
            item for item in server.known_items() if item >= base
        ]
        assert stream_born  # churn created servable new listings
        vectors = server.serve(stream_born[0])
        assert vectors.triple_vectors.shape == (
            experiment.key_relations,
            pipeline.dim,
        )

    def test_report_lines_hide_replay_provenance(self, experiment, tmp_path):
        pipeline = StreamPipeline(experiment, tmp_path, small_config())
        report = pipeline.run()
        assert all("replay" not in line for line in report.lines())


class TestMetrics:
    def test_metrics_dump_is_stream_scoped_json(self, experiment, tmp_path):
        pipeline = StreamPipeline(experiment, tmp_path, small_config())
        pipeline.run()
        dump = json.loads(pipeline.metrics_dump())
        assert dump
        assert all(key.startswith("stream.") for key in dump)
        assert dump["stream.batches"] == 6

    def test_staleness_gauges_reset_on_publish(self, experiment, tmp_path):
        pipeline = StreamPipeline(
            experiment, tmp_path, small_config(batches=3, publish_every=3)
        )
        pipeline.run()
        snapshot = pipeline.metrics.snapshot()
        assert snapshot["stream.staleness.ops_since_publish"] == 0
        assert snapshot["stream.staleness.batches_since_publish"] == 0

    def test_ops_counters_sum_to_report_ops(self, experiment, tmp_path):
        pipeline = StreamPipeline(experiment, tmp_path, small_config())
        report = pipeline.run()
        snapshot = pipeline.metrics.snapshot()
        counted = sum(
            value
            for key, value in snapshot.items()
            if key.startswith("stream.ops{")
        )
        assert counted == report.ops


class TestValidation:
    def test_bad_batches_rejected(self):
        with pytest.raises(ValueError):
            StreamRunConfig(batches=0)

    def test_bad_publish_every_rejected(self):
        with pytest.raises(ValueError):
            StreamRunConfig(publish_every=0)
