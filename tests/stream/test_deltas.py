"""Delta generation determinism, state contracts, and the log scan."""

import numpy as np
import pytest

from repro.stream import (
    OP_ADD,
    OP_DELETE,
    OP_KINDS,
    OP_NEW_ITEM,
    OP_RETIRE,
    OP_UPDATE,
    CatalogDeltaStream,
    DeltaLog,
    DeltaLogError,
    DeltaOp,
    DeltaStreamConfig,
    StreamState,
)


class TestGeneration:
    def test_same_seed_same_batches(self, catalog):
        runs = []
        for _ in range(2):
            state = StreamState.from_catalog(catalog)
            stream = CatalogDeltaStream(state, DeltaStreamConfig(seed=3))
            runs.append([stream.generate(i) for i in range(4)])
        assert runs[0] == runs[1]

    def test_different_seeds_diverge(self, catalog):
        checks = []
        for seed in (0, 1):
            state = StreamState.from_catalog(catalog)
            stream = CatalogDeltaStream(state, DeltaStreamConfig(seed=seed))
            for i in range(3):
                stream.generate(i)
            checks.append(state.checksum())
        assert checks[0] != checks[1]

    def test_seq_numbers_are_contiguous(self, stream):
        ops = [op for i in range(4) for op in stream.generate(i).ops]
        assert [op.seq for op in ops] == list(range(len(ops)))
        assert all(op.op in OP_KINDS for op in ops)

    def test_new_tails_come_from_base_pools(self, catalog, stream):
        base_entities = len(catalog.entities)
        for i in range(6):
            for op in stream.generate(i).ops:
                if op.op in (OP_ADD, OP_UPDATE):
                    assert op.tail < base_entities

    def test_min_live_floor_holds_under_heavy_deletes(self, catalog):
        state = StreamState.from_catalog(catalog)
        floor = state.live_count
        stream = CatalogDeltaStream(
            state,
            DeltaStreamConfig(
                seed=0,
                min_live_items=floor,
                add_probability=0.1,
                update_probability=0.1,
                delete_probability=0.8,
            ),
        )
        for i in range(8):
            stream.generate(i)
            assert state.live_count >= floor

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            DeltaStreamConfig(add_probability=0.9)


class TestStreamState:
    def test_apply_rejects_seq_gap(self, state):
        op = DeltaOp(
            seq=state.next_seq + 1, op=OP_NEW_ITEM,
            head=state.next_entity_id, relation=-1, tail=-1,
            category_id=0,
        )
        with pytest.raises(DeltaLogError, match="seq"):
            state.apply(op)

    def test_apply_rejects_out_of_order_entity(self, state):
        op = DeltaOp(
            seq=state.next_seq, op=OP_NEW_ITEM,
            head=state.next_entity_id + 5, relation=-1, tail=-1,
            category_id=0,
        )
        with pytest.raises(DeltaLogError, match="new-item"):
            state.apply(op)

    def test_delete_must_name_the_exact_triple(self, state):
        head = state.live_items()[0]
        relation = sorted(state.live[head])[0]
        wrong_tail = state.live[head][relation] + 1
        op = DeltaOp(
            seq=state.next_seq, op=OP_DELETE,
            head=head, relation=relation, tail=wrong_tail,
        )
        with pytest.raises(DeltaLogError, match="absent triple"):
            state.apply(op)

    def test_retire_requires_empty_attributes(self, state):
        head = state.live_items()[0]
        assert state.live[head]  # smoke items carry attributes
        op = DeltaOp(
            seq=state.next_seq, op=OP_RETIRE, head=head, relation=-1, tail=-1
        )
        with pytest.raises(DeltaLogError, match="live attributes"):
            state.apply(op)

    def test_checksum_tracks_state(self, catalog, stream):
        before = stream.state.checksum()
        stream.generate(0)
        assert stream.state.checksum() != before


class TestDeltaLog:
    def _filled_log(self, tmp_path, catalog, batches=3):
        state = StreamState.from_catalog(catalog)
        stream = CatalogDeltaStream(state, DeltaStreamConfig(seed=1))
        log = DeltaLog(tmp_path / "deltas")
        generated = [stream.generate(i) for i in range(batches)]
        for batch in generated:
            log.append(batch)
        return log, generated

    def test_roundtrip(self, tmp_path, catalog):
        log, generated = self._filled_log(tmp_path, catalog)
        assert log.scan() == generated

    def test_torn_tail_is_forgiven(self, tmp_path, catalog):
        log, generated = self._filled_log(tmp_path, catalog)
        path = log.segment_path(2)
        path.write_bytes(path.read_bytes()[:30])
        assert log.scan() == generated[:2]

    def test_mid_log_damage_fails_closed(self, tmp_path, catalog):
        log, _ = self._filled_log(tmp_path, catalog)
        path = log.segment_path(1)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(DeltaLogError, match="mid-log"):
            log.scan()

    def test_numbering_gap_fails_closed(self, tmp_path, catalog):
        log, _ = self._filled_log(tmp_path, catalog)
        log.segment_path(1).unlink()
        with pytest.raises(DeltaLogError, match="numbering gap"):
            log.scan()

    def test_replay_reproduces_generation(self, tmp_path, catalog):
        log, _ = self._filled_log(tmp_path, catalog, batches=4)
        original = CatalogDeltaStream(
            StreamState.from_catalog(catalog), DeltaStreamConfig(seed=1)
        )
        for i in range(5):
            original.generate(i)
        replayed_state = StreamState.from_catalog(catalog)
        for batch in log.scan():
            for op in batch.ops:
                replayed_state.apply(op)
        # Replaying the logged prefix then generating the next batch
        # must match a run that generated everything.
        resumed = CatalogDeltaStream(replayed_state, DeltaStreamConfig(seed=1))
        resumed.generate(4)
        assert replayed_state.checksum() == original.state.checksum()
