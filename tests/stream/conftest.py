"""Fixtures for the catalog-delta streaming suite."""

import numpy as np
import pytest

from repro.config import smoke_config
from repro.data import generate_catalog
from repro.stream import CatalogDeltaStream, DeltaStreamConfig, StreamState


@pytest.fixture(scope="module")
def experiment():
    return smoke_config()


@pytest.fixture(scope="module")
def catalog(experiment):
    return generate_catalog(experiment.catalog)


@pytest.fixture()
def state(catalog):
    return StreamState.from_catalog(catalog)


@pytest.fixture()
def stream(state):
    return CatalogDeltaStream(state, DeltaStreamConfig(seed=3))


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)
