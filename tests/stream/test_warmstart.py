"""Warm-start initializers: TransE geometry, fallbacks, determinism."""

import numpy as np

from repro.stream import (
    category_mean_init,
    relation_neighborhood_init,
    seeded_fallback_init,
    warm_start,
)


def tables(rng, entities=12, relations=4, dim=6):
    return (
        rng.standard_normal((entities, dim)) * 0.3,
        rng.standard_normal((relations, dim)) * 0.3,
    )


class TestInitializers:
    def test_relation_neighborhood_is_mean_of_t_minus_r(self):
        entity_table, relation_table = tables(np.random.default_rng(0))
        attrs = {0: 3, 2: 7}
        vector = relation_neighborhood_init(attrs, entity_table, relation_table)
        expected = (
            (entity_table[3] - relation_table[0])
            + (entity_table[7] - relation_table[2])
        ) / 2.0
        assert np.allclose(vector, expected)

    def test_relation_neighborhood_empty_is_none(self):
        entity_table, relation_table = tables(np.random.default_rng(0))
        assert relation_neighborhood_init({}, entity_table, relation_table) is None

    def test_category_mean(self):
        entity_table, _ = tables(np.random.default_rng(1))
        vector = category_mean_init([2, 5, 9], entity_table)
        assert np.allclose(vector, entity_table[[2, 5, 9]].mean(axis=0))

    def test_category_mean_filters_out_of_range(self):
        entity_table, _ = tables(np.random.default_rng(1))
        assert category_mean_init([-1, 999], entity_table) is None

    def test_seeded_fallback_is_deterministic_per_entity(self):
        a = seeded_fallback_init(7, dim=6, seed=0)
        b = seeded_fallback_init(7, dim=6, seed=0)
        c = seeded_fallback_init(8, dim=6, seed=0)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)


class TestWarmStart:
    def test_fallback_chain(self):
        entity_table, relation_table = tables(np.random.default_rng(2))
        _, method = warm_start(
            20, {1: 4}, [2, 3], entity_table, relation_table, seed=0
        )
        assert method == "relation-neighborhood"
        _, method = warm_start(
            20, {}, [2, 3], entity_table, relation_table, seed=0
        )
        assert method == "category-mean"
        _, method = warm_start(
            20, {}, [], entity_table, relation_table, seed=0
        )
        assert method == "seeded-fallback"

    def test_projects_to_max_norm_ball(self):
        entity_table, relation_table = tables(np.random.default_rng(3))
        entity_table *= 100.0  # force a huge neighborhood mean
        vector, _ = warm_start(
            20, {1: 4, 2: 5}, [], entity_table, relation_table,
            seed=0, max_norm=1.0,
        )
        assert np.linalg.norm(vector) <= 1.0 + 1e-9
