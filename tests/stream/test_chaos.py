"""The crash-mid-ingest drill must recover to byte-identical state."""

import pytest

from repro.stream import (
    StreamChaosConfig,
    StreamChaosReport,
    StreamRunConfig,
    run_stream_chaos,
)


def drill_config():
    return StreamRunConfig(batches=6, publish_every=3)


class TestStreamChaos:
    def test_drill_recovers_byte_identical(self, experiment, tmp_path):
        report = run_stream_chaos(
            experiment, tmp_path, drill_config(), StreamChaosConfig(kill_batch=2)
        )
        assert isinstance(report, StreamChaosReport)
        assert report.ok
        assert report.mismatched == ()
        assert report.metrics_match
        assert report.transcript_match
        assert report.recovered.replayed_batches > 0
        assert report.files_compared > 10

    def test_transcript_is_deterministic_across_drills(
        self, experiment, tmp_path
    ):
        first = run_stream_chaos(
            experiment, tmp_path / "a", drill_config(),
            StreamChaosConfig(kill_batch=2),
        )
        second = run_stream_chaos(
            experiment, tmp_path / "b", drill_config(),
            StreamChaosConfig(kill_batch=2),
        )
        assert first.lines() == second.lines()
        assert first.lines()[-1] == "stream drill: RECOVERED"

    def test_kill_point_is_clamped_into_range(self, experiment, tmp_path):
        report = run_stream_chaos(
            experiment, tmp_path, drill_config(),
            StreamChaosConfig(kill_batch=99),
        )
        assert report.ok

    def test_too_few_batches_rejected(self, experiment, tmp_path):
        with pytest.raises(ValueError, match="at least 3"):
            run_stream_chaos(
                experiment, tmp_path, StreamRunConfig(batches=2)
            )
