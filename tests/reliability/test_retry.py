"""Tests for the retry policy engine and the circuit breaker."""

import pytest

from repro.reliability import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceededError,
    Retrier,
    RetryExhaustedError,
    RetryPolicy,
    RPCError,
    StepClock,
)


class Flaky:
    """Callable failing the first ``failures`` times, then succeeding."""

    def __init__(self, failures, exc=RPCError):
        self.failures = failures
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc("boom")
        return "ok"


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=1.0, max_delay=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(budget=-1)


class TestRetrier:
    def test_succeeds_after_transient_failures(self):
        retrier = Retrier(RetryPolicy(max_attempts=4))
        flaky = Flaky(2)
        assert retrier.call(flaky) == "ok"
        assert flaky.calls == 3
        assert retrier.stats.retries == 2
        assert retrier.stats.failures == 0

    def test_exhaustion_raises_with_cause(self):
        retrier = Retrier(RetryPolicy(max_attempts=3))
        with pytest.raises(RetryExhaustedError) as info:
            retrier.call(Flaky(10))
        assert isinstance(info.value.__cause__, RPCError)
        assert retrier.stats.failures == 1

    def test_non_retryable_propagates_immediately(self):
        retrier = Retrier(RetryPolicy(max_attempts=5))
        flaky = Flaky(3, exc=KeyError)
        with pytest.raises(KeyError):
            retrier.call(flaky)
        assert flaky.calls == 1
        assert retrier.stats.retries == 0

    def test_backoff_grows_and_is_capped(self):
        policy = RetryPolicy(
            base_delay=0.1, max_delay=0.4, multiplier=2.0, jitter=0.0
        )
        retrier = Retrier(policy)
        delays = [retrier.delay(a) for a in range(4)]
        assert delays == [0.1, 0.2, 0.4, 0.4]

    def test_jitter_is_seeded_and_deterministic(self):
        a = Retrier(RetryPolicy(jitter=0.5, seed=7))
        b = Retrier(RetryPolicy(jitter=0.5, seed=7))
        assert [a.delay(i) for i in range(5)] == [b.delay(i) for i in range(5)]
        c = Retrier(RetryPolicy(jitter=0.5, seed=8))
        assert [a.delay(i) for i in range(5)] != [c.delay(i) for i in range(5)]

    def test_budget_bounds_total_retries(self):
        retrier = Retrier(RetryPolicy(max_attempts=5, budget=3))
        with pytest.raises(RetryExhaustedError):
            retrier.call(Flaky(100))  # uses budget 3, then gives up
        assert retrier.stats.retries == 3
        with pytest.raises(RetryExhaustedError):
            retrier.call(Flaky(100))  # budget empty: no retry at all
        assert retrier.stats.retries == 3
        assert retrier.stats.budget_denials >= 1

    def test_virtual_clock_advances_with_backoff(self):
        clock = StepClock()
        retrier = Retrier(RetryPolicy(max_attempts=3, jitter=0.0), clock=clock)
        retrier.call(Flaky(2))
        assert clock.now() == pytest.approx(retrier.stats.virtual_sleep)
        assert clock.now() > 0


class TestCircuitBreaker:
    def make(self, **kw):
        clock = StepClock()
        defaults = dict(failure_threshold=3, recovery_time=10.0, clock=clock)
        defaults.update(kw)
        return CircuitBreaker(**defaults), clock

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self.make()
        for _ in range(3):
            with pytest.raises(RPCError):
                breaker.call(Flaky(100))
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "never reached")
        assert breaker.short_circuits == 1

    def test_success_resets_failure_streak(self):
        breaker, _ = self.make()
        for _ in range(2):
            with pytest.raises(RPCError):
                breaker.call(Flaky(100))
        breaker.call(lambda: "ok")
        assert breaker.consecutive_failures == 0
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_closes_on_success(self):
        breaker, clock = self.make()
        for _ in range(3):
            with pytest.raises(RPCError):
                breaker.call(Flaky(100))
        clock.advance(10.0)
        assert breaker.call(lambda: "recovered") == "recovered"
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_failure_reopens(self):
        breaker, clock = self.make()
        for _ in range(3):
            with pytest.raises(RPCError):
                breaker.call(Flaky(100))
        clock.advance(10.0)
        with pytest.raises(RPCError):
            breaker.call(Flaky(100))
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.times_opened == 2

    def test_domain_errors_do_not_trip_the_breaker(self):
        breaker, _ = self.make(failure_threshold=1)
        for _ in range(5):
            with pytest.raises(KeyError):
                breaker.call(Flaky(100, exc=KeyError))
        assert breaker.state == CircuitBreaker.CLOSED

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(recovery_time=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_probes=0)


class TestStepClock:
    def test_monotonic(self):
        clock = StepClock()
        clock.advance(1.5)
        assert clock.now() == 1.5
        with pytest.raises(ValueError):
            clock.advance(-1.0)


class TestCallWithDeadline:
    def make(self, budget, **policy):
        clock = StepClock()
        retrier = Retrier(RetryPolicy(jitter=0.0, **policy), clock=clock)
        return retrier, Deadline(clock, budget), clock

    def test_expired_on_entry_never_calls_fn(self):
        retrier, deadline, clock = self.make(budget=0.5)
        clock.advance(1.0)
        flaky = Flaky(0)
        with pytest.raises(DeadlineExceededError):
            retrier.call_with_deadline(deadline, flaky)
        assert flaky.calls == 0
        assert retrier.stats.deadline_denials == 1

    def test_backoff_overrunning_budget_refused(self):
        # base_delay=0.05: the first backoff pause would blow a 0.01s
        # budget, so the retrier gives up instead of sleeping past it.
        retrier, deadline, _ = self.make(budget=0.01, base_delay=0.05)
        flaky = Flaky(10)
        with pytest.raises(DeadlineExceededError) as excinfo:
            retrier.call_with_deadline(deadline, flaky)
        assert flaky.calls == 1  # tried once, refused to backoff
        assert isinstance(excinfo.value.__cause__, RPCError)
        assert retrier.stats.deadline_denials == 1
        assert retrier.stats.virtual_sleep == 0.0

    def test_generous_deadline_retries_normally(self):
        retrier, deadline, _ = self.make(budget=100.0)
        flaky = Flaky(2)
        assert retrier.call_with_deadline(deadline, flaky) == "ok"
        assert retrier.stats.retries == 2
        assert retrier.stats.deadline_denials == 0

    def test_none_deadline_is_plain_call(self):
        retrier, _, _ = self.make(budget=1.0)
        assert retrier.call_with_deadline(None, Flaky(1)) == "ok"
        assert retrier.stats.deadline_denials == 0

    def test_denial_counted_once_per_call(self):
        retrier, deadline, clock = self.make(budget=0.5)
        clock.advance(1.0)
        for _ in range(3):
            with pytest.raises(DeadlineExceededError):
                retrier.call_with_deadline(deadline, Flaky(0))
        assert retrier.stats.deadline_denials == 3
