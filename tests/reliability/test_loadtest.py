"""Tests for the seeded open-loop load generator."""

import pytest

from repro.reliability import (
    AdmissionConfig,
    GatewayConfig,
    LoadTestConfig,
    PKGMGateway,
    PROFILES,
    StepClock,
    build_replicas,
    run_loadtest,
)


def make_gateway(server, seed=0, rate=60.0):
    return PKGMGateway(
        build_replicas(server, 2, seed=seed),
        GatewayConfig(
            deadline_budget=0.25,
            hedge_after=0.05,
            admission=AdmissionConfig(rate=rate, burst=16.0, queue_capacity=16),
        ),
        clock=StepClock(),
        seed=seed,
    )


class TestProfiles:
    def test_shapes(self):
        assert PROFILES["sustained"](0.1) == 1.0
        assert PROFILES["ramp"](0.0) == pytest.approx(0.2)
        assert PROFILES["ramp"](1.0) == pytest.approx(2.0)
        assert PROFILES["spike"](0.5) == 8.0
        assert PROFILES["spike"](0.1) == 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LoadTestConfig(profile="tsunami")
        with pytest.raises(ValueError):
            LoadTestConfig(requests=0)
        with pytest.raises(ValueError):
            LoadTestConfig(base_rate=0.0)
        with pytest.raises(ValueError):
            LoadTestConfig(unknown_prob=1.5)
        with pytest.raises(ValueError):
            LoadTestConfig(drain_at=1.0)


class TestRunLoadtest:
    def test_spike_sheds_without_raising(self, server):
        config = LoadTestConfig(
            profile="spike", requests=400, base_rate=120.0, seed=3
        )
        report = run_loadtest(make_gateway(server, seed=3), [0, 1, 2], config)
        assert report.completed == 400  # exactly-once, no exceptions
        assert report.shed > 0  # the spike must be absorbed by shedding
        assert report.ok > 0
        assert 0.0 < report.goodput < 1.0
        assert report.shed_rate == pytest.approx(report.shed / 400)

    def test_accepted_p99_within_deadline(self, server):
        config = LoadTestConfig(profile="spike", requests=400, base_rate=120.0)
        report = run_loadtest(make_gateway(server), [0, 1, 2], config)
        assert report.p50_latency <= report.p99_latency
        assert report.p99_latency <= 0.25  # the configured deadline budget

    def test_mid_run_drain_and_swap(self, server):
        config = LoadTestConfig(
            profile="sustained", requests=200, base_rate=80.0, drain_at=0.5
        )
        report = run_loadtest(make_gateway(server), [0, 1, 2], config)
        assert report.drains == 2  # mid-run + final
        assert report.swaps == 1
        assert report.completed == 200

    def test_no_drain_when_disabled(self, server):
        config = LoadTestConfig(
            profile="sustained", requests=100, base_rate=80.0, drain_at=None
        )
        report = run_loadtest(make_gateway(server), [0, 1, 2], config)
        assert report.drains == 1  # only the final flush
        assert report.swaps == 0

    def test_byte_identical_reports_across_runs(self, server):
        config = LoadTestConfig(profile="spike", requests=300, base_rate=100.0)
        first = run_loadtest(make_gateway(server, seed=11), [0, 1, 2], config)
        second = run_loadtest(make_gateway(server, seed=11), [0, 1, 2], config)
        assert first.as_rows() == second.as_rows()
        assert first == second

    def test_different_seed_changes_traffic(self, server):
        base = LoadTestConfig(profile="spike", requests=300, base_rate=100.0, seed=0)
        other = LoadTestConfig(profile="spike", requests=300, base_rate=100.0, seed=1)
        first = run_loadtest(make_gateway(server, seed=0), [0, 1, 2], base)
        second = run_loadtest(make_gateway(server, seed=0), [0, 1, 2], other)
        assert first.as_rows() != second.as_rows()

    def test_ramp_profile_runs(self, server):
        config = LoadTestConfig(profile="ramp", requests=200, base_rate=100.0)
        report = run_loadtest(make_gateway(server), [0, 1, 2], config)
        assert report.completed == 200
        assert report.duration > 0

    def test_empty_catalog_rejected(self, server):
        with pytest.raises(ValueError):
            run_loadtest(make_gateway(server), [], LoadTestConfig(requests=10))

    def test_report_rates_defined_when_empty(self):
        from repro.reliability import LoadTestReport

        report = LoadTestReport(
            profile="spike",
            requests=0,
            completed=0,
            ok=0,
            shed=0,
            degraded_backend=0,
            deadline_misses=0,
            hedges_sent=0,
            hedge_wins=0,
            drains=0,
            swaps=0,
            p50_latency=0.0,
            p99_latency=0.0,
            duration=0.0,
        )
        assert report.goodput == 0.0
        assert report.shed_rate == 0.0
        assert report.hedge_win_rate == 0.0
