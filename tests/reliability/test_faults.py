"""Tests for the seeded fault-injection harness."""

import numpy as np
import pytest

from repro.distributed import ParameterServer
from repro.reliability import (
    CrashEvent,
    FaultPlan,
    FaultyParameterServer,
    FlakyServingBackend,
    RPCError,
)


def make_server():
    server = ParameterServer(num_shards=2, learning_rate=0.05)
    return server


def make_faulty(plan):
    faulty = FaultyParameterServer(make_server(), plan)
    rng = np.random.default_rng(0)
    faulty.register("entities", rng.normal(size=(8, 4)))
    return faulty


class TestFaultPlan:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(push_drop_prob=1.5)
        with pytest.raises(ValueError):
            FaultPlan(rpc_error_prob=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(stale_refresh_every=0)
        with pytest.raises(ValueError):
            CrashEvent(epoch=-1, batch=0, shard=0)

    def test_describe_is_one_line(self):
        text = FaultPlan(push_drop_prob=0.25, crashes=(CrashEvent(0, 0, 1),)).describe()
        assert "drop=25%" in text and "crashes=1" in text and "\n" not in text


class TestFaultDeterminism:
    def run_sequence(self, plan):
        faulty = make_faulty(plan)
        outcomes = []
        for i in range(200):
            rows = np.array([i % 8])
            try:
                faulty.push("entities", rows, np.ones((1, 4)))
                outcomes.append("ok")
            except RPCError:
                outcomes.append("err")
        return outcomes, faulty.stats

    def test_same_seed_same_faults(self):
        plan = FaultPlan(seed=5, push_drop_prob=0.2, rpc_error_prob=0.1)
        out_a, stats_a = self.run_sequence(plan)
        out_b, stats_b = self.run_sequence(plan)
        assert out_a == out_b
        assert stats_a.pushes_dropped == stats_b.pushes_dropped
        assert stats_a.rpc_errors == stats_b.rpc_errors

    def test_different_seed_different_faults(self):
        # Drops are silent, so compare the applied updates instead.
        faulty_a = make_faulty(FaultPlan(seed=5, push_drop_prob=0.2))
        faulty_b = make_faulty(FaultPlan(seed=6, push_drop_prob=0.2))
        for i in range(100):
            rows = np.array([i % 8])
            faulty_a.push("entities", rows, np.ones((1, 4)))
            faulty_b.push("entities", rows, np.ones((1, 4)))
        assert faulty_a.stats.pushes_dropped != faulty_b.stats.pushes_dropped or (
            not np.allclose(
                faulty_a.snapshot("entities"), faulty_b.snapshot("entities")
            )
        )


class TestFaultEffects:
    def test_dropped_push_leaves_table_unchanged(self):
        faulty = make_faulty(FaultPlan(push_drop_prob=1.0))
        before = faulty.snapshot("entities")
        faulty.push("entities", np.array([1]), np.ones((1, 4)))
        assert np.allclose(before, faulty.snapshot("entities"))
        assert faulty.stats.pushes_dropped == 1

    def test_duplicated_push_applies_twice(self):
        reference = make_faulty(FaultPlan())
        doubled = make_faulty(FaultPlan(push_duplicate_prob=1.0))
        rows, grads = np.array([1]), np.ones((1, 4))
        reference.push("entities", rows, grads)
        reference.push("entities", rows, grads)
        doubled.push("entities", rows, grads)
        assert np.allclose(
            reference.snapshot("entities"), doubled.snapshot("entities")
        )
        assert doubled.stats.pushes_duplicated == 1

    def test_rpc_error_raises_and_counts(self):
        faulty = make_faulty(FaultPlan(rpc_error_prob=1.0))
        with pytest.raises(RPCError):
            faulty.pull("entities", np.array([0]))
        assert faulty.stats.rpc_errors == 1

    def test_delayed_pull_serves_stale_rows(self):
        plan = FaultPlan(pull_delay_prob=1.0, stale_refresh_every=1000)
        faulty = make_faulty(plan)
        initial = faulty.snapshot("entities")[1]
        # Mutate through real pushes (the stale replica is not refreshed).
        for _ in range(5):
            # pull_delay only affects pulls; push through the inner server.
            faulty.server.push("entities", np.array([1]), np.ones((1, 4)))
        stale = faulty.pull("entities", np.array([1]))[0]
        live = faulty.server.pull("entities", np.array([1]))[0]
        assert np.allclose(stale, initial)
        assert not np.allclose(stale, live)
        assert faulty.stats.pulls_delayed == 1

    def test_crash_resets_shard_rows_only(self):
        faulty = make_faulty(FaultPlan())
        initial = faulty.snapshot("entities")
        for row in range(8):
            faulty.push("entities", np.array([row]), np.ones((1, 4)))
        trained = faulty.snapshot("entities")
        faulty.crash_shard(1)
        after = faulty.snapshot("entities")
        odd = np.arange(8) % 2 == 1
        assert np.allclose(after[odd], initial[odd])  # crashed shard reverts
        assert np.allclose(after[~odd], trained[~odd])  # others keep training
        state = faulty.state("entities")
        assert np.all(state["m"][odd] == 0.0)
        assert np.all(state["step"][odd] == 0)
        assert np.any(state["step"][~odd] > 0)

    def test_crash_shard_out_of_range(self):
        faulty = make_faulty(FaultPlan())
        with pytest.raises(ValueError):
            faulty.crash_shard(7)


class TestFlakyServingBackend:
    def test_forced_failures_then_recovery(self, server):
        flaky = FlakyServingBackend(server, seed=0)
        flaky.fail_next = 2
        with pytest.raises(RPCError):
            flaky.serve(server.known_items()[0])
        with pytest.raises(RPCError):
            flaky.serve(server.known_items()[0])
        vectors = flaky.serve(server.known_items()[0])
        assert vectors.triple_vectors.shape == (server.k, server.dim)
        assert flaky.errors == 2

    def test_error_prob_validation(self, server):
        with pytest.raises(ValueError):
            FlakyServingBackend(server, error_prob=2.0)

    def test_passthrough_surface(self, server):
        flaky = FlakyServingBackend(server)
        assert flaky.k == server.k
        assert flaky.dim == server.dim
        assert flaky.num_entities == server.num_entities
        assert flaky.known_items() == server.known_items()
