"""Tests for the overload-safe gateway: deadlines, hedging, drain/swap."""

import pytest

from repro.reliability import (
    AdmissionConfig,
    GatewayConfig,
    LatencyModel,
    PKGMGateway,
    ResilientPKGMServer,
    StepClock,
    TimedBackend,
    build_replicas,
)
from repro.reliability.gateway import DRAINING, QUIESCED, SERVING


class ScriptedLatency:
    """Latency 'model' that replays a fixed list of draws (cycling)."""

    def __init__(self, values):
        self._values = [float(v) for v in values]
        self._index = 0

    def sample(self):
        value = self._values[self._index % len(self._values)]
        self._index += 1
        return value


def make_gateway(server, latencies, config=None, clock=None):
    """Gateway over scripted-latency replicas (one list per replica)."""
    clock = clock if clock is not None else StepClock()
    replicas = [
        TimedBackend(server, latency=ScriptedLatency(values), name=f"r{i}")
        for i, values in enumerate(latencies)
    ]
    return PKGMGateway(replicas, config=config, clock=clock)


class TestDeadlinePaths:
    def test_slow_backend_degrades_never_raises(self, server):
        gateway = make_gateway(
            server,
            [[10.0]],
            GatewayConfig(deadline_budget=0.25, hedge_after=None),
        )
        assert gateway.submit(0) is None
        responses = gateway.drain()
        assert len(responses) == 1
        response = responses[0]
        assert not response.ok
        assert response.vectors.degraded
        assert response.reason == "deadline"
        assert response.completed_at == pytest.approx(0.25)
        assert gateway.stats.deadline_backend_misses == 1
        assert gateway.stats.completed_degraded == 1
        assert gateway.stats.completed_ok == 0

    def test_queue_wait_past_deadline_degrades(self, server):
        config = GatewayConfig(
            deadline_budget=0.25,
            hedge_after=None,
            admission=AdmissionConfig(initial_limit=1, queue_capacity=4),
        )
        gateway = make_gateway(server, [[10.0, 10.0]], config)
        assert gateway.submit(0) is None  # occupies the only slot
        assert gateway.submit(1) is None  # queued behind it
        responses = gateway.drain()
        assert len(responses) == 2
        assert all(r.reason == "deadline" for r in responses)
        assert gateway.stats.deadline_backend_misses == 1
        assert gateway.stats.deadline_queue_misses == 1

    def test_deadline_feeds_aimd_overload_signal(self, server):
        gateway = make_gateway(
            server,
            [[10.0]],
            GatewayConfig(deadline_budget=0.25, hedge_after=None),
        )
        before = gateway.admission.limiter.limit
        gateway.submit(0)
        gateway.drain()
        assert gateway.admission.limiter.backoffs == 1
        assert gateway.admission.limiter.limit <= before

    def test_deadline_propagates_into_resilient_backend(self, server):
        # The resilient facade ticks its own clock 1.0 per request; a
        # propagated budget below that expires inside the facade, which
        # answers with its flagged fallback and counts it exactly once.
        resilient = ResilientPKGMServer(server, clock=StepClock())
        backend = TimedBackend(resilient, latency=ScriptedLatency([0.01]))
        vectors, latency, reason = backend.serve_timed(0, budget=0.5)
        assert reason is None
        assert vectors.degraded
        assert resilient.stats.deadline_exceeded == 1
        vectors, _, _ = backend.serve_timed(0, budget=2.5)
        assert not vectors.degraded
        assert resilient.stats.deadline_exceeded == 1  # unchanged


class TestHedging:
    def hedged_gateway(self, server, primary, secondary):
        return make_gateway(
            server,
            [primary, secondary],
            GatewayConfig(deadline_budget=0.25, hedge_after=0.05),
        )

    def test_hedge_wins_over_straggler(self, server):
        gateway = self.hedged_gateway(server, [0.2], [0.01])
        gateway.submit(0)
        responses = gateway.drain()
        assert len(responses) == 1
        response = responses[0]
        assert response.ok
        assert response.hedged and response.hedge_won
        assert response.latency == pytest.approx(0.06)  # fire_at + hedge
        assert gateway.stats.hedges_sent == 1
        assert gateway.stats.hedge_wins == 1
        assert gateway.stats.hedge_cancelled == 1

    def test_primary_wins_hedge_cancelled(self, server):
        gateway = self.hedged_gateway(server, [0.06], [0.2])
        gateway.submit(0)
        responses = gateway.drain()
        response = responses[0]
        assert response.ok
        assert response.hedged and not response.hedge_won
        assert response.latency == pytest.approx(0.06)
        assert gateway.stats.hedges_sent == 1
        assert gateway.stats.hedge_wins == 0
        assert gateway.stats.hedge_cancelled == 1

    def test_fast_primary_never_hedges(self, server):
        gateway = self.hedged_gateway(server, [0.01], [0.01])
        gateway.submit(0)
        gateway.drain()
        assert gateway.stats.hedges_sent == 0
        assert gateway.stats.hedge_cancelled == 0

    def test_unknown_id_not_hedged(self, server):
        gateway = self.hedged_gateway(server, [0.01], [0.01])
        gateway.submit(9999)
        responses = gateway.drain()
        assert responses[0].reason == "unknown-id"
        assert gateway.stats.hedges_sent == 0
        assert gateway.stats.backend_errors == 1

    def test_both_slow_reports_deadline_once(self, server):
        gateway = self.hedged_gateway(server, [10.0], [10.0])
        gateway.submit(0)
        responses = gateway.drain()
        assert responses[0].reason == "deadline"
        assert gateway.stats.deadline_backend_misses == 1
        assert gateway.stats.hedges_sent == 1
        assert gateway.stats.hedge_cancelled == 1


class TestSheddingResponses:
    def test_rate_limited_answered_immediately(self, server):
        gateway = make_gateway(
            server,
            [[0.01]],
            GatewayConfig(admission=AdmissionConfig(rate=1.0, burst=1.0)),
        )
        assert gateway.submit(0) is None
        shed = gateway.submit(1)
        assert shed is not None
        assert shed.reason == "rate-limited"
        assert shed.vectors.degraded
        assert gateway.stats.shed_rate_limited == 1

    def test_queue_full_and_eviction(self, server):
        config = GatewayConfig(
            hedge_after=None,
            admission=AdmissionConfig(initial_limit=1, queue_capacity=1),
        )
        gateway = make_gateway(server, [[10.0] * 8], config)
        assert gateway.submit(0, priority=0) is None  # running
        assert gateway.submit(1, priority=0) is None  # queued
        full = gateway.submit(2, priority=0)
        assert full is not None and full.reason == "queue-full"
        assert gateway.submit(1, priority=3) is None  # evicts the waiter
        evicted = [r for r in gateway.drain() if r.reason == "evicted"]
        assert len(evicted) == 1
        assert gateway.stats.shed_evicted == 1
        assert gateway.stats.shed_queue_full == 1


class TestDrainSwap:
    def test_drain_answers_all_inflight_and_queued(self, server):
        config = GatewayConfig(
            hedge_after=None,
            admission=AdmissionConfig(initial_limit=2, queue_capacity=8),
        )
        gateway = make_gateway(server, [[0.01, 0.02, 0.015, 0.01, 0.02, 0.01]], config)
        for entity in (0, 1, 2, 0, 1, 2):
            assert gateway.submit(entity) is None
        assert gateway.inflight_count() == 2
        assert gateway.queued_count() == 4
        responses = gateway.drain()
        assert len(responses) == 6
        assert all(r.ok for r in responses)
        assert gateway.state == QUIESCED
        assert gateway.inflight_count() == 0
        assert gateway.queued_count() == 0

    def test_submit_while_not_serving_is_shed(self, server):
        gateway = make_gateway(server, [[0.01]])
        gateway.drain()
        shed = gateway.submit(0)
        assert shed is not None and shed.reason == "draining"
        assert gateway.stats.shed_draining == 1

    def test_swap_requires_quiesce(self, server):
        gateway = make_gateway(server, [[0.01]])
        with pytest.raises(RuntimeError):
            gateway.swap(server)
        gateway.drain()
        gateway.swap(server)
        assert gateway.state == SERVING
        assert gateway.stats.swaps == 1

    def test_swap_refreshes_replica_caches(self, server):
        gateway = PKGMGateway(build_replicas(server, 2, seed=0))
        gateway.submit(0)
        gateway.drain()
        assert any(r.server.stats().size > 0 for r in gateway.replicas)
        gateway.swap(server)
        assert all(r.server.stats().size == 0 for r in gateway.replicas)
        assert gateway.submit(0) is None  # serving again
        assert len(gateway.drain()) == 1

    def test_drain_is_reentrant_lifecycle(self, server):
        gateway = make_gateway(server, [[0.01]])
        gateway.submit(0)
        gateway.drain()
        gateway.swap(server)
        gateway.submit(1)
        responses = gateway.drain()
        assert len(responses) == 1
        assert gateway.stats.drains == 2


class TestExactlyOnceAndDeterminism:
    def test_every_submission_answered_exactly_once(self, server):
        config = GatewayConfig(
            deadline_budget=0.05,
            hedge_after=0.01,
            admission=AdmissionConfig(
                rate=50.0, burst=4.0, initial_limit=2, queue_capacity=2
            ),
        )
        clock = StepClock()
        gateway = make_gateway(
            server, [[0.002, 0.04, 0.09], [0.003, 0.08]], config, clock=clock
        )
        responses = []
        total = 60
        for index in range(total):
            clock.advance(0.004)
            responses.extend(gateway.step())
            entity = 9999 if index % 17 == 0 else index % 3
            shed = gateway.submit(entity, priority=index % 3)
            if shed is not None:
                responses.append(shed)
        responses.extend(gateway.drain())
        assert len(responses) == total
        assert len({r.request_id for r in responses}) == total
        stats = gateway.stats
        assert stats.completed_ok + stats.completed_degraded + stats.shed == total

    def test_identical_seeds_identical_stats(self, server):
        def run():
            clock = StepClock()
            gateway = PKGMGateway(
                build_replicas(server, 2, seed=7),
                GatewayConfig(admission=AdmissionConfig(rate=80.0, burst=8.0)),
                clock=clock,
                seed=7,
            )
            rows = []
            for index in range(40):
                clock.advance(0.005)
                gateway.step()
                gateway.submit(index % 3, priority=index % 2)
            gateway.drain()
            rows.append(gateway.stats.as_row())
            rows.append(gateway.admission.stats.as_row())
            return rows

        assert run() == run()


class TestLatencyModel:
    def test_seeded_and_deterministic(self):
        first = [LatencyModel(seed=3).sample() for _ in range(50)]
        second = [LatencyModel(seed=3).sample() for _ in range(50)]
        assert first == second
        assert all(s >= 0.004 for s in first)

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyModel(base=-0.1)
        with pytest.raises(ValueError):
            LatencyModel(tail_prob=1.5)


class TestGatewayConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GatewayConfig(deadline_budget=0.0)
        with pytest.raises(ValueError):
            GatewayConfig(hedge_after=0.0)
        with pytest.raises(ValueError):
            GatewayConfig(latency_target=-1.0)

    def test_needs_replicas(self):
        with pytest.raises(ValueError):
            PKGMGateway([])
        with pytest.raises(ValueError):
            build_replicas(object(), 0)
