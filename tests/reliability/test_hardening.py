"""PR 8 hardening: pre-dispatch deadline rejection, stats reset,
and genuinely concurrent drain/swap clients."""

import threading

from repro.obs.metrics import MetricsRegistry
from repro.reliability import (
    DegradationStats,
    GatewayConfig,
    PKGMGateway,
    StepClock,
    TimedBackend,
)
from repro.reliability.gateway import QUIESCED, SERVING

from .test_gateway import ScriptedLatency, make_gateway


class TestDeadlineRejection:
    def test_expired_budget_rejected_before_any_replica_call(self, server):
        gateway = make_gateway(server, [[0.01], [0.01]])
        response = gateway.submit_retrieval(0, 0, k=2, budget=0.0)
        assert response is not None
        assert response.reason == "deadline"
        assert not response.ok
        assert all(replica.calls == 0 for replica in gateway.replicas)
        assert gateway.stats.deadline_rejected == 1
        assert gateway.inflight_count() == 0 and gateway.queued_count() == 0

    def test_negative_budget_equally_rejected(self, server):
        gateway = make_gateway(server, [[0.01]])
        response = gateway.submit_retrieval(0, 0, k=2, budget=-5.0)
        assert response.reason == "deadline"
        assert gateway.stats.deadline_rejected == 1

    def test_positive_budget_still_dispatches(self, server):
        gateway = make_gateway(server, [[0.01]])
        assert gateway.submit_retrieval(0, 0, k=2, budget=1.0) is None
        gateway.clock.advance(0.1)
        responses = gateway.step()
        assert len(responses) == 1 and responses[0].ok
        assert gateway.stats.deadline_rejected == 0

    def test_rejection_lands_in_the_registry(self, server):
        registry = MetricsRegistry()
        gateway = PKGMGateway(
            [TimedBackend(server, latency=ScriptedLatency([0.01]))],
            clock=StepClock(),
            registry=registry,
        )
        gateway.submit_retrieval(0, 0, k=2, budget=0.0)
        counter = registry.counter("gateway.deadline_rejected")
        assert counter.value == 1


class TestDegradationStatsReset:
    def test_reset_zeroes_every_counter(self):
        stats = DegradationStats(registry=MetricsRegistry())
        stats.requests += 5
        stats.served_live += 3
        stats.fallback_unknown += 2
        stats.reset()
        assert all(value == 0 for value in stats.snapshot().values())

    def test_reset_does_not_detach_the_registry(self):
        registry = MetricsRegistry()
        stats = DegradationStats(registry=registry)
        stats.requests += 7
        stats.reset()
        assert stats.metrics is registry
        # Post-reset increments keep landing in the same instrument.
        stats.requests += 2
        assert registry.counter("serving.requests").value == 2
        assert stats.snapshot()["requests"] == 2

    def test_snapshot_matches_counter_fields(self):
        stats = DegradationStats(registry=MetricsRegistry())
        snapshot = stats.snapshot()
        assert tuple(snapshot) == DegradationStats.COUNTER_FIELDS
        stats.deadline_exceeded += 1
        assert stats.snapshot()["deadline_exceeded"] == 1
        assert snapshot["deadline_exceeded"] == 0  # plain-int copy


class TestConcurrentDrainSwap:
    def test_threaded_submissions_each_get_exactly_one_outcome(self, server):
        """Real threads submit while the main thread drains and swaps.

        The gateway's lock must give every submission exactly one
        outcome — an immediate shed response or exactly one entry in a
        step/drain batch — with no duplicates and no losses, whatever
        the interleaving.
        """
        gateway = make_gateway(
            server,
            [[0.001] * 4] * 2,
            config=GatewayConfig(deadline_budget=10.0),
        )
        threads = 4
        per_thread = 25
        barrier = threading.Barrier(threads + 1)
        shed_ids = []
        shed_lock = threading.Lock()

        def client(seed):
            barrier.wait()
            for index in range(per_thread):
                response = gateway.submit((seed + index) % 3)
                if response is not None:
                    with shed_lock:
                        shed_ids.append(response.request_id)

        workers = [
            threading.Thread(target=client, args=(seed,))
            for seed in range(threads)
        ]
        for worker in workers:
            worker.start()
        barrier.wait()
        drained = gateway.drain()  # races the submitting threads
        for worker in workers:
            worker.join()
        assert gateway.state == QUIESCED
        gateway.swap(server)
        assert gateway.state == SERVING
        remaining = gateway.drain()
        answered = [r.request_id for r in drained + remaining] + shed_ids
        assert sorted(answered) == list(range(threads * per_thread))

    def test_post_swap_submissions_serve_again(self, server):
        gateway = make_gateway(server, [[0.001] * 2])
        gateway.drain()
        gateway.swap(server)
        assert gateway.submit(0) is None
        gateway.clock.advance(0.01)
        responses = gateway.step()
        assert len(responses) == 1 and responses[0].ok
