"""Tests for admission control: deadlines, rate limit, AIMD, queue."""

import pytest

from repro.reliability import (
    AdmissionAction,
    AdmissionConfig,
    AdmissionController,
    AdmissionStats,
    AIMDLimiter,
    BoundedPriorityQueue,
    Deadline,
    StepClock,
    TokenBucket,
)


class TestDeadline:
    def test_remaining_tracks_clock(self):
        clock = StepClock()
        deadline = Deadline(clock, 2.0)
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        assert not deadline.expired()
        clock.advance(0.5)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_remaining_never_negative(self):
        clock = StepClock()
        deadline = Deadline(clock, 0.1)
        clock.advance(5.0)
        assert deadline.remaining() == 0.0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(StepClock(), -1.0)

    def test_zero_budget_expires_immediately(self):
        assert Deadline(StepClock(), 0.0).expired()


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = StepClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        assert bucket.try_take()
        assert bucket.try_take()
        assert not bucket.try_take()  # burst exhausted
        clock.advance(0.1)  # 1 token refilled
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refill_caps_at_burst(self):
        clock = StepClock()
        bucket = TokenBucket(rate=100.0, burst=3.0, clock=clock)
        clock.advance(100.0)
        assert bucket.available() == pytest.approx(3.0)

    def test_disabled_always_admits(self):
        bucket = TokenBucket(rate=None, burst=1.0)
        for _ in range(100):
            assert bucket.try_take()
        assert bucket.available() == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestAIMDLimiter:
    def test_additive_increase_one_slot_per_window(self):
        limiter = AIMDLimiter(initial=4, max_limit=64)
        # Roughly one full window of successes buys one slot (the
        # denominator grows as the limit does, so it takes a draw more
        # than `limit` exactly).
        for _ in range(5):
            limiter.on_success()
        assert limiter.limit == 5
        assert limiter.raises == 1

    def test_multiplicative_decrease(self):
        limiter = AIMDLimiter(initial=16, decrease=0.5)
        limiter.on_overload()
        assert limiter.limit == 8
        limiter.on_overload()
        assert limiter.limit == 4
        assert limiter.backoffs == 2

    def test_bounds_respected(self):
        limiter = AIMDLimiter(initial=2, min_limit=2, max_limit=3)
        for _ in range(100):
            limiter.on_overload()
        assert limiter.limit == 2
        for _ in range(100):
            limiter.on_success()
        assert limiter.limit == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            AIMDLimiter(initial=0)
        with pytest.raises(ValueError):
            AIMDLimiter(initial=8, min_limit=9)
        with pytest.raises(ValueError):
            AIMDLimiter(increase=0.0)
        with pytest.raises(ValueError):
            AIMDLimiter(decrease=1.0)


class TestBoundedPriorityQueue:
    def test_fifo_within_priority(self):
        queue = BoundedPriorityQueue(capacity=4)
        for item in ("a", "b", "c"):
            assert queue.push(item, priority=1) is None
        assert [queue.pop() for _ in range(3)] == ["a", "b", "c"]
        assert queue.pop() is None

    def test_priority_order(self):
        queue = BoundedPriorityQueue(capacity=4)
        queue.push("low", priority=0)
        queue.push("high", priority=2)
        queue.push("mid", priority=1)
        assert [queue.pop() for _ in range(3)] == ["high", "mid", "low"]

    def test_overflow_sheds_arrival_when_not_outranking(self):
        queue = BoundedPriorityQueue(capacity=2)
        queue.push("a", priority=1)
        queue.push("b", priority=1)
        # Equal priority does not evict queued work: tail-drop arrival.
        assert queue.push("c", priority=1) == "c"
        assert len(queue) == 2

    def test_overflow_evicts_youngest_lowest_priority(self):
        queue = BoundedPriorityQueue(capacity=3)
        queue.push("old-low", priority=0)
        queue.push("young-low", priority=0)
        queue.push("high", priority=2)
        evicted = queue.push("arrival", priority=1)
        assert evicted == "young-low"
        assert len(queue) == 3
        assert [queue.pop() for _ in range(3)] == ["high", "arrival", "old-low"]

    def test_lazy_deletion_consistent_after_eviction(self):
        queue = BoundedPriorityQueue(capacity=2)
        queue.push("a", priority=0)
        queue.push("b", priority=0)
        assert queue.push("c", priority=5) == "b"  # evicts youngest low
        assert queue.pop() == "c"
        assert queue.pop() == "a"
        assert queue.pop() is None
        assert len(queue) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BoundedPriorityQueue(capacity=0)


class TestAdmissionController:
    def test_starts_until_limit_then_queues(self):
        controller = AdmissionController(
            AdmissionConfig(initial_limit=2, queue_capacity=4)
        )
        assert controller.offer("r1").action is AdmissionAction.START
        assert controller.offer("r2").action is AdmissionAction.START
        assert controller.offer("r3").action is AdmissionAction.QUEUE
        assert controller.inflight == 2
        assert len(controller.queue) == 1

    def test_rate_shed_before_queueing(self):
        clock = StepClock()
        controller = AdmissionController(
            AdmissionConfig(rate=1.0, burst=1.0), clock=clock
        )
        assert controller.offer("r1").action is AdmissionAction.START
        decision = controller.offer("r2")
        assert decision.action is AdmissionAction.SHED_RATE
        assert controller.stats.shed_rate_limited == 1

    def test_queue_full_sheds_arrival(self):
        controller = AdmissionController(
            AdmissionConfig(initial_limit=1, queue_capacity=1)
        )
        controller.offer("r1", priority=0)
        controller.offer("r2", priority=0)
        decision = controller.offer("r3", priority=0)
        assert decision.action is AdmissionAction.SHED_QUEUE_FULL
        assert controller.stats.shed_queue_full == 1

    def test_high_priority_evicts_queued_victim(self):
        controller = AdmissionController(
            AdmissionConfig(initial_limit=1, queue_capacity=1)
        )
        controller.offer("running", priority=0)
        controller.offer("victim", priority=0)
        decision = controller.offer("vip", priority=3)
        assert decision.action is AdmissionAction.QUEUE
        assert decision.evicted == "victim"
        assert controller.stats.evicted == 1

    def test_release_feeds_limiter_and_next_ready(self):
        controller = AdmissionController(
            AdmissionConfig(initial_limit=1, queue_capacity=4)
        )
        controller.offer("r1")
        controller.offer("r2")
        assert controller.next_ready() is None  # no free slot yet
        controller.release(overloaded=False)
        assert controller.next_ready() == "r2"
        assert controller.stats.started == 2
        controller.release(overloaded=True)
        assert controller.limiter.backoffs == 1
        assert controller.stats.completed_ok == 1
        assert controller.stats.completed_overload == 1

    def test_release_without_start_raises(self):
        controller = AdmissionController()
        with pytest.raises(RuntimeError):
            controller.release()

    def test_stats_row_and_shed_rate(self):
        stats = AdmissionStats(arrived=10, shed_rate_limited=2, evicted=1)
        assert stats.shed == 3
        assert stats.shed_rate == pytest.approx(0.3)
        assert "admission:" in stats.as_row()
        assert AdmissionStats().shed_rate == 0.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(queue_capacity=0)
