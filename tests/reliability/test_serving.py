"""Tests for the degraded-mode serving facade."""

import numpy as np
import pytest

from repro.core import CachedPKGMServer
from repro.reliability import (
    CircuitBreaker,
    Deadline,
    FlakyServingBackend,
    ResilientPKGMServer,
    RetryPolicy,
    StepClock,
)


@pytest.fixture
def resilient(server):
    return ResilientPKGMServer(server)


class TestHappyPath:
    def test_identical_to_backend(self, resilient, server):
        item = server.known_items()[0]
        assert np.allclose(
            resilient.serve(item).sequence(), server.serve(item).sequence()
        )
        assert resilient.stats.served_live == 1
        assert resilient.stats.degraded_rate == 0.0

    def test_surface_passthrough(self, resilient, server):
        assert resilient.k == server.k
        assert resilient.dim == server.dim
        assert resilient.num_entities == server.num_entities
        assert resilient.num_relations == server.num_relations

    def test_batch_helpers(self, resilient, server):
        ids = server.known_items()[:3]
        assert resilient.serve_sequence_batch(ids).shape == (
            3,
            2 * server.k,
            server.dim,
        )
        assert resilient.serve_condensed_batch(ids).shape == (3, 2 * server.dim)


class TestUnknownIds:
    def test_unknown_id_returns_flagged_zero_fallback(self, resilient, server):
        vectors = resilient.serve(10**9)
        assert vectors.degraded
        assert vectors.triple_vectors.shape == (server.k, server.dim)
        assert np.allclose(vectors.sequence(), 0.0)
        assert np.all(vectors.key_relations == -1)
        assert resilient.stats.fallback_unknown == 1

    def test_out_of_range_index_never_raises(self, server):
        resilient = ResilientPKGMServer(server)
        # Entity table has num_entities rows; this id indexes past it.
        vectors = resilient.serve(server.num_entities + 5)
        assert vectors.degraded

    def test_mean_fallback_uses_catalog_mean(self, server):
        resilient = ResilientPKGMServer(server, fallback="mean")
        items = server.known_items()
        expected_triple = np.mean(
            [server.serve(i).triple_vectors for i in items], axis=0
        )
        vectors = resilient.serve(10**9)
        assert vectors.degraded
        assert np.allclose(vectors.triple_vectors, expected_triple)

    def test_invalid_fallback_mode_rejected(self, server):
        with pytest.raises(ValueError):
            ResilientPKGMServer(server, fallback="elaborate")

    def test_never_raises_over_many_bad_ids(self, resilient):
        for bad in (-1, 10**6, 10**9):
            vectors = resilient.serve(bad)
            assert vectors.degraded
            assert np.isfinite(vectors.sequence()).all()


class TestBackendFailures:
    def make(self, server, fail_next=0, **kw):
        flaky = FlakyServingBackend(server, seed=0)
        flaky.fail_next = fail_next
        resilient = ResilientPKGMServer(
            flaky,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
            breaker=CircuitBreaker(failure_threshold=2, recovery_time=5.0),
            **kw,
        )
        return flaky, resilient

    def test_transient_error_is_retried_transparently(self, server):
        flaky, resilient = self.make(server, fail_next=1)
        item = server.known_items()[0]
        vectors = resilient.serve(item)
        assert not vectors.degraded
        assert resilient.stats.served_live == 1
        assert resilient.retry_stats().retries == 1

    def test_persistent_failure_falls_back_flagged(self, server):
        flaky, resilient = self.make(server, fail_next=100)
        vectors = resilient.serve(server.known_items()[0])
        assert vectors.degraded
        assert resilient.stats.fallback_error == 1

    def test_breaker_opens_and_serves_stale_from_cache(self, server):
        flaky, resilient = self.make(server, fail_next=0)
        item, other = server.known_items()[0], server.known_items()[1]
        fresh = resilient.serve(item)  # populates the LRU
        flaky.fail_next = 10**6
        # Cache misses reach the dying backend and trip the breaker
        # (failure_threshold=2).
        for _ in range(2):
            resilient.serve(other)
        assert resilient.breaker.state == CircuitBreaker.OPEN
        # With the breaker open the backend is not touched at all; the
        # cached item is served stale instead of failing.
        calls_before = flaky.calls
        stale = resilient.serve(item)
        assert flaky.calls == calls_before
        assert resilient.stats.breaker_short_circuits > 0
        assert resilient.stats.served_stale == 1
        assert not stale.degraded  # stale != degraded: real model output
        assert np.allclose(stale.sequence(), fresh.sequence())

    def test_breaker_open_unknown_item_degrades(self, server):
        flaky, resilient = self.make(server, fail_next=10**6)
        for _ in range(5):
            vectors = resilient.serve(server.known_items()[1])
            assert vectors.degraded  # nothing cached: fallback payload

    def test_half_open_probe_recovers_service(self, server):
        flaky, resilient = self.make(server)
        item = server.known_items()[0]
        flaky.fail_next = 10**6
        for _ in range(3):
            resilient.serve(item)  # uncached: failures trip the breaker
        assert resilient.breaker.state == CircuitBreaker.OPEN
        flaky.fail_next = 0  # backend healed
        # Each serve advances the virtual clock 1s; recovery_time=5, so
        # within a few requests a half-open probe runs, succeeds, and
        # closes the breaker again.
        recovered = None
        for _ in range(8):
            recovered = resilient.serve(item)
        assert resilient.breaker.state == CircuitBreaker.CLOSED
        assert not recovered.degraded
        assert resilient.stats.served_live >= 1

    def test_existing_cached_server_is_reused(self, server):
        cached = CachedPKGMServer(server, capacity=8)
        resilient = ResilientPKGMServer(cached)
        item = server.known_items()[0]
        resilient.serve(item)
        assert cached.stats().misses == 1

    def test_relation_existence_score_degrades_to_nan(self, server):
        flaky, resilient = self.make(server, fail_next=10**6)
        score = resilient.relation_existence_score(server.known_items()[0], 0)
        assert np.isnan(score)
        healthy = ResilientPKGMServer(server)
        value = healthy.relation_existence_score(server.known_items()[0], 0)
        assert np.isfinite(value)


class TestDeadlines:
    def test_expired_deadline_yields_flagged_fallback(self, server):
        clock = StepClock()
        resilient = ResilientPKGMServer(server, clock=clock)
        deadline = Deadline(clock, 0.5)  # < the 1.0 per-request tick
        result = resilient.serve(server.known_items()[0], deadline=deadline)
        assert result.degraded
        assert resilient.stats.deadline_exceeded == 1
        assert resilient.stats.degraded_rate > 0.0
        assert "deadline-exceeded 1" in resilient.stats.as_row()

    def test_counter_increments_exactly_once_per_request(self, server):
        clock = StepClock()
        resilient = ResilientPKGMServer(server, clock=clock)
        for _ in range(3):
            resilient.serve(server.known_items()[0], deadline=Deadline(clock, 0.5))
        assert resilient.stats.deadline_exceeded == 3
        assert resilient.stats.requests == 3

    def test_generous_deadline_serves_live(self, server):
        clock = StepClock()
        resilient = ResilientPKGMServer(server, clock=clock)
        deadline = Deadline(clock, 10.0)
        result = resilient.serve(server.known_items()[0], deadline=deadline)
        assert not result.degraded
        assert resilient.stats.deadline_exceeded == 0
        assert resilient.stats.served_live == 1

    def test_deadline_miss_does_not_trip_breaker(self, server):
        clock = StepClock()
        resilient = ResilientPKGMServer(
            server, breaker=CircuitBreaker(failure_threshold=1, clock=clock),
            clock=clock,
        )
        resilient.serve(server.known_items()[0], deadline=Deadline(clock, 0.5))
        assert resilient.breaker.state == CircuitBreaker.CLOSED
