"""Gateway retrieval path: admission, deadlines, degraded payloads."""

import numpy as np
import pytest

from repro.reliability import (
    AdmissionConfig,
    GatewayConfig,
    PKGMGateway,
    RetrievalPayload,
    StepClock,
    TimedBackend,
)

from .test_gateway import ScriptedLatency, make_gateway


class TestRetrievalOkPath:
    def test_answers_match_the_server(self, server):
        gateway = make_gateway(server, [[0.01]])
        assert gateway.submit_retrieval(0, relation=0, k=3) is None
        responses = gateway.drain()
        assert len(responses) == 1
        response = responses[0]
        assert response.ok and response.reason is None
        payload = response.vectors
        assert isinstance(payload, RetrievalPayload)
        assert payload.entity_id == 0 and payload.relation == 0
        expected_d, expected_i = server.nearest_tails(0, 0, k=3)
        assert np.array_equal(payload.neighbor_ids, expected_i)
        assert np.array_equal(payload.distances, expected_d)
        assert gateway.stats.retrievals == 1
        assert gateway.stats.completed_ok == 1

    def test_mixed_traffic_counts_separately(self, server):
        gateway = make_gateway(server, [[0.01] * 4])
        gateway.submit(0)
        gateway.submit_retrieval(1, relation=1, k=2)
        gateway.submit(2)
        responses = gateway.drain()
        assert len(responses) == 3
        assert all(r.ok for r in responses)
        assert gateway.stats.arrived == 3
        assert gateway.stats.retrievals == 1
        retrievals = [
            r for r in responses if isinstance(r.vectors, RetrievalPayload)
        ]
        assert len(retrievals) == 1

    def test_retrieval_is_never_hedged(self, server):
        # Two replicas, a slow primary, hedging armed: a serve request
        # would hedge here, but retrieval must not (a cold replica would
        # have to build its own tail index first).
        gateway = make_gateway(
            server,
            [[0.2], [0.01]],
            GatewayConfig(deadline_budget=1.0, hedge_after=0.05),
        )
        gateway.submit_retrieval(0, relation=0, k=2)
        responses = gateway.drain()
        assert responses[0].ok
        assert not responses[0].hedged
        assert gateway.stats.hedges_sent == 0


class TestRetrievalDegradedPaths:
    def test_deadline_miss_degrades_never_raises(self, server):
        gateway = make_gateway(
            server,
            [[10.0]],
            GatewayConfig(deadline_budget=0.25, hedge_after=None),
        )
        assert gateway.submit_retrieval(0, relation=0, k=4) is None
        responses = gateway.drain()
        response = responses[0]
        assert not response.ok
        assert response.reason == "deadline"
        payload = response.vectors
        assert payload.degraded
        assert payload.k == 4
        assert np.isinf(payload.distances).all()
        assert (payload.neighbor_ids == -1).all()
        assert gateway.stats.deadline_backend_misses == 1

    def test_unknown_entity_degrades(self, server):
        gateway = make_gateway(server, [[0.01]])
        gateway.submit_retrieval(10_000, relation=0, k=2)
        responses = gateway.drain()
        response = responses[0]
        assert not response.ok
        assert response.reason == "unknown-id"
        assert response.vectors.degraded
        assert gateway.stats.backend_errors == 1

    def test_shed_retrieval_gets_degraded_payload(self, server):
        config = GatewayConfig(
            hedge_after=None,
            admission=AdmissionConfig(initial_limit=1, queue_capacity=1),
        )
        gateway = make_gateway(server, [[0.01] * 8], config)
        gateway.submit_retrieval(0, relation=0, k=2)  # takes the slot
        gateway.submit_retrieval(1, relation=0, k=2)  # queues
        shed = gateway.submit_retrieval(2, relation=0, k=2)  # overflows
        assert shed is not None
        assert shed.reason == "queue-full"
        assert isinstance(shed.vectors, RetrievalPayload)
        assert shed.vectors.degraded
        assert gateway.stats.retrievals == 3
        drained = gateway.drain()
        assert all(r.ok for r in drained)

    def test_quiesced_gateway_sheds_retrievals(self, server):
        gateway = make_gateway(server, [[0.01]])
        gateway.drain()
        response = gateway.submit_retrieval(0, relation=0, k=2)
        assert response is not None
        assert response.reason == "draining"
        assert response.vectors.degraded
