"""Tests for crash-consistent checkpointing."""

import json

import numpy as np
import pytest

from repro.reliability import (
    CheckpointError,
    CheckpointManager,
    atomic_save_npz,
    atomic_write_bytes,
    restore_rng,
    rng_state,
)


class TestAtomicWrite:
    def test_write_and_checksum(self, tmp_path):
        path = tmp_path / "blob.bin"
        digest = atomic_write_bytes(path, b"hello")
        assert path.read_bytes() == b"hello"
        assert len(digest) == 64

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"old-contents")
        atomic_write_bytes(path, b"new")
        assert path.read_bytes() == b"new"

    def test_no_temp_files_left_behind(self, tmp_path):
        atomic_write_bytes(tmp_path / "a.bin", b"payload")
        leftovers = [p for p in tmp_path.iterdir() if ".tmp." in p.name]
        assert leftovers == []

    def test_npz_roundtrip(self, tmp_path):
        path = tmp_path / "arrays.npz"
        table = np.arange(12, dtype=np.float64).reshape(3, 4)
        atomic_save_npz(path, {"table": table})
        with np.load(path) as data:
            assert np.array_equal(data["table"], table)

    def test_temp_names_are_unique_within_one_process(self, tmp_path):
        """Regression: a pid-only temp suffix collides when two threads
        write the same destination — one rename can then promote the
        other thread's half-written bytes.  The sequence number makes
        every in-flight temp file distinct."""
        import threading

        path = tmp_path / "contended.bin"
        payloads = [bytes([worker]) * 4096 for worker in range(8)]
        errors = []

        def write(payload):
            try:
                for _ in range(25):
                    atomic_write_bytes(path, payload)
            except OSError as error:  # tmp collision surfaces here
                errors.append(error)

        threads = [
            threading.Thread(target=write, args=(payload,))
            for payload in payloads
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # The survivor is one writer's payload, intact — never a blend.
        assert path.read_bytes() in payloads
        assert [p for p in tmp_path.iterdir() if ".tmp." in p.name] == []

    def test_concurrent_writes_to_distinct_paths(self, tmp_path):
        import threading

        def write(index):
            atomic_write_bytes(tmp_path / f"{index}.bin", bytes([index]) * 64)

        threads = [
            threading.Thread(target=write, args=(i,)) for i in range(16)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for index in range(16):
            assert (tmp_path / f"{index}.bin").read_bytes() == bytes([index]) * 64


class TestRngState:
    def test_roundtrip_reproduces_stream(self):
        rng = np.random.default_rng(42)
        rng.random(10)
        state = rng_state(rng)
        expected = rng.random(5).tolist()
        other = np.random.default_rng(0)
        restore_rng(other, state)
        assert other.random(5).tolist() == expected

    def test_state_is_json_safe(self):
        state = rng_state(np.random.default_rng(1))
        json.dumps(state)  # must not raise


class TestCheckpointManager:
    def arrays(self, value=1.0):
        return {"w": np.full((4, 2), value), "step": np.array([3])}

    def test_save_load_roundtrip(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(5, self.arrays(2.5), metadata={"epoch": 5})
        arrays, metadata = manager.load()
        assert np.allclose(arrays["w"], 2.5)
        assert metadata["epoch"] == 5

    def test_latest_picks_highest_step(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=5)
        for step in (1, 3, 2):
            manager.save(step, self.arrays(step))
        assert manager.latest() == 3
        arrays, _ = manager.load()
        assert np.allclose(arrays["w"], 3.0)

    def test_retention_prunes_oldest(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        for step in range(5):
            manager.save(step, self.arrays(step))
        assert manager.steps() == [3, 4]
        assert not manager.payload_path(0).exists()

    def test_orphan_payload_is_invisible(self, tmp_path):
        """A crash between payload and manifest writes must leave the
        previous checkpoint as 'latest', not the torn one."""
        manager = CheckpointManager(tmp_path)
        manager.save(1, self.arrays())
        # Simulate the crash: payload for step 2 lands, manifest never does.
        atomic_save_npz(manager.payload_path(2), self.arrays())
        assert manager.latest() == 1

    def test_corrupted_payload_fails_checksum(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(1, self.arrays())
        payload = manager.payload_path(1)
        blob = bytearray(payload.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        payload.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="checksum"):
            manager.load(1)

    def test_load_missing_raises(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        with pytest.raises(CheckpointError):
            manager.load()
        with pytest.raises(CheckpointError):
            manager.load(9)

    def test_clear_removes_everything(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(1, self.arrays())
        manager.clear()
        assert manager.latest() is None
        assert list(tmp_path.iterdir()) == []

    def test_manifest_records_schema(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(1, self.arrays())
        with open(manager.manifest_path(1), "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest["arrays"]["w"]["shape"] == [4, 2]
        assert "sha256" in manifest

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, keep=0)
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, prefix="../evil")
        manager = CheckpointManager(tmp_path)
        with pytest.raises(ValueError):
            manager.save(-1, self.arrays())
