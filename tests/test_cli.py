"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import PRESETS, build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("stats", "pretrain", "classify", "align", "recommend", "complete"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_preset_choices(self):
        parser = build_parser()
        args = parser.parse_args(["stats", "--preset", "bench"])
        assert args.preset == "bench"
        with pytest.raises(SystemExit):
            parser.parse_args(["stats", "--preset", "huge"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_align_category_flag(self):
        args = build_parser().parse_args(["align", "--category", "2"])
        assert args.category == 2

    def test_complete_fraction_flag(self):
        args = build_parser().parse_args(["complete", "--fraction", "0.25"])
        assert args.fraction == pytest.approx(0.25)

    def test_presets_are_callables(self):
        for factory in PRESETS.values():
            config = factory()
            assert config.pkgm.dim >= 1

    def test_scenarios_subcommands_registered(self):
        parser = build_parser()
        for sub in ("workload", "coldstart", "explain", "transfer"):
            args = parser.parse_args(["scenarios", sub])
            assert args.command == "scenarios"
            assert args.scenarios_command == sub
        args = parser.parse_args(
            ["scenarios", "workload", "--requests", "40", "--pool-requests", "8"]
        )
        assert (args.requests, args.pool_requests) == (40, 8)
        args = parser.parse_args(["scenarios", "explain", "--kind", "existence"])
        assert args.kind == "existence"
        with pytest.raises(SystemExit):
            parser.parse_args(["scenarios"])

    def test_stream_from_checkpoint_flag(self):
        args = build_parser().parse_args(
            ["stream", "run", "--dir", "/tmp/x", "--from-checkpoint", "ckpt.npz"]
        )
        assert args.from_checkpoint == "ckpt.npz"


class TestCommands:
    def test_stats_runs(self, capsys):
        assert main(["stats", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Table IX" in out

    def test_pretrain_saves_server(self, tmp_path, capsys):
        path = tmp_path / "server.npz"
        assert main(["pretrain", "--preset", "smoke", "--save", str(path)]) == 0
        assert path.exists()
        from repro.core import PKGMServer

        server = PKGMServer.load(path)
        assert server.dim >= 1

    def test_complete_runs(self, capsys):
        assert main(["complete", "--preset", "smoke", "--fraction", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Hit@10" in out

    def test_classify_runs(self, capsys):
        assert main(["classify", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "pkgm-all" in out

    def test_align_runs(self, capsys):
        assert main(["align", "--preset", "smoke", "--category", "0"]) == 0
        out = capsys.readouterr().out
        assert "Hit@10" in out
        assert "pkgm-all" in out

    def test_recommend_runs(self, capsys):
        assert main(["recommend", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table VIII" in out
        assert "pkgm-r" in out

    def test_seed_override_changes_catalog(self, capsys):
        main(["stats", "--preset", "smoke", "--seed", "1"])
        first = capsys.readouterr().out
        main(["stats", "--preset", "smoke", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second


class TestTelemetryCommands:
    def test_parser_defaults(self):
        met = build_parser().parse_args(["metrics"])
        assert met.command == "metrics"
        assert met.requests == 400
        assert met.format == "prom"
        tra = build_parser().parse_args(["trace"])
        assert tra.command == "trace"
        assert tra.epochs == 2
        assert tra.format == "tree"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["metrics", "--format", "xml"])

    def test_metrics_prometheus_output(self, capsys):
        assert main(["metrics", "--preset", "smoke", "--requests", "150"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE gateway_arrived counter" in out
        assert "# TYPE gateway_latency histogram" in out
        assert 'gateway_latency_bucket{le="+Inf"}' in out
        assert "admission_arrived 150" in out

    def test_metrics_json_output(self, capsys):
        import json

        argv = ["metrics", "--preset", "smoke", "--requests", "150"]
        assert main(argv + ["--format", "json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["gateway.arrived"] == 150
        assert "replica_0.cache.hits" in snapshot

    def test_metrics_byte_identical_across_runs(self, capsys):
        argv = ["metrics", "--preset", "smoke", "--requests", "150"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert first == capsys.readouterr().out

    def test_trace_tree_output(self, capsys):
        assert main(["trace", "--preset", "smoke", "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "train.epoch" in out
        assert "phase | calls | steps | tensor-ops | units" in out
        assert "top tensor ops" in out

    def test_trace_chrome_output_is_reproducible(self, capsys):
        import json

        argv = ["trace", "--preset", "smoke", "--epochs", "1", "--format", "chrome"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        payload = json.loads(first)
        assert payload["traceEvents"][0]["name"] == "train.epoch"
        assert main(argv) == 0
        assert first == capsys.readouterr().out


class TestLoadtest:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["loadtest"])
        assert args.command == "loadtest"
        assert args.profile == "spike"
        assert args.requests == 2000
        assert args.replicas == 2
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadtest", "--profile", "tsunami"])

    def test_runs_and_reports(self, capsys):
        assert main(["loadtest", "--preset", "smoke", "--requests", "300"]) == 0
        out = capsys.readouterr().out
        assert "goodput" in out
        assert "latency p50" in out
        assert "gateway:" in out
        assert "admission:" in out
        assert "drains 2 | swaps 1" in out  # mid-run drain+swap ran

    def test_byte_identical_output_across_runs(self, capsys):
        argv = ["loadtest", "--preset", "smoke", "--requests", "300"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_load_seed_changes_output(self, capsys):
        base = ["loadtest", "--preset", "smoke", "--requests", "300"]
        main(base)
        first = capsys.readouterr().out
        main(base + ["--load-seed", "9"])
        second = capsys.readouterr().out
        assert first != second

    def test_hedging_can_be_disabled(self, capsys):
        argv = [
            "loadtest",
            "--preset",
            "smoke",
            "--requests",
            "300",
            "--hedge-after",
            "0",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "hedges 0 | hedge-wins 0" in out

    def test_verbose_prints_replicas(self, capsys):
        argv = [
            "loadtest",
            "--preset",
            "smoke",
            "--requests",
            "200",
            "--verbose",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "replica-0" in out
        assert "replica-1" in out


class TestIndexCommand:
    def test_parser_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["index", "search"])
        assert args.command == "index"
        assert args.index_command == "search"
        assert args.kind == "ivf"
        assert args.metric == "l1"
        assert args.k == 10
        args = parser.parse_args(["index", "build", "--out", "x"])
        assert args.out == "x"
        with pytest.raises(SystemExit):  # build requires --out
            parser.parse_args(["index", "build"])
        with pytest.raises(SystemExit):  # a subcommand is required
            parser.parse_args(["index"])

    def test_build_writes_verified_snapshot(self, tmp_path, capsys):
        out = tmp_path / "idx"
        argv = [
            "index", "build", "--preset", "smoke",
            "--kind", "ivf", "--nlist", "8", "--nprobe", "2",
            "--out", str(out),
        ]
        assert main(argv) == 0
        assert out.with_suffix(".npz").exists()
        assert out.with_suffix(".json").exists()
        assert "ivf index:" in capsys.readouterr().out
        from repro.index import load_index

        index = load_index(out)
        assert index.kind == "ivf" and index.ntotal > 0

    def test_search_from_snapshot_matches_fresh_build(
        self, tmp_path, capsys
    ):
        out = tmp_path / "idx"
        main([
            "index", "build", "--preset", "smoke",
            "--kind", "flat", "--out", str(out),
        ])
        capsys.readouterr()
        argv = ["index", "search", "--preset", "smoke", "--kind", "flat"]
        assert main(argv) == 0
        fresh = capsys.readouterr().out
        assert main(argv + ["--snapshot", str(out)]) == 0
        from_snapshot = capsys.readouterr().out
        assert fresh == from_snapshot
        assert "S_T(" in fresh

    def test_search_byte_identical_across_runs(self, capsys):
        argv = ["index", "search", "--preset", "smoke", "--kind", "ivf"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert first == capsys.readouterr().out

    def test_eval_reports_all_kinds(self, capsys):
        argv = ["index", "eval", "--preset", "smoke", "--nlist", "8", "--nprobe", "2"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "recall@10" in out
        for kind in ("flat", "ivf", "ivfpq"):
            assert f"{kind} | " in out


class TestStoreCommand:
    def test_parser_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["store", "build", "--out", "st"])
        assert args.command == "store"
        assert args.store_command == "build"
        assert args.shards == 2
        assert args.page_bytes == 4096
        args = parser.parse_args(["store", "chaos", "--dir", "w"])
        assert args.torn == 1 and args.flips == 2
        assert args.torn_manifest is False
        with pytest.raises(SystemExit):  # verify requires --dir
            parser.parse_args(["store", "verify"])
        with pytest.raises(SystemExit):  # a subcommand is required
            parser.parse_args(["store"])

    def test_build_then_verify_clean(self, tmp_path, capsys):
        out = tmp_path / "st"
        assert main(["store", "build", "--preset", "smoke", "--out", str(out)]) == 0
        built = capsys.readouterr().out
        assert "entity_table" in built
        assert (out / "manifest.json").exists()
        assert main(["store", "verify", "--preset", "smoke", "--dir", str(out)]) == 0
        assert "0 bad" in capsys.readouterr().out

    def test_scrub_flags_corruption(self, tmp_path, capsys):
        out = tmp_path / "st"
        main(["store", "build", "--preset", "smoke", "--out", str(out)])
        capsys.readouterr()
        target = next(iter(sorted(out.glob("entity_table-*.bin"))))
        blob = bytearray(target.read_bytes())
        blob[10] ^= 0xFF
        target.write_bytes(bytes(blob))
        assert main(["store", "scrub", "--preset", "smoke", "--dir", str(out)]) == 1
        scrubbed = capsys.readouterr().out
        assert "1 bad" in scrubbed
        assert "quarantined rows" in scrubbed

    def test_verify_refuses_torn_manifest(self, tmp_path, capsys):
        out = tmp_path / "st"
        main(["store", "build", "--preset", "smoke", "--out", str(out)])
        capsys.readouterr()
        manifest = out / "manifest.json"
        manifest.write_bytes(manifest.read_bytes()[:100])
        assert main(["store", "verify", "--preset", "smoke", "--dir", str(out)]) == 2
        assert "REFUSED" in capsys.readouterr().out

    def test_builds_are_byte_identical(self, tmp_path, capsys):
        for run in ("r1", "r2"):
            assert main(
                ["store", "build", "--preset", "smoke", "--out", str(tmp_path / run)]
            ) == 0
        capsys.readouterr()
        names = sorted(p.name for p in (tmp_path / "r1").iterdir())
        assert names == sorted(p.name for p in (tmp_path / "r2").iterdir())
        for name in names:
            assert (tmp_path / "r1" / name).read_bytes() == (
                tmp_path / "r2" / name
            ).read_bytes(), name

    def test_chaos_drill_recovers_and_is_deterministic(self, tmp_path, capsys):
        argv = [
            "store", "chaos", "--preset", "smoke",
            "--torn", "1", "--flips", "2", "--torn-manifest",
        ]
        assert main(argv + ["--dir", str(tmp_path / "w1")]) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--dir", str(tmp_path / "w2")]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "chaos drill: RECOVERED" in first
        assert "0 mismatches" in first
        assert "refused torn manifest" in first
