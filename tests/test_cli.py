"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import PRESETS, build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("stats", "pretrain", "classify", "align", "recommend", "complete"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_preset_choices(self):
        parser = build_parser()
        args = parser.parse_args(["stats", "--preset", "bench"])
        assert args.preset == "bench"
        with pytest.raises(SystemExit):
            parser.parse_args(["stats", "--preset", "huge"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_align_category_flag(self):
        args = build_parser().parse_args(["align", "--category", "2"])
        assert args.category == 2

    def test_complete_fraction_flag(self):
        args = build_parser().parse_args(["complete", "--fraction", "0.25"])
        assert args.fraction == pytest.approx(0.25)

    def test_presets_are_callables(self):
        for factory in PRESETS.values():
            config = factory()
            assert config.pkgm.dim >= 1


class TestCommands:
    def test_stats_runs(self, capsys):
        assert main(["stats", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Table IX" in out

    def test_pretrain_saves_server(self, tmp_path, capsys):
        path = tmp_path / "server.npz"
        assert main(["pretrain", "--preset", "smoke", "--save", str(path)]) == 0
        assert path.exists()
        from repro.core import PKGMServer

        server = PKGMServer.load(path)
        assert server.dim >= 1

    def test_complete_runs(self, capsys):
        assert main(["complete", "--preset", "smoke", "--fraction", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Hit@10" in out

    def test_classify_runs(self, capsys):
        assert main(["classify", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "pkgm-all" in out

    def test_align_runs(self, capsys):
        assert main(["align", "--preset", "smoke", "--category", "0"]) == 0
        out = capsys.readouterr().out
        assert "Hit@10" in out
        assert "pkgm-all" in out

    def test_recommend_runs(self, capsys):
        assert main(["recommend", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table VIII" in out
        assert "pkgm-r" in out

    def test_seed_override_changes_catalog(self, capsys):
        main(["stats", "--preset", "smoke", "--seed", "1"])
        first = capsys.readouterr().out
        main(["stats", "--preset", "smoke", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second


class TestLoadtest:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["loadtest"])
        assert args.command == "loadtest"
        assert args.profile == "spike"
        assert args.requests == 2000
        assert args.replicas == 2
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadtest", "--profile", "tsunami"])

    def test_runs_and_reports(self, capsys):
        assert main(["loadtest", "--preset", "smoke", "--requests", "300"]) == 0
        out = capsys.readouterr().out
        assert "goodput" in out
        assert "latency p50" in out
        assert "gateway:" in out
        assert "admission:" in out
        assert "drains 2 | swaps 1" in out  # mid-run drain+swap ran

    def test_byte_identical_output_across_runs(self, capsys):
        argv = ["loadtest", "--preset", "smoke", "--requests", "300"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_load_seed_changes_output(self, capsys):
        base = ["loadtest", "--preset", "smoke", "--requests", "300"]
        main(base)
        first = capsys.readouterr().out
        main(base + ["--load-seed", "9"])
        second = capsys.readouterr().out
        assert first != second

    def test_hedging_can_be_disabled(self, capsys):
        argv = [
            "loadtest",
            "--preset",
            "smoke",
            "--requests",
            "300",
            "--hedge-after",
            "0",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "hedges 0 | hedge-wins 0" in out

    def test_verbose_prints_replicas(self, capsys):
        argv = [
            "loadtest",
            "--preset",
            "smoke",
            "--requests",
            "200",
            "--verbose",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "replica-0" in out
        assert "replica-1" in out
