"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import PRESETS, build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("stats", "pretrain", "classify", "align", "recommend", "complete"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_preset_choices(self):
        parser = build_parser()
        args = parser.parse_args(["stats", "--preset", "bench"])
        assert args.preset == "bench"
        with pytest.raises(SystemExit):
            parser.parse_args(["stats", "--preset", "huge"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_align_category_flag(self):
        args = build_parser().parse_args(["align", "--category", "2"])
        assert args.category == 2

    def test_complete_fraction_flag(self):
        args = build_parser().parse_args(["complete", "--fraction", "0.25"])
        assert args.fraction == pytest.approx(0.25)

    def test_presets_are_callables(self):
        for factory in PRESETS.values():
            config = factory()
            assert config.pkgm.dim >= 1


class TestCommands:
    def test_stats_runs(self, capsys):
        assert main(["stats", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Table IX" in out

    def test_pretrain_saves_server(self, tmp_path, capsys):
        path = tmp_path / "server.npz"
        assert main(["pretrain", "--preset", "smoke", "--save", str(path)]) == 0
        assert path.exists()
        from repro.core import PKGMServer

        server = PKGMServer.load(path)
        assert server.dim >= 1

    def test_complete_runs(self, capsys):
        assert main(["complete", "--preset", "smoke", "--fraction", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Hit@10" in out

    def test_classify_runs(self, capsys):
        assert main(["classify", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "pkgm-all" in out

    def test_align_runs(self, capsys):
        assert main(["align", "--preset", "smoke", "--category", "0"]) == 0
        out = capsys.readouterr().out
        assert "Hit@10" in out
        assert "pkgm-all" in out

    def test_recommend_runs(self, capsys):
        assert main(["recommend", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table VIII" in out
        assert "pkgm-r" in out

    def test_seed_override_changes_catalog(self, capsys):
        main(["stats", "--preset", "smoke", "--seed", "1"])
        first = capsys.readouterr().out
        main(["stats", "--preset", "smoke", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second
