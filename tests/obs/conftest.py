"""Fixtures for the obs suite: a small, untrained PKGM server.

Observability accounting does not depend on trained weights, so the
server fixture skips pre-training (same rationale as the reliability
suite).
"""

import numpy as np
import pytest

from repro.core import KeyRelationSelector, PKGM, PKGMConfig, PKGMServer
from repro.kg import TripleStore


@pytest.fixture(scope="module")
def server():
    store = TripleStore(
        [
            (0, 0, 10),
            (0, 1, 11),
            (1, 0, 12),
            (1, 2, 13),
            (2, 1, 14),
            (2, 2, 15),
        ]
    )
    selector = KeyRelationSelector(store, {0: 0, 1: 0, 2: 1}, k=2)
    model = PKGM(16, 3, PKGMConfig(dim=4), rng=np.random.default_rng(0))
    return PKGMServer(model, selector)
