"""The pool workload runner: deterministic, worker-pool-scoped metrics."""

from repro.obs import run_pool_workload


class TestPoolWorkload:
    def test_two_runs_are_byte_identical(self):
        first_registry, first_lines = run_pool_workload(seed=0, requests=48)
        second_registry, second_lines = run_pool_workload(seed=0, requests=48)
        assert first_registry.snapshot() == second_registry.snapshot()
        assert first_lines == second_lines

    def test_per_worker_served_gauges_present(self):
        registry, _ = run_pool_workload(seed=0, requests=48)
        snapshot = registry.snapshot()
        workers = [
            key
            for key in snapshot
            if key.startswith("pool.worker.served{")
        ]
        assert len(workers) == 2
        assert sum(snapshot[key] for key in workers) == 48

    def test_scrub_metrics_surface(self):
        registry, _ = run_pool_workload(seed=0, requests=48)
        snapshot = registry.snapshot()
        assert snapshot["store.scrub.ticks"] > 0
        assert snapshot["store.scrub.pages"] > 0
        assert snapshot["pool.requests"] == 48

    def test_summary_lines_report_counts(self):
        _, lines = run_pool_workload(seed=0, requests=48)
        assert any("48 submitted" in line for line in lines)
        assert any(line.startswith("workers:") for line in lines)

    def test_seed_changes_traffic(self):
        first, _ = run_pool_workload(seed=0, requests=48)
        second, _ = run_pool_workload(seed=1, requests=48)
        assert first.snapshot() != second.snapshot()
