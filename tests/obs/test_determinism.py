"""Telemetry determinism: same seed + fault plan, same exported bytes.

The acceptance bar for the obs layer mirrors the repo-wide one: two
runs with identical seeds must export *byte-identical* telemetry —
metrics snapshots, Prometheus text, and Chrome trace JSON — even when
the run includes an injected shard crash and a bit-exact checkpoint
resume (the PR-2 chaos harness).
"""

import numpy as np

from repro.distributed import DistributedConfig, DistributedPKGMTrainer
from repro.obs import MetricsRegistry, Tracer, to_json, to_prometheus
from repro.reliability import CrashEvent, FaultPlan

from tests.test_robustness import _chaos_config, _chaos_model, _chaos_store, CHAOS_SEED


def _faulted_run(tmp_dir):
    """One crash+resume chaos run with full telemetry attached."""
    registry = MetricsRegistry()
    tracer = Tracer(seed=CHAOS_SEED)
    plan = FaultPlan(
        seed=CHAOS_SEED,
        crashes=(CrashEvent(epoch=4, batch=3, shard=1),),
    )
    trainer = DistributedPKGMTrainer(
        _chaos_model(),
        _chaos_config(),
        faults=plan,
        checkpoint_dir=tmp_dir,
        resume=False,
        registry=registry,
        tracer=tracer,
    )
    losses = trainer.train(_chaos_store())
    return registry, tracer, losses


class TestFaultedTelemetryDeterminism:
    def test_metrics_and_traces_are_byte_identical(self, tmp_path):
        reg_a, tracer_a, losses_a = _faulted_run(tmp_path / "a")
        reg_b, tracer_b, losses_b = _faulted_run(tmp_path / "b")
        assert np.allclose(losses_a, losses_b)
        assert to_prometheus(reg_a) == to_prometheus(reg_b)
        assert to_json(reg_a) == to_json(reg_b)
        assert tracer_a.export_chrome() == tracer_b.export_chrome()
        assert tracer_a.render_tree() == tracer_b.render_tree()

    def test_crash_and_recovery_visible_in_trace(self, tmp_path):
        registry, tracer, _ = _faulted_run(tmp_path / "run")
        tree = tracer.render_tree()
        assert "crash shard=1" in tree
        assert "restored epoch=4" in tree
        assert registry.snapshot()["dist.recoveries"] == 1

    def test_clean_run_telemetry_is_reproducible(self):
        def run():
            registry = MetricsRegistry()
            trainer = DistributedPKGMTrainer(
                _chaos_model(),
                DistributedConfig(
                    num_shards=4,
                    num_workers=4,
                    epochs=3,
                    batch_size=32,
                    learning_rate=0.02,
                    seed=CHAOS_SEED,
                ),
                registry=registry,
            )
            trainer.train(_chaos_store())
            return to_prometheus(registry)

        assert run() == run()


class TestWorkloadDeterminism:
    def test_metrics_workload_exports_identical_bytes(self):
        from repro.obs import run_metrics_workload

        reg_a, _ = run_metrics_workload(seed=0, requests=150)
        reg_b, _ = run_metrics_workload(seed=0, requests=150)
        assert to_prometheus(reg_a) == to_prometheus(reg_b)
        assert to_json(reg_a) == to_json(reg_b)

    def test_trace_workload_exports_identical_bytes(self):
        from repro.obs import profile_report, run_trace_workload

        _, tracer_a, prof_a, _ = run_trace_workload(seed=0, epochs=1)
        _, tracer_b, prof_b, _ = run_trace_workload(seed=0, epochs=1)
        assert tracer_a.export_chrome() == tracer_b.export_chrome()
        assert profile_report(prof_a) == profile_report(prof_b)
