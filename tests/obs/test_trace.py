"""Tests for step-clock span tracing and its exports."""

import json

import pytest

from repro.obs import SpanStore, Tracer
from repro.reliability import StepClock


@pytest.fixture
def tracer():
    return Tracer(clock=StepClock(), seed=3)


class TestSpans:
    def test_span_records_virtual_duration(self, tracer):
        with tracer.span("epoch") as span:
            tracer.clock.advance(5.0)
        assert span.duration == 5.0
        assert span.status == "ok"

    def test_nesting_sets_parent(self, tracer):
        with tracer.span("epoch") as outer:
            with tracer.span("batch") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_error_status_and_propagation(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("epoch") as span:
                raise RuntimeError("boom")
        assert span.status == "error"
        assert tracer.store.spans()[-1] is span

    def test_ids_are_seed_deterministic(self):
        def ids(seed):
            tracer = Tracer(clock=StepClock(), seed=seed)
            with tracer.span("a"):
                with tracer.span("b"):
                    pass
            return [span.span_id for span in tracer.store.spans()]

        assert ids(3) == ids(3)
        assert ids(3) != ids(4)

    def test_event_lands_on_current_span(self, tracer):
        with tracer.span("epoch") as span:
            tracer.clock.advance(2.0)
            tracer.event("crash shard=1")
        assert span.events == [(2.0, "crash shard=1")]

    def test_event_without_open_span_is_noop(self, tracer):
        tracer.event("orphan")  # must not raise
        assert tracer.store.spans() == []


class TestSpanStore:
    def test_ring_buffer_evicts_oldest(self):
        store = SpanStore(capacity=2)
        tracer = Tracer(clock=StepClock())
        tracer.store = store
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        assert [span.name for span in store.spans()] == ["b", "c"]
        assert store.dropped == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SpanStore(capacity=0)


class TestExport:
    def test_chrome_export_is_canonical_json(self, tracer):
        with tracer.span("epoch", epoch=0):
            tracer.clock.advance(1.0)
            tracer.event("marker")
        payload = json.loads(tracer.export_chrome())
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        assert complete[0]["name"] == "epoch"
        assert complete[0]["dur"] == 1.0
        assert complete[0]["args"]["epoch"] == 0
        assert instants[0]["name"] == "marker"

    def test_same_run_same_bytes(self):
        def run():
            tracer = Tracer(clock=StepClock(), seed=9)
            with tracer.span("a", k=1):
                tracer.clock.advance(3.0)
                with tracer.span("b"):
                    tracer.clock.advance(1.0)
            return tracer.export_chrome()

        assert run() == run()

    def test_render_tree_indents_children(self, tracer):
        with tracer.span("epoch", epoch=1):
            tracer.clock.advance(1.0)
            with tracer.span("batch"):
                tracer.clock.advance(2.0)
        tree = tracer.render_tree()
        lines = tree.splitlines()
        assert lines[0].startswith("epoch")
        assert "epoch=1" in lines[0]
        assert lines[1].startswith("  batch")

    def test_orphaned_spans_render_top_level(self):
        tracer = Tracer(clock=StepClock())
        tracer.store = SpanStore(capacity=1)
        with tracer.span("first") as first:
            pass
        with tracer.span("second", parent=first):
            pass
        # Capacity 1: "first" was evicted, so "second" has a dangling
        # parent_id and must render unindented rather than vanish.
        tree = tracer.render_tree()
        assert tree.splitlines() == [tree.splitlines()[0]]
        assert tree.startswith("second")
