"""Tests that the training and serving stacks feed the registry."""

import numpy as np
import pytest

from repro.core import (
    CachedPKGMServer,
    PKGM,
    PKGMConfig,
    PKGMTrainer,
    TrainerConfig,
)
from repro.distributed import ParameterServer
from repro.kg import TripleStore
from repro.obs import MetricsRegistry, Profiler, Tracer
from repro.reliability import ResilientPKGMServer


def _tiny_store(seed=0, num_entities=24, num_relations=3, num_triples=120):
    rng = np.random.default_rng(seed)
    triples = {
        (
            int(rng.integers(0, num_entities)),
            int(rng.integers(0, num_relations)),
            int(rng.integers(0, num_entities)),
        )
        for _ in range(num_triples)
    }
    return TripleStore(sorted(triples))


class TestTrainerInstrumentation:
    @pytest.fixture(scope="class")
    def run(self):
        store = _tiny_store()
        model = PKGM(24, 3, PKGMConfig(dim=4), rng=np.random.default_rng(0))
        registry = MetricsRegistry()
        tracer = Tracer(seed=0)
        profiler = Profiler()
        trainer = PKGMTrainer(
            model,
            TrainerConfig(epochs=2, batch_size=16, seed=0),
            registry=registry,
            tracer=tracer,
            profiler=profiler,
        )
        history = trainer.train(store)
        return registry, tracer, profiler, history

    def test_epoch_metrics(self, run):
        registry, _, _, history = run
        snapshot = registry.snapshot()
        assert snapshot["train.epochs"] == 2
        assert snapshot["train.batches"] > 0
        assert snapshot["train.examples"] > 0
        assert snapshot["train.epoch_loss"] == history.epoch_losses[-1]

    def test_epoch_spans(self, run):
        _, tracer, _, _ = run
        spans = [s for s in tracer.store.spans() if s.name == "train.epoch"]
        assert [s.attributes["epoch"] for s in spans] == [0, 1]
        assert all(s.duration > 0 for s in spans)

    def test_profiler_phases(self, run):
        _, _, profiler, _ = run
        assert list(profiler.phases) == [
            "negative_sampling",
            "forward",
            "backward",
            "optimizer",
        ]
        assert profiler.phases["forward"].ops > 0
        assert profiler.total_ops > 0

    def test_tracer_and_profiler_share_the_clock(self, run):
        _, tracer, profiler, _ = run
        assert profiler.clock is tracer.clock

    def test_untracked_trainer_still_works(self):
        store = _tiny_store()
        model = PKGM(24, 3, PKGMConfig(dim=4), rng=np.random.default_rng(0))
        history = PKGMTrainer(
            model, TrainerConfig(epochs=1, batch_size=16, seed=0)
        ).train(store)
        assert len(history.epoch_losses) == 1


class TestCacheInstrumentation:
    def test_counters_and_gauges(self, server):
        registry = MetricsRegistry()
        cached = CachedPKGMServer(server, capacity=2, registry=registry)
        cached.serve(0)
        cached.serve(0)
        cached.serve(1)
        snapshot = registry.snapshot()
        assert snapshot["cache.hits"] == 1
        assert snapshot["cache.misses"] == 2
        assert snapshot["cache.size"] == 2
        assert snapshot["cache.capacity"] == 2
        assert cached.hits == 1 and cached.misses == 2  # legacy views

    def test_refresh_counter_survives_stat_reset(self, server):
        registry = MetricsRegistry()
        cached = CachedPKGMServer(server, capacity=2, registry=registry)
        cached.serve(0)
        cached.refresh(server)
        snapshot = registry.snapshot()
        assert snapshot["cache.refreshes"] == 1
        assert snapshot["cache.misses"] == 0  # reset_stats=True default
        assert snapshot["cache.size"] == 0


class TestServingInstrumentation:
    def test_exactly_one_resolution_per_request(self, server):
        registry = MetricsRegistry()
        resilient = ResilientPKGMServer(server, registry=registry)
        resilient.serve(0)  # live
        resilient.serve(0)  # live (cache hit, still a live answer)
        resilient.serve(9999)  # unknown id -> fallback
        snapshot = registry.snapshot()
        resolved = sum(
            value
            for key, value in snapshot.items()
            if key.startswith("serving.resolution{")
        )
        assert resolved == snapshot["serving.requests"] == 3
        assert snapshot['serving.resolution{outcome="live"}'] == 2
        assert snapshot['serving.resolution{outcome="fallback-unknown"}'] == 1

    def test_stats_views_match_registry(self, server):
        registry = MetricsRegistry()
        resilient = ResilientPKGMServer(server, registry=registry)
        resilient.serve(0)
        assert resilient.stats.requests == 1
        assert registry.snapshot()["serving.requests"] == 1


class TestParameterServerInstrumentation:
    def test_rpc_counters_mirror_legacy_attributes(self):
        ps = ParameterServer(num_shards=2, learning_rate=0.01)
        ps.register("entities", np.zeros((6, 4)))
        ps.pull("entities", np.array([0, 1, 2]))
        ps.push("entities", np.array([0, 1]), np.ones((2, 4)))
        snapshot = ps.metrics.snapshot()
        assert ps.pull_count == 2  # rows 0..2 span both shards
        assert ps.push_count == 2
        assert snapshot["ps.pull.rows"] == 3
        assert snapshot["ps.push.rows"] == 2
        assert (
            snapshot['ps.pull.shard_rpcs{shard="0"}']
            + snapshot['ps.pull.shard_rpcs{shard="1"}']
            == ps.pull_count
        )

    def test_legacy_counter_assignment_resets_registry_too(self):
        ps = ParameterServer(num_shards=1, learning_rate=0.01)
        ps.register("entities", np.zeros((4, 2)))
        ps.pull("entities", np.array([0]))
        ps.pull_count = 0
        assert ps.metrics.snapshot()["ps.pulls"] == 0

    def test_shard_occupancy_gauges(self):
        ps = ParameterServer(num_shards=2, learning_rate=0.01)
        ps.register("entities", np.zeros((5, 2)))
        snapshot = ps.metrics.snapshot()
        assert snapshot['ps.shard.rows{shard="0"}'] == 3
        assert snapshot['ps.shard.rows{shard="1"}'] == 2
