"""Tests for the metrics registry: instruments, labels, snapshots."""

import pytest

from repro.obs import MetricsRegistry, counter_view
from repro.obs.metrics import _format_value, _label_suffix


class TestCounter:
    def test_inc_and_value(self):
        counter = MetricsRegistry().counter("requests")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("requests")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_reset(self):
        counter = MetricsRegistry().counter("requests")
        counter.inc(3)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_set_add_reset(self):
        gauge = MetricsRegistry().gauge("inflight")
        gauge.set(7)
        gauge.add(-2)
        assert gauge.value == 5
        gauge.reset()
        assert gauge.value == 0


class TestHistogram:
    def test_bucketing_is_cumulative(self):
        hist = MetricsRegistry().histogram("latency", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        snapshot = dict(hist.items())
        assert snapshot['latency_bucket{le="0.1"}'] == 1
        assert snapshot['latency_bucket{le="1.0"}'] == 3
        assert snapshot['latency_bucket{le="+Inf"}'] == 4
        assert snapshot["latency_count"] == 4
        assert snapshot["latency_sum"] == pytest.approx(6.05)

    def test_bounds_must_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("bad2", buckets=())

    def test_boundary_value_lands_in_its_bucket(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        hist.observe(1.0)  # le="1.0" is inclusive, Prometheus-style
        assert dict(hist.items())['h_bucket{le="1.0"}'] == 1


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        for bad in ("", "1abc", "a..b", "a-b"):
            with pytest.raises(ValueError):
                registry.counter(bad)

    def test_labels_are_canonicalized(self):
        registry = MetricsRegistry()
        one = registry.counter("rpc", labels={"shard": 1, "kind": "pull"})
        two = registry.counter("rpc", labels={"kind": "pull", "shard": 1})
        assert one is two
        assert one.labels == '{kind="pull",shard="1"}'

    def test_child_shares_store_with_prefix(self):
        root = MetricsRegistry()
        child = root.child("replica_0")
        child.counter("cache.hits").inc()
        assert root.snapshot() == {"replica_0.cache.hits": 1}

    def test_child_prefix_validated(self):
        with pytest.raises(ValueError):
            MetricsRegistry().child("bad prefix")

    def test_snapshot_is_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter("alpha").inc()
        assert list(registry.snapshot()) == ["alpha", "zeta"]

    def test_diff_drops_zero_deltas(self):
        registry = MetricsRegistry()
        a = registry.counter("a")
        registry.counter("b")
        before = registry.snapshot()
        a.inc(2)
        assert MetricsRegistry.diff(before, registry.snapshot()) == {"a": 2}

    def test_reset_zeroes_but_keeps_keys(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(5)
        registry.reset()
        assert registry.snapshot() == {"a": 0}


class TestFormatting:
    def test_ints_stay_ints(self):
        assert _format_value(3) == "3"
        assert _format_value(True) == "1"

    def test_floats_use_repr(self):
        assert _format_value(0.1) == "0.1"
        assert _format_value(2.0) == "2.0"

    def test_empty_labels(self):
        assert _label_suffix(None) == ""
        assert _label_suffix({}) == ""


class _Stats:
    """Minimal host for counter_view (mirrors the stats surfaces)."""

    requests = counter_view("serving.requests")

    def __init__(self, registry):
        self.metrics = registry
        self.requests = 0


class TestCounterView:
    def test_reads_and_writes_go_through_registry(self):
        registry = MetricsRegistry()
        stats = _Stats(registry)
        stats.requests += 1
        stats.requests += 1
        assert stats.requests == 2
        assert registry.snapshot()["serving.requests"] == 2

    def test_assignment_overwrites(self):
        registry = MetricsRegistry()
        stats = _Stats(registry)
        stats.requests = 7
        assert registry.snapshot()["serving.requests"] == 7

    def test_class_access_returns_descriptor(self):
        assert isinstance(_Stats.requests, counter_view)
