"""Tests for the per-phase profiler and tensor-op hook."""

import numpy as np
import pytest

from repro.nn import Tensor, get_op_hook, set_op_hook
from repro.obs import Profiler, profile_report
from repro.reliability import StepClock


@pytest.fixture
def profiler():
    return Profiler(clock=StepClock())


class TestPhaseAccounting:
    def test_steps_charged_to_open_phase(self, profiler):
        with profiler.phase("forward", units=32):
            profiler.clock.advance(2.0)
        totals = profiler.phases["forward"]
        assert totals.calls == 1
        assert totals.steps == 2.0
        assert totals.units == 32

    def test_nested_phase_pauses_parent(self, profiler):
        with profiler.phase("epoch"):
            profiler.clock.advance(1.0)
            with profiler.phase("batch"):
                profiler.clock.advance(4.0)
            profiler.clock.advance(1.0)
        assert profiler.phases["epoch"].steps == 2.0
        assert profiler.phases["batch"].steps == 4.0

    def test_phases_keep_first_open_order(self, profiler):
        for name in ("sampling", "forward", "sampling"):
            with profiler.phase(name):
                pass
        assert list(profiler.phases) == ["sampling", "forward"]
        assert profiler.phases["sampling"].calls == 2

    def test_reset(self, profiler):
        with profiler.phase("forward"):
            pass
        profiler.reset()
        assert profiler.phases == {}
        assert profiler.total_ops == 0


class TestOpHook:
    def test_ops_counted_and_attributed(self, profiler):
        with profiler:
            a = Tensor(np.ones((2, 2)))
            b = Tensor(np.ones((2, 2)))
            with profiler.phase("forward"):
                (a + b).sum()
        assert profiler.total_ops >= 2
        assert profiler.op_counts["add"] == 1
        assert profiler.phases["forward"].ops >= 2

    def test_hook_removed_after_exit(self, profiler):
        with profiler:
            pass
        assert get_op_hook() is None

    def test_previous_hook_restored(self, profiler):
        calls = []

        def outer_hook(op, data):
            calls.append(op)

        set_op_hook(outer_hook)
        try:
            with profiler:
                assert get_op_hook() is not None
            assert get_op_hook() is outer_hook
        finally:
            set_op_hook(None)

    def test_ops_outside_any_phase_only_hit_totals(self, profiler):
        with profiler:
            Tensor(np.ones(2)) + Tensor(np.ones(2))
        assert profiler.total_ops >= 1
        assert all(t.ops == 0 for t in profiler.phases.values())


class TestReport:
    def test_report_lists_phases_and_top_ops(self, profiler):
        with profiler:
            with profiler.phase("forward", units=8):
                profiler.clock.advance(1.0)
                Tensor(np.ones(2)) + Tensor(np.ones(2))
        report = profile_report(profiler)
        assert "phase | calls | steps | tensor-ops | units" in report
        assert "forward | calls=1 | steps=1 |" in report
        assert "add | 1" in report

    def test_top_ops_ranked_by_count_then_name(self, profiler):
        profiler.op_counts = {"b": 2, "a": 2, "c": 5}
        assert profiler.top_ops(2) == [("c", 5), ("a", 2)]
