"""Tests for the repro.obs deterministic observability layer."""
