"""Tests for the product alignment task (Tables VI-VII protocol)."""

import numpy as np
import pytest

from repro.data import build_alignment_dataset
from repro.nn import no_grad
from repro.tasks import ProductAlignmentTask
from repro.text import pair_service_payload


@pytest.fixture(scope="module")
def dataset(workbench):
    return build_alignment_dataset(
        workbench.catalog,
        workbench.titles,
        category_id=0,
        ranking_candidates=19,
        seed=3,
    )


@pytest.fixture(scope="module")
def task(workbench, dataset, config):
    return ProductAlignmentTask(
        dataset,
        workbench.tokenizer,
        workbench.encoder_config,
        server=workbench.server,
        pretrained_state=workbench.mlm_state,
        config=config.finetune_pair,
    )


@pytest.fixture(scope="module")
def base_result(task):
    return task.run("base")


class TestAlignmentTask:
    def test_result_structure(self, base_result, dataset):
        assert base_result.variant == "base"
        assert base_result.category_name == dataset.category_name
        assert 0.0 <= base_result.accuracy <= 1.0
        assert base_result.hits[1] <= base_result.hits[3] <= base_result.hits[10]

    def test_pkgm_all_runs(self, task):
        result = task.run("pkgm-all")
        assert result.variant == "pkgm-all"
        assert 0.0 <= result.accuracy <= 1.0

    def test_ranking_hits_bounded_by_candidates(self, base_result, dataset):
        # 20 candidates total: Hit@10 can be < 1 but Hit@k is sane.
        assert 0.0 <= base_result.hits[10] <= 1.0

    def test_row_formats(self, base_result):
        assert base_result.as_hit_row().startswith("base | ")
        float(base_result.as_accuracy_cell())  # parseable percentage

    def test_variant_requires_server(self, dataset, workbench, config):
        task = ProductAlignmentTask(
            dataset,
            workbench.tokenizer,
            workbench.encoder_config,
            server=None,
            config=config.finetune,
        )
        with pytest.raises(ValueError):
            task.run("pkgm-r")

    def test_unknown_split_rejected(self, task):
        with pytest.raises(ValueError):
            task.run("base", eval_split="validation")

    def test_dev_split_runs(self, task):
        result = task.run("base", eval_split="dev")
        assert 0.0 <= result.accuracy <= 1.0

    def test_all_split_pools_test_and_dev(self, task, dataset):
        pairs, cases = task._splits("all")
        assert len(pairs) == len(dataset.test_c) + len(dataset.dev_c)
        assert len(cases) == len(dataset.test_r) + len(dataset.dev_r)

    def test_ranking_uses_logits_not_probabilities(self, workbench, dataset, config):
        """Saturated sigmoids must not create artificial rank ties."""
        import numpy as np

        from repro.text import MiniBert, PairClassifier

        encoder = MiniBert(workbench.encoder_config, rng=np.random.default_rng(0))
        model = PairClassifier(encoder, rng=np.random.default_rng(0))
        # Blow up the head so probabilities saturate to exactly 1.0.
        with no_grad():
            model.classifier.weight.data *= 1e4
        case = dataset.test_r[0]
        task = ProductAlignmentTask(
            dataset,
            workbench.tokenizer,
            workbench.encoder_config,
            server=workbench.server,
            config=config.finetune,
        )
        candidates = [case.positive] + list(case.candidates)
        ids, mask, seg, _, _, _ = task._encode_pairs(candidates, "base")
        probs = model.predict_proba(ids, attention_mask=mask, segment_ids=seg)
        logits = model.predict_logits(ids, attention_mask=mask, segment_ids=seg)
        # Probabilities saturate (ties); logits stay distinct.
        assert len(np.unique(logits)) > len(np.unique(probs))


class TestPairPayload:
    def test_pair_payload_shape(self, workbench):
        items = workbench.catalog.items
        a = [items[0].entity_id, items[1].entity_id]
        b = [items[2].entity_id, items[3].entity_id]
        k, d = workbench.server.k, workbench.server.dim
        payload = pair_service_payload(workbench.server, a, b, "pkgm-all")
        assert payload.shape == (2, 4 * k, d)
        assert pair_service_payload(workbench.server, a, b, "base") is None

    def test_pair_payload_concatenates_sides(self, workbench):
        from repro.text import service_payload

        items = workbench.catalog.items
        a, b = [items[0].entity_id], [items[2].entity_id]
        pair = pair_service_payload(workbench.server, a, b, "pkgm-t")[0]
        side_a = service_payload(workbench.server, a, "pkgm-t")[0]
        side_b = service_payload(workbench.server, b, "pkgm-t")[0]
        k = workbench.server.k
        assert np.allclose(pair[:k], side_a)
        assert np.allclose(pair[k:], side_b)

    def test_length_mismatch_rejected(self, workbench):
        items = workbench.catalog.items
        with pytest.raises(ValueError):
            pair_service_payload(
                workbench.server,
                [items[0].entity_id],
                [items[1].entity_id, items[2].entity_id],
                "pkgm-all",
            )
