"""Tests for the NCF recommendation task (Table VIII protocol)."""

import numpy as np
import pytest

from repro.data import generate_interactions
from repro.nn import Tensor
from repro.tasks import NCF, NCFConfig, RecommendationTask


@pytest.fixture(scope="module")
def interactions(workbench, config):
    return generate_interactions(workbench.catalog, config.interactions)


@pytest.fixture(scope="module")
def task(workbench, interactions, config):
    entity_ids = [item.entity_id for item in workbench.catalog.items]
    return RecommendationTask(
        interactions, entity_ids, server=workbench.server, config=config.ncf
    )


class TestNCFModel:
    def make(self, service_dim=0):
        return NCF(
            num_users=10,
            num_items=20,
            config=NCFConfig(
                gmf_dim=4, mlp_dim=8, mlp_layers=(8, 4), service_dim=service_dim,
                epochs=1,
            ),
            rng=np.random.default_rng(0),
        )

    def test_logit_shape(self):
        model = self.make()
        logits = model(np.array([0, 1, 2]), np.array([5, 6, 7]))
        assert logits.shape == (3,)

    def test_predict_probabilities(self):
        model = self.make()
        probs = model.predict(np.array([0, 1]), np.array([2, 3]))
        assert np.all((probs > 0) & (probs < 1))

    def test_service_input_required_when_configured(self):
        model = self.make(service_dim=6)
        with pytest.raises(ValueError):
            model(np.array([0]), np.array([1]))

    def test_service_input_rejected_when_not_configured(self):
        model = self.make()
        with pytest.raises(ValueError):
            model(np.array([0]), np.array([1]), service=np.ones((1, 6)))

    def test_service_shape_validated(self):
        model = self.make(service_dim=6)
        with pytest.raises(ValueError):
            model(np.array([0]), np.array([1]), service=np.ones((1, 5)))

    def test_service_changes_prediction(self):
        model = self.make(service_dim=6)
        users, items = np.array([0]), np.array([1])
        p1 = model.predict(users, items, service=np.ones((1, 6)))
        p2 = model.predict(users, items, service=-np.ones((1, 6)))
        assert p1[0] != pytest.approx(p2[0])

    def test_misaligned_inputs_rejected(self):
        model = self.make()
        with pytest.raises(ValueError):
            model(np.array([0, 1]), np.array([1]))

    def test_gradients_reach_both_pathways(self):
        model = self.make()
        logits = model(np.array([0, 1]), np.array([2, 3]))
        logits.sum().backward()
        assert model.gmf_user.weight.grad is not None
        assert model.mlp_user.weight.grad is not None
        assert model.prediction.weight.grad is not None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NCFConfig(gmf_dim=0)
        with pytest.raises(ValueError):
            NCFConfig(mlp_layers=())
        with pytest.raises(ValueError):
            NCFConfig(negative_ratio=0)
        with pytest.raises(ValueError):
            NCFConfig(eval_negatives=0)
        with pytest.raises(ValueError):
            NCFConfig(service_dim=-1)


class TestRecommendationTask:
    def test_leave_one_out_sizes(self, task, interactions):
        assert len(task.heldout) == interactions.num_users
        assert len(task.train_pairs) == len(interactions.interactions) - len(
            task.heldout
        )

    def test_item_features_shapes(self, task, workbench):
        d = workbench.server.dim
        n = task.interactions.num_items
        assert task.item_features("base") is None
        assert task.item_features("pkgm-t").shape == (n, d)
        assert task.item_features("pkgm-r").shape == (n, d)
        assert task.item_features("pkgm-all").shape == (n, 2 * d)

    def test_condensed_feature_matches_equation_20(self, task, workbench):
        features = task.item_features("pkgm-all")
        entity = task.item_entity_ids[0]
        expected = workbench.server.serve(entity).condensed()
        assert np.allclose(features[0], expected)

    def test_run_base_metrics_structure(self, task):
        result = task.run("base")
        for k in (1, 3, 5, 10, 30):
            assert f"HR@{k}" in result.metrics
            assert f"NDCG@{k}" in result.metrics
        # Monotonicity in k.
        assert result.metrics["HR@1"] <= result.metrics["HR@10"]
        assert result.metrics["NDCG@1"] <= result.metrics["NDCG@30"]

    def test_hr1_equals_ndcg1(self, task):
        """Table VIII shows NDCG@1 == HR@1 (single-positive ranking)."""
        result = task.run("base")
        assert result.metrics["NDCG@1"] == pytest.approx(
            result.metrics["HR@1"] / 100 * 100
        )

    def test_learned_model_beats_chance(self, task, config):
        result = task.run("base")
        # Chance HR@10 with eval_negatives candidates.
        chance = 10 / (config.ncf.eval_negatives + 1)
        assert result.metrics["HR@10"] > chance

    def test_pkgm_variant_runs(self, task):
        result = task.run("pkgm-r")
        assert result.variant == "pkgm-r"

    def test_negative_sampling_avoids_observed(self, task):
        rng = np.random.default_rng(0)
        users = np.asarray([i.user_id for i in task.train_pairs[:50]])
        items = np.asarray([i.item_id for i in task.train_pairs[:50]])
        all_users, all_items, labels = task._with_negatives(users, items, 4, rng)
        negatives = all_items[labels == 0]
        negative_users = all_users[labels == 0]
        for user, item in zip(negative_users, negatives):
            assert item not in task._observed[int(user)]

    def test_eval_negative_sampling_excludes_observed(self, task):
        rng = np.random.default_rng(1)
        user = next(iter(task.heldout))
        negatives = task._sample_unobserved(user, 20, rng)
        assert len(set(negatives)) == 20
        assert not set(negatives) & task._observed[user]

    def test_too_many_negatives_raises(self, task):
        rng = np.random.default_rng(2)
        user = next(iter(task.heldout))
        with pytest.raises(ValueError):
            task._sample_unobserved(user, 10**6, rng)

    def test_entity_map_length_validated(self, interactions, workbench, config):
        with pytest.raises(ValueError):
            RecommendationTask(
                interactions, [0, 1, 2], server=workbench.server, config=config.ncf
            )

    def test_table_row_format(self, task):
        result = task.run("base")
        row = result.as_table_row()
        assert row.startswith("base | ")
        assert row.count("|") == 10
