"""Tests for the attribute-prediction extension task."""

import numpy as np
import pytest

from repro.core import PKGMConfig, TrainerConfig, pretrain_pkgm
from repro.tasks import AttributePredictionTask


@pytest.fixture(scope="module")
def task(workbench):
    return AttributePredictionTask(
        workbench.catalog, "brandIs", holdout_fraction=0.3, seed=0
    )


@pytest.fixture(scope="module")
def model(workbench, task):
    """PKGM trained WITHOUT the held-out attribute triples."""
    return pretrain_pkgm(
        task.observed,
        len(workbench.catalog.entities),
        len(workbench.catalog.relations),
        model_config=workbench.config.pkgm,
        trainer_config=workbench.config.pkgm_trainer,
        seed=0,
    )


class TestAttributePredictionTask:
    def test_holdout_partitions_relation_triples(self, workbench, task):
        total = len(
            workbench.catalog.store.triples_with_relation(task.relation_id)
        )
        observed = len(task.observed.triples_with_relation(task.relation_id))
        assert observed + len(task.test_cases) == total
        assert len(task.test_cases) == pytest.approx(total * 0.3, abs=2)

    def test_other_relations_untouched(self, workbench, task):
        for relation in workbench.catalog.store.relations():
            if relation == task.relation_id:
                continue
            assert len(task.observed.triples_with_relation(relation)) == len(
                workbench.catalog.store.triples_with_relation(relation)
            )

    def test_candidates_are_relation_values(self, workbench, task):
        for value in task.candidate_values:
            assert not workbench.catalog.entities.is_item(int(value))

    def test_majority_baseline_bounds(self, task):
        result = task.majority_baseline()
        assert 0.0 <= result.hit1 <= result.hit3 <= 1.0
        assert result.num_cases == len(task.test_cases)
        assert result.method == "majority"

    def test_pkgm_beats_chance(self, task, model):
        result = task.pkgm_prediction(model)
        chance = 3.0 / len(task.candidate_values)
        assert result.hit3 > chance
        assert result.hit3 >= result.hit1

    def test_pkgm_matches_majority_on_model_codes(self, workbench):
        """Model codes are per-product: the category majority baseline is
        near-useless, while PKGM can transfer the code from sibling
        listings of the same product through embedding similarity."""
        from repro.core import pretrain_pkgm as pretrain

        task = AttributePredictionTask(
            workbench.catalog, "modelIs", holdout_fraction=0.3, seed=0
        )
        model = pretrain(
            task.observed,
            len(workbench.catalog.entities),
            len(workbench.catalog.relations),
            model_config=workbench.config.pkgm,
            trainer_config=workbench.config.pkgm_trainer,
            seed=0,
        )
        majority = task.majority_baseline()
        pkgm = task.pkgm_prediction(model)
        assert pkgm.hit3 >= majority.hit3

    def test_row_format(self, task):
        row = task.majority_baseline().as_row()
        assert row.startswith("majority | brandIs | ")

    def test_validation(self, workbench):
        with pytest.raises(KeyError):
            AttributePredictionTask(workbench.catalog, "nope")
        with pytest.raises(ValueError):
            AttributePredictionTask(workbench.catalog, "brandIs", holdout_fraction=0.0)
