"""Session-scoped workbench for downstream-task tests (smoke preset)."""

import pytest

from repro.config import smoke_config
from repro.pipeline import build_workbench


@pytest.fixture(scope="session")
def config():
    return smoke_config()


@pytest.fixture(scope="session")
def workbench(config):
    return build_workbench(config, pretrain_mlm=True)
