"""Unit tests for shared fine-tuning helpers."""

import numpy as np
import pytest

from repro.tasks import FineTuneConfig, minibatches


class TestMinibatches:
    def test_covers_every_index_once(self):
        rng = np.random.default_rng(0)
        seen = np.concatenate(list(minibatches(103, 10, rng)))
        assert sorted(seen) == list(range(103))

    def test_batch_sizes(self):
        rng = np.random.default_rng(0)
        batches = list(minibatches(25, 10, rng))
        assert [len(b) for b in batches] == [10, 10, 5]

    def test_shuffled(self):
        rng = np.random.default_rng(1)
        first = np.concatenate(list(minibatches(50, 50, rng)))
        assert not np.array_equal(first, np.arange(50))

    def test_different_epochs_differ(self):
        rng = np.random.default_rng(2)
        a = np.concatenate(list(minibatches(40, 8, rng)))
        b = np.concatenate(list(minibatches(40, 8, rng)))
        assert not np.array_equal(a, b)


class TestFineTuneConfig:
    def test_defaults_valid(self):
        config = FineTuneConfig()
        assert config.epochs >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            FineTuneConfig(epochs=0)
        with pytest.raises(ValueError):
            FineTuneConfig(batch_size=0)
        with pytest.raises(ValueError):
            FineTuneConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            FineTuneConfig(max_length=2)
