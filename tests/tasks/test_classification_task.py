"""Tests for the item classification task (Table IV protocol)."""

import numpy as np
import pytest

from repro.data import build_classification_dataset
from repro.tasks import FineTuneConfig, ItemClassificationTask
from repro.text import service_payload, vectors_per_item


@pytest.fixture(scope="module")
def dataset(workbench):
    return build_classification_dataset(
        workbench.catalog, workbench.titles, max_per_category=60, seed=5
    )


@pytest.fixture(scope="module")
def task(workbench, dataset, config):
    return ItemClassificationTask(
        dataset,
        workbench.tokenizer,
        workbench.encoder_config,
        server=workbench.server,
        pretrained_state=workbench.mlm_state,
        config=config.finetune,
    )


@pytest.fixture(scope="module")
def base_result(task):
    return task.run("base")


@pytest.fixture(scope="module")
def pkgm_all_result(task):
    return task.run("pkgm-all")


class TestClassificationTask:
    def test_result_structure(self, base_result):
        assert base_result.variant == "base"
        assert 0.0 <= base_result.accuracy <= 1.0
        assert set(base_result.hits) == {1, 3, 10}
        assert base_result.hits[1] <= base_result.hits[3] <= base_result.hits[10]

    def test_accuracy_equals_hit_at_1(self, base_result):
        """With argmax prediction, accuracy must match Hit@1."""
        assert base_result.accuracy == pytest.approx(base_result.hits[1])

    def test_learns_above_chance(self, base_result, dataset):
        chance = 1.0 / dataset.num_categories
        assert base_result.accuracy > 2 * chance

    def test_pkgm_all_beats_base(self, base_result, pkgm_all_result):
        """The paper's headline claim at this task (Table IV)."""
        assert pkgm_all_result.hits[1] >= base_result.hits[1]

    def test_table_row_format(self, base_result):
        row = base_result.as_table_row()
        assert row.startswith("base | ")
        assert row.count("|") == 4

    def test_variant_requires_server(self, dataset, workbench, config):
        task = ItemClassificationTask(
            dataset,
            workbench.tokenizer,
            workbench.encoder_config,
            server=None,
            config=config.finetune,
        )
        with pytest.raises(ValueError):
            task.run("pkgm-all")

    def test_unknown_variant_rejected(self, task):
        with pytest.raises(ValueError):
            task.run("pkgm-xyz")

    def test_unknown_split_rejected(self, task):
        with pytest.raises(ValueError):
            task.run("base", eval_split="bogus")

    def test_deterministic_given_seed(self, task):
        a = task.run("base")
        b = task.run("base")
        assert a.accuracy == pytest.approx(b.accuracy)
        assert a.hits == b.hits


class TestServicePayloads:
    def test_vectors_per_item(self):
        assert vectors_per_item("base", 5) == 0
        assert vectors_per_item("pkgm-t", 5) == 5
        assert vectors_per_item("pkgm-r", 5) == 5
        assert vectors_per_item("pkgm-all", 5) == 10

    def test_payload_shapes(self, workbench):
        entities = [item.entity_id for item in workbench.catalog.items[:6]]
        k, d = workbench.server.k, workbench.server.dim
        assert service_payload(workbench.server, entities, "base") is None
        assert service_payload(workbench.server, entities, "pkgm-t").shape == (6, k, d)
        assert service_payload(workbench.server, entities, "pkgm-r").shape == (6, k, d)
        assert service_payload(workbench.server, entities, "pkgm-all").shape == (
            6,
            2 * k,
            d,
        )

    def test_payload_ordering_triple_first(self, workbench):
        entities = [workbench.catalog.items[0].entity_id]
        all_payload = service_payload(workbench.server, entities, "pkgm-all")[0]
        t_payload = service_payload(workbench.server, entities, "pkgm-t")[0]
        r_payload = service_payload(workbench.server, entities, "pkgm-r")[0]
        k = workbench.server.k
        assert np.allclose(all_payload[:k], t_payload)
        assert np.allclose(all_payload[k:], r_payload)
