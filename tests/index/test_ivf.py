"""IVF-Flat: determinism, recall vs Flat, probe accounting."""

import numpy as np
import pytest

from repro.index import FlatIndex, IVFFlatIndex

NLIST = 32
NPROBE = 4
K = 10


def build_ivf(base, metric="l2", nlist=NLIST, nprobe=NPROBE, seed=0):
    index = IVFFlatIndex(
        base.shape[1], nlist=nlist, nprobe=nprobe, metric=metric, seed=seed
    )
    index.build(base)
    return index


class TestDeterminism:
    def test_same_seed_builds_identical_state(self, clustered_catalog):
        base, _ = clustered_catalog
        a, b = build_ivf(base), build_ivf(base)
        arrays_a, meta_a = a.state()
        arrays_b, meta_b = b.state()
        assert meta_a == meta_b
        for name in arrays_a:
            assert np.array_equal(arrays_a[name], arrays_b[name]), name

    def test_same_seed_searches_identical(self, clustered_catalog):
        base, queries = clustered_catalog
        a, b = build_ivf(base), build_ivf(base)
        da, ia = a.search(queries, K)
        db, ib = b.search(queries, K)
        assert np.array_equal(da, db)
        assert np.array_equal(ia, ib)

    def test_different_seed_changes_partition(self, clustered_catalog):
        base, _ = clustered_catalog
        a = build_ivf(base, seed=0)
        b = build_ivf(base, seed=1)
        assert not np.array_equal(a.centroids, b.centroids)


class TestRecall:
    @pytest.mark.parametrize("metric", ["l1", "l2"])
    def test_recall_at_10_with_fewer_distances(self, clustered_catalog, metric):
        """The ISSUE acceptance bar: recall@10 >= 0.9 at >= 5x fewer
        distance computations than brute force, on the clustered
        catalog that models post-convergence category geometry."""
        base, queries = clustered_catalog
        flat = FlatIndex(base.shape[1], metric=metric)
        flat.add(base)
        ivf = build_ivf(base, metric=metric)

        _, exact_ids = flat.search(queries, K)
        _, ann_ids = ivf.search(queries, K)
        overlap = [
            len(set(exact_ids[q].tolist()) & set(ann_ids[q].tolist()))
            for q in range(len(queries))
        ]
        recall = sum(overlap) / (len(queries) * K)

        flat_dc = flat.metrics.counter(
            "index.search.distance_computations"
        ).value
        ivf_dc = ivf.metrics.counter(
            "index.search.distance_computations"
        ).value
        assert recall >= 0.9, f"recall@10 = {recall}"
        assert flat_dc >= 5 * ivf_dc, f"saving only {flat_dc / ivf_dc:.2f}x"

    def test_full_probe_is_exact(self, clustered_catalog):
        """nprobe == nlist scans every cell, so results match Flat."""
        base, queries = clustered_catalog
        flat = FlatIndex(base.shape[1], metric="l2")
        flat.add(base)
        ivf = build_ivf(base, metric="l2")
        exact_d, exact_i = flat.search(queries, K)
        ivf_d, ivf_i = ivf.search(queries, K, nprobe=NLIST)
        assert np.array_equal(ivf_i, exact_i)
        assert np.array_equal(ivf_d, exact_d)

    def test_more_probes_never_hurt(self, clustered_catalog):
        base, queries = clustered_catalog
        flat = FlatIndex(base.shape[1], metric="l2")
        flat.add(base)
        _, exact_ids = flat.search(queries, K)
        ivf = build_ivf(base, metric="l2")
        recalls = []
        for nprobe in (1, 4, NLIST):
            _, ann_ids = ivf.search(queries, K, nprobe=nprobe)
            overlap = sum(
                len(set(exact_ids[q].tolist()) & set(ann_ids[q].tolist()))
                for q in range(len(queries))
            )
            recalls.append(overlap / (len(queries) * K))
        assert recalls == sorted(recalls)
        assert recalls[-1] == 1.0


class TestMechanics:
    def test_every_vector_lands_in_exactly_one_cell(self, clustered_catalog):
        base, _ = clustered_catalog
        ivf = build_ivf(base)
        assert ivf.ntotal == len(base)
        all_ids = np.sort(np.concatenate(ivf._list_ids))
        assert np.array_equal(all_ids, np.arange(len(base)))

    def test_probe_cells_orders_by_centroid_distance(self, clustered_catalog):
        base, queries = clustered_catalog
        ivf = build_ivf(base)
        probes = ivf.probe_cells(queries[:4], 3)
        assert probes.shape == (4, 3)
        from repro.index import pairwise_distances

        centroid_d = pairwise_distances(queries[:4], ivf.centroids, "l2")
        for row in range(4):
            expected = np.lexsort(
                (np.arange(ivf.nlist), centroid_d[row])
            )[:3]
            assert np.array_equal(probes[row], expected)

    def test_search_counts_probe_and_scan_work(self, clustered_catalog):
        base, queries = clustered_catalog
        ivf = build_ivf(base)
        before = ivf.metrics.counter(
            "index.search.distance_computations"
        ).value
        ivf.search(queries[:5], K)
        spent = (
            ivf.metrics.counter("index.search.distance_computations").value
            - before
        )
        scanned = sum(
            sum(len(ivf._list_ids[c]) for c in row)
            for row in ivf.probe_cells(queries[:5], NPROBE)
        )
        # probe_cells above re-counts 5 * nlist, so subtract it once.
        assert spent == 5 * NLIST + scanned

    def test_validation(self, clustered_catalog):
        base, queries = clustered_catalog
        with pytest.raises(ValueError, match="nprobe"):
            IVFFlatIndex(4, nlist=8, nprobe=9)
        with pytest.raises(ValueError, match="nlist"):
            IVFFlatIndex(4, nlist=0)
        index = IVFFlatIndex(base.shape[1], nlist=8, nprobe=2)
        with pytest.raises(RuntimeError, match="train"):
            index.add(base)
        with pytest.raises(RuntimeError, match="train"):
            index.search(queries, 1)
        with pytest.raises(ValueError, match="nlist"):
            index.train(base[:4])
        index.build(base)
        with pytest.raises(ValueError, match="nprobe"):
            index.search(queries, 1, nprobe=99)
