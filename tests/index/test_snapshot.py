"""Snapshot roundtrips, byte-determinism, and corruption refusal."""

import numpy as np
import pytest

from repro.index import (
    FlatIndex,
    IVFFlatIndex,
    IVFPQIndex,
    IndexSnapshotError,
    load_index,
    save_index,
)

K = 5


def build(kind, base):
    dim = base.shape[1]
    if kind == "flat":
        index = FlatIndex(dim, metric="l1")
        index.add(base)
    elif kind == "ivf":
        index = IVFFlatIndex(dim, nlist=16, nprobe=4, metric="l1")
        index.build(base)
    else:
        index = IVFPQIndex(dim, nlist=16, nprobe=4, m=8, ksub=16, metric="l1")
        index.build(base)
    return index


@pytest.mark.parametrize("kind", ["flat", "ivf", "ivfpq"])
class TestRoundtrip:
    def test_search_results_survive_reload(
        self, tmp_path, clustered_catalog, kind
    ):
        base, queries = clustered_catalog
        index = build(kind, base)
        manifest = save_index(index, tmp_path / "idx")
        assert manifest.exists()
        loaded = load_index(tmp_path / "idx")
        assert loaded.kind == kind
        assert loaded.ntotal == index.ntotal
        d0, i0 = index.search(queries, K)
        d1, i1 = loaded.search(queries, K)
        assert np.array_equal(d0, d1)
        assert np.array_equal(i0, i1)

    def test_same_seed_snapshots_are_byte_identical(
        self, tmp_path, clustered_catalog, kind
    ):
        """Two independent same-seed builds must write identical bytes —
        the property tools/check.sh gates on.  The payload basename is
        embedded in the manifest, so both runs use the same one."""
        base, _ = clustered_catalog
        for run in ("r1", "r2"):
            (tmp_path / run).mkdir()
            save_index(build(kind, base), tmp_path / run / "idx")
        for suffix in (".npz", ".json"):
            a = (tmp_path / "r1" / "idx").with_suffix(suffix).read_bytes()
            b = (tmp_path / "r2" / "idx").with_suffix(suffix).read_bytes()
            assert a == b, f"{kind}{suffix} differs between same-seed builds"


class TestRefusal:
    @pytest.fixture()
    def saved(self, tmp_path, clustered_catalog):
        base, _ = clustered_catalog
        save_index(build("ivf", base), tmp_path / "idx")
        return tmp_path / "idx"

    def test_corrupted_payload_is_refused(self, saved):
        payload = saved.with_suffix(".npz")
        blob = bytearray(payload.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        payload.write_bytes(bytes(blob))
        with pytest.raises(IndexSnapshotError, match="checksum"):
            load_index(saved)

    def test_missing_manifest_is_refused(self, saved):
        saved.with_suffix(".json").unlink()
        with pytest.raises(IndexSnapshotError, match="manifest"):
            load_index(saved)

    def test_missing_payload_is_refused(self, saved):
        saved.with_suffix(".npz").unlink()
        with pytest.raises(IndexSnapshotError, match="payload"):
            load_index(saved)

    def test_garbled_manifest_is_refused(self, saved):
        saved.with_suffix(".json").write_text("{not json")
        with pytest.raises(IndexSnapshotError, match="unreadable"):
            load_index(saved)

    def test_unknown_kind_is_refused(self, saved):
        import json

        manifest_path = saved.with_suffix(".json")
        manifest = json.loads(manifest_path.read_text())
        manifest["kind"] = "hnsw"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(IndexSnapshotError, match="unknown index kind"):
            load_index(saved)

    def test_nothing_saved_is_refused(self, tmp_path):
        with pytest.raises(IndexSnapshotError, match="manifest"):
            load_index(tmp_path / "never-written")

    def test_truncated_payload_is_refused(self, saved):
        """Torn write: the payload stops mid-file.  The checksum gate
        must refuse it before any array is materialized."""
        payload = saved.with_suffix(".npz")
        blob = payload.read_bytes()
        payload.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(IndexSnapshotError, match="checksum"):
            load_index(saved)

    def test_post_checksum_bit_flip_is_refused(self, saved):
        """Bit rot after save: one flipped bit anywhere in the payload
        (here near the tail, past where headers would mask it) must
        fail the manifest checksum."""
        payload = saved.with_suffix(".npz")
        blob = bytearray(payload.read_bytes())
        blob[-3] ^= 0x01
        payload.write_bytes(bytes(blob))
        with pytest.raises(IndexSnapshotError, match="checksum"):
            load_index(saved)

    def test_refusal_leaves_no_partial_state(self, saved, tmp_path):
        """A refused load mutates nothing on disk — no temp files, no
        partially written artifacts a retry could trip over."""
        payload = saved.with_suffix(".npz")
        blob = payload.read_bytes()
        payload.write_bytes(blob[: len(blob) // 2])
        before = sorted(p.name for p in tmp_path.iterdir())
        with pytest.raises(IndexSnapshotError):
            load_index(saved)
        assert sorted(p.name for p in tmp_path.iterdir()) == before
