"""Shared fixtures for the retrieval-index suite.

The *clustered catalog* models the geometry retrieval serves in
production: item embeddings concentrated around category centroids
(the mechanism :mod:`repro.analysis.embeddings` measures).  Queries
are fresh draws from the same mixture — held-out "inferred tails".
"""

import numpy as np
import pytest

DIM = 16
N_BASE = 1200
N_QUERIES = 32
N_CLUSTERS = 24


@pytest.fixture(scope="session")
def clustered_catalog():
    """(base_vectors, query_vectors): a seeded category-clustered table."""
    rng = np.random.default_rng(42)
    centers = rng.normal(size=(N_CLUSTERS, DIM))
    base = (
        centers[rng.integers(0, N_CLUSTERS, size=N_BASE)]
        + 0.35 * rng.normal(size=(N_BASE, DIM))
    )
    queries = (
        centers[rng.integers(0, N_CLUSTERS, size=N_QUERIES)]
        + 0.35 * rng.normal(size=(N_QUERIES, DIM))
    )
    return base, queries


@pytest.fixture(scope="session")
def small_server():
    """An untrained smoke-scale PKGMServer (weights are seed-determined)."""
    from repro.config import smoke_config
    from repro.core import KeyRelationSelector, PKGM, PKGMServer
    from repro.data import generate_catalog

    config = smoke_config()
    catalog = generate_catalog(config.catalog)
    item_to_category = {
        item.entity_id: item.category_id for item in catalog.items
    }
    selector = KeyRelationSelector(
        catalog.store, item_to_category, k=config.key_relations
    )
    model = PKGM(
        len(catalog.entities),
        len(catalog.relations),
        config.pkgm,
        rng=np.random.default_rng(config.seed),
    )
    return PKGMServer(model, selector)
