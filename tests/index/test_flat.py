"""FlatIndex: exactness, blocking invariance, deterministic ties."""

import numpy as np
import pytest

from repro.index import FlatIndex, batch_top_k, pairwise_distances, top_k


def naive_top_k(queries, base, ids, metric, k):
    """Reference top-k: full matrix + per-row (distance, id) lexsort."""
    distances = pairwise_distances(queries, base, metric)
    out_d = np.full((len(queries), k), np.inf)
    out_i = np.full((len(queries), k), -1, dtype=np.int64)
    for row in range(len(queries)):
        order = np.lexsort((ids, distances[row]))[:k]
        out_d[row, : len(order)] = distances[row][order]
        out_i[row, : len(order)] = ids[order]
    return out_d, out_i


class TestPairwiseDistances:
    def test_l1_matches_definition(self):
        rng = np.random.default_rng(0)
        q, b = rng.normal(size=(3, 5)), rng.normal(size=(7, 5))
        expected = np.abs(q[:, None, :] - b[None, :, :]).sum(axis=2)
        assert np.array_equal(pairwise_distances(q, b, "l1"), expected)

    def test_l2_matches_norm(self):
        rng = np.random.default_rng(1)
        q, b = rng.normal(size=(3, 5)), rng.normal(size=(7, 5))
        expected = np.linalg.norm(q[:, None, :] - b[None, :, :], axis=2)
        assert np.allclose(pairwise_distances(q, b, "l2"), expected)

    def test_rejects_unknown_metric(self):
        with pytest.raises(ValueError, match="metric"):
            pairwise_distances(np.zeros((1, 2)), np.zeros((1, 2)), "cosine")


class TestTopK:
    def test_ties_break_by_id(self):
        distances = np.asarray([2.0, 1.0, 1.0, 3.0])
        ids = np.asarray([10, 7, 3, 1], dtype=np.int64)
        d, i = top_k(distances, ids, 3)
        assert list(i) == [3, 7, 10]
        assert list(d) == [1.0, 1.0, 2.0]

    def test_pads_when_short(self):
        d, i = top_k(np.asarray([5.0]), np.asarray([2], dtype=np.int64), 3)
        assert list(i) == [2, -1, -1]
        assert d[0] == 5.0 and np.isinf(d[1]) and np.isinf(d[2])

    def test_batch_matches_single(self):
        rng = np.random.default_rng(3)
        distances = rng.integers(0, 5, size=(6, 20)).astype(np.float64)
        ids = np.broadcast_to(
            rng.permutation(20).astype(np.int64), (6, 20)
        ).copy()
        bd, bi = batch_top_k(distances, ids, 7)
        for row in range(6):
            sd, si = top_k(distances[row], ids[row], 7)
            assert np.array_equal(bd[row], sd)
            assert np.array_equal(bi[row], si)


class TestFlatIndex:
    @pytest.mark.parametrize("metric", ["l1", "l2"])
    def test_exact_against_reference(self, clustered_catalog, metric):
        base, queries = clustered_catalog
        index = FlatIndex(base.shape[1], metric=metric, block_size=100)
        index.add(base)
        d, i = index.search(queries, 10)
        ids = np.arange(len(base), dtype=np.int64)
        ref_d, ref_i = naive_top_k(queries, base, ids, metric, 10)
        assert np.array_equal(i, ref_i)
        assert np.array_equal(d, ref_d)

    def test_block_size_does_not_change_results(self, clustered_catalog):
        base, queries = clustered_catalog
        results = []
        for block_size in (1, 37, 512, 10_000):
            index = FlatIndex(base.shape[1], block_size=block_size)
            index.add(base)
            results.append(index.search(queries, 5))
        for d, i in results[1:]:
            assert np.array_equal(d, results[0][0])
            assert np.array_equal(i, results[0][1])

    def test_counts_queries_and_distances(self, clustered_catalog):
        base, queries = clustered_catalog
        index = FlatIndex(base.shape[1], block_size=128)
        index.add(base)
        index.search(queries, 3)
        snap = index.metrics.snapshot()
        assert snap["index.search.queries"] == len(queries)
        assert snap["index.search.distance_computations"] == len(queries) * len(base)
        assert snap["index.size"] == len(base)

    def test_custom_ids_are_returned(self):
        rng = np.random.default_rng(5)
        base = rng.normal(size=(20, 4))
        ids = (np.arange(20, dtype=np.int64) * 3) + 100
        index = FlatIndex(4)
        index.add(base, ids)
        _, i = index.search(base[:2], 1)
        assert list(i[:, 0]) == [100, 103]

    def test_pads_small_tables(self):
        index = FlatIndex(3)
        index.add(np.zeros((2, 3)))
        d, i = index.search(np.zeros((1, 3)), 5)
        assert list(i[0]) == [0, 1, -1, -1, -1]
        assert np.isinf(d[0][2:]).all()

    def test_validation(self):
        with pytest.raises(ValueError, match="dim"):
            FlatIndex(0)
        with pytest.raises(ValueError, match="metric"):
            FlatIndex(4, metric="cosine")
        index = FlatIndex(4)
        with pytest.raises(ValueError, match="expected"):
            index.add(np.zeros((3, 5)))
        with pytest.raises(ValueError, match="ids"):
            index.add(np.zeros((3, 4)), np.arange(2))
        with pytest.raises(ValueError, match="k"):
            index.search(np.zeros((1, 4)), 0)
