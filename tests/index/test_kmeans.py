"""Seeded k-means: determinism, empty-cluster repair, metric updates."""

import numpy as np
import pytest

from repro.index import kmeans
from repro.index.kmeans import _fix_empty_clusters


class TestKMeans:
    def test_same_seed_bit_identical(self, clustered_catalog):
        base, _ = clustered_catalog
        a = kmeans(base, 8, seed=3)
        b = kmeans(base, 8, seed=3)
        assert np.array_equal(a.centroids, b.centroids)
        assert np.array_equal(a.assignments, b.assignments)
        assert a.inertia == b.inertia
        assert a.iterations == b.iterations

    def test_different_seeds_differ(self, clustered_catalog):
        base, _ = clustered_catalog
        a = kmeans(base, 8, seed=0)
        b = kmeans(base, 8, seed=1)
        assert not np.array_equal(a.centroids, b.centroids)

    def test_recovers_separated_clusters(self):
        rng = np.random.default_rng(0)
        centers = np.asarray([[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]])
        base = np.concatenate(
            [c + 0.1 * rng.normal(size=(30, 2)) for c in centers]
        )
        # seed=1 avoids the split-cluster local optimum seed=0 lands in
        result = kmeans(base, 3, seed=1)
        truth = np.repeat(np.arange(3), 30)
        # Every true cluster maps onto exactly one learned centroid.
        for cluster in range(3):
            learned = result.assignments[truth == cluster]
            assert len(set(learned.tolist())) == 1
        assert result.inertia < 30.0

    def test_no_cluster_left_empty(self, clustered_catalog):
        base, _ = clustered_catalog
        result = kmeans(base, 40, seed=7)
        counts = np.bincount(result.assignments, minlength=40)
        assert (counts > 0).all()

    @pytest.mark.parametrize("metric", ["l1", "l2"])
    def test_inertia_matches_assignments(self, clustered_catalog, metric):
        from repro.index import pairwise_distances

        base, _ = clustered_catalog
        result = kmeans(base, 6, metric=metric, seed=2)
        distances = pairwise_distances(base, result.centroids, metric)
        expected = distances[np.arange(len(base)), result.assignments].sum()
        assert result.inertia == pytest.approx(expected)

    def test_l1_uses_median_centroids(self):
        # The outlier at 100 lands in the low cluster {0, 1, 2, 100}:
        # the L1 centroid is its median (1.5), where a mean update
        # would be dragged to 25.75.
        base = np.asarray(
            [[0.0], [1.0], [2.0], [100.0], [200.0], [201.0], [202.0]]
        )
        result = kmeans(base, 2, metric="l1", iters=50, seed=0)
        centroid_values = sorted(float(c[0]) for c in result.centroids)
        assert centroid_values[0] == pytest.approx(1.5)
        assert centroid_values[1] == pytest.approx(201.0)

    def test_validation(self):
        base = np.zeros((5, 2))
        with pytest.raises(ValueError, match="k="):
            kmeans(base, 6)
        with pytest.raises(ValueError, match="metric"):
            kmeans(base, 2, metric="cosine")
        with pytest.raises(ValueError, match="iters"):
            kmeans(base, 2, iters=0)
        with pytest.raises(ValueError, match="vectors"):
            kmeans(np.zeros(5), 2)


class TestFixEmptyClusters:
    def test_moves_worst_served_point(self):
        # Cluster 2 is empty; point 1 is farthest from its centroid.
        assignments = np.asarray([0, 0, 1, 1], dtype=np.int64)
        distances = np.asarray(
            [
                [0.1, 5.0, 9.0],
                [4.0, 5.0, 9.0],
                [5.0, 0.2, 9.0],
                [5.0, 0.3, 9.0],
            ]
        )
        fixed = _fix_empty_clusters(assignments, distances, 3)
        assert list(fixed) == [0, 2, 1, 1]

    def test_does_not_steal_singletons(self):
        # Cluster 1's only member is the globally worst-served point,
        # but stealing it would just move the hole to cluster 1.
        assignments = np.asarray([0, 0, 1], dtype=np.int64)
        distances = np.asarray(
            [
                [0.1, 9.0, 9.0],
                [3.0, 9.0, 9.0],
                [9.0, 8.0, 9.0],
            ]
        )
        fixed = _fix_empty_clusters(assignments, distances, 3)
        assert list(fixed) == [0, 2, 1]
