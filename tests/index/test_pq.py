"""Product quantization: codes, ADC identity, compression, IVF-PQ."""

import numpy as np
import pytest

from repro.index import FlatIndex, IVFPQIndex, ProductQuantizer, pairwise_distances

M = 8
KSUB = 32
K = 10


def trained_pq(base, m=M, ksub=KSUB, seed=0):
    pq = ProductQuantizer(base.shape[1], m=m, ksub=ksub, seed=seed)
    pq.train(base)
    return pq


class TestProductQuantizer:
    def test_shapes_and_dtypes(self, clustered_catalog):
        base, _ = clustered_catalog
        pq = trained_pq(base)
        assert pq.codebooks.shape == (M, KSUB, base.shape[1] // M)
        codes = pq.encode(base[:50])
        assert codes.shape == (50, M)
        assert codes.dtype == np.uint8
        decoded = pq.decode(codes)
        assert decoded.shape == (50, base.shape[1])

    def test_same_seed_bit_identical(self, clustered_catalog):
        base, queries = clustered_catalog
        a, b = trained_pq(base), trained_pq(base)
        assert np.array_equal(a.codebooks, b.codebooks)
        assert np.array_equal(a.encode(queries), b.encode(queries))

    def test_reconstruction_error_bounded(self, clustered_catalog):
        """Quantization must beat the trivial one-centroid quantizer by
        a wide margin: mean reconstruction error < 35% of the mean
        distance to the global centroid."""
        base, _ = clustered_catalog
        pq = trained_pq(base)
        decoded = pq.decode(pq.encode(base))
        err = np.linalg.norm(base - decoded, axis=1).mean()
        baseline = np.linalg.norm(base - base.mean(axis=0), axis=1).mean()
        assert err < 0.35 * baseline, f"{err=} vs {baseline=}"

    def test_encode_picks_nearest_codeword(self, clustered_catalog):
        base, _ = clustered_catalog
        pq = trained_pq(base)
        sample = base[:20]
        codes = pq.encode(sample)
        subs = sample.reshape(len(sample), M, -1)
        for j in range(M):
            distances = pairwise_distances(subs[:, j, :], pq.codebooks[j], "l2")
            assert np.array_equal(codes[:, j], np.argmin(distances, axis=1))

    @pytest.mark.parametrize("metric", ["l1", "l2"])
    def test_adc_equals_distance_to_reconstruction(
        self, clustered_catalog, metric
    ):
        """ADC's defining identity: table lookups reproduce the exact
        distance between the raw query and the decoded candidate."""
        base, queries = clustered_catalog
        pq = trained_pq(base)
        codes = pq.encode(base[:200])
        decoded = pq.decode(codes)
        tables = pq.adc_tables(queries, metric)
        expected = pairwise_distances(queries, decoded, metric)
        for q in range(len(queries)):
            adc = pq.adc_distances(tables[q], codes, metric)
            assert np.allclose(adc, expected[q])

    def test_validation(self, clustered_catalog):
        base, _ = clustered_catalog
        with pytest.raises(ValueError, match="m must divide"):
            ProductQuantizer(16, m=5)
        with pytest.raises(ValueError, match="ksub"):
            ProductQuantizer(16, m=4, ksub=300)
        pq = ProductQuantizer(16, m=4, ksub=64)
        with pytest.raises(RuntimeError, match="train"):
            pq.encode(base)
        with pytest.raises(RuntimeError, match="train"):
            pq.decode(np.zeros((1, 4), dtype=np.uint8))
        with pytest.raises(ValueError, match="ksub"):
            pq.train(base[:10])


class TestIVFPQIndex:
    @pytest.fixture(scope="class")
    def built(self, clustered_catalog):
        base, _ = clustered_catalog
        index = IVFPQIndex(
            base.shape[1], nlist=32, nprobe=6, m=M, ksub=KSUB, metric="l2"
        )
        index.build(base)
        return index

    def test_compression_ratio(self, clustered_catalog, built):
        base, _ = clustered_catalog
        flat = FlatIndex(base.shape[1])
        # ISSUE acceptance bar: <= 0.35x the bytes/vector of Flat.
        assert built.bytes_per_vector <= 0.35 * flat.bytes_per_vector

    def test_same_seed_builds_identical(self, clustered_catalog, built):
        base, queries = clustered_catalog
        twin = IVFPQIndex(
            base.shape[1], nlist=32, nprobe=6, m=M, ksub=KSUB, metric="l2"
        )
        twin.build(base)
        arrays_a, meta_a = built.state()
        arrays_b, meta_b = twin.state()
        assert meta_a == meta_b
        for name in arrays_a:
            assert np.array_equal(arrays_a[name], arrays_b[name]), name
        da, ia = built.search(queries, K)
        db, ib = twin.search(queries, K)
        assert np.array_equal(da, db)
        assert np.array_equal(ia, ib)

    def test_recall_beats_chance_with_compression(
        self, clustered_catalog, built
    ):
        """Compressed search still lands most of the true top-10 while
        scanning a fraction of the table."""
        base, queries = clustered_catalog
        flat = FlatIndex(base.shape[1], metric="l2")
        flat.add(base)
        _, exact_ids = flat.search(queries, K)
        _, ann_ids = built.search(queries, K)
        overlap = sum(
            len(set(exact_ids[q].tolist()) & set(ann_ids[q].tolist()))
            for q in range(len(queries))
        )
        recall = overlap / (len(queries) * K)
        assert recall >= 0.6, f"recall@10 = {recall}"

    def test_untrained_guards(self, clustered_catalog):
        base, queries = clustered_catalog
        index = IVFPQIndex(base.shape[1], nlist=8, m=M, ksub=KSUB)
        with pytest.raises(RuntimeError, match="train"):
            index.add(base)
        with pytest.raises(RuntimeError, match="train"):
            index.search(queries, 1)
        with pytest.raises(RuntimeError, match="snapshot"):
            index.state()
