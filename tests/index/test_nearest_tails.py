"""Server retrieval surface: nearest_tails, existence scores, cache."""

import numpy as np
import pytest

from repro.core import CachedPKGMServer
from repro.index import FlatIndex, IVFFlatIndex

K = 5


def brute_force_tails(server, head, relation, k):
    """Reference ranking: L1 from S_T to every entity, (distance, id)."""
    query = server.triple_service(
        np.asarray([head]), np.asarray([relation])
    )[0]
    distances = np.abs(server._entity_table - query).sum(axis=1)
    order = np.lexsort((np.arange(server.num_entities), distances))[:k]
    return distances[order], order


class TestNearestTails:
    def test_agrees_with_brute_force(self, small_server):
        for head, relation in [(0, 0), (3, 1), (7, 2)]:
            expected_d, expected_i = brute_force_tails(
                small_server, head, relation, K
            )
            d, i = small_server.nearest_tails(head, relation, k=K)
            assert np.array_equal(i, expected_i)
            assert np.array_equal(d, expected_d)

    def test_batch_matches_singles(self, small_server):
        heads, relations = [0, 3, 7], [0, 1, 2]
        batch_d, batch_i = small_server.nearest_tails_batch(
            heads, relations, k=K
        )
        assert batch_d.shape == (3, K) and batch_i.shape == (3, K)
        for row, (head, relation) in enumerate(zip(heads, relations)):
            d, i = small_server.nearest_tails(head, relation, k=K)
            assert np.array_equal(batch_d[row], d)
            assert np.array_equal(batch_i[row], i)

    def test_first_call_builds_flat_l1_index(self, small_server):
        small_server._tail_index = None
        assert small_server.tail_index is None
        small_server.nearest_tails(0, 0, k=1)
        index = small_server.tail_index
        assert isinstance(index, FlatIndex)
        assert index.metric == "l1"
        assert index.ntotal == small_server.num_entities

    def test_explicit_ivf_build_is_used(self, small_server):
        index = small_server.build_tail_index(
            kind="ivf", metric="l1", nlist=8, nprobe=8, seed=0
        )
        assert isinstance(index, IVFFlatIndex)
        assert small_server.tail_index is index
        # nprobe == nlist scans everything, so results stay exact.
        expected_d, expected_i = brute_force_tails(small_server, 2, 1, K)
        d, i = small_server.nearest_tails(2, 1, k=K)
        assert np.array_equal(i, expected_i)
        assert np.array_equal(d, expected_d)
        small_server._tail_index = None

    def test_entity_ids_restrict_the_corpus(self, small_server):
        corpus = np.asarray([1, 3, 5, 7, 9], dtype=np.int64)
        small_server.build_tail_index(entity_ids=corpus)
        _, ids = small_server.nearest_tails(0, 0, k=3)
        assert set(ids.tolist()) <= set(corpus.tolist())
        small_server._tail_index = None

    def test_unknown_kind_rejected(self, small_server):
        with pytest.raises(ValueError, match="kind"):
            small_server.build_tail_index(kind="hnsw")


class TestExistenceScores:
    def test_batch_matches_scalar(self, small_server):
        entity_ids = [0, 1, 2, 5]
        relations = [0, 1, 0, 2]
        batch = small_server.relation_existence_scores(entity_ids, relations)
        assert batch.shape == (4,)
        for row, (entity, relation) in enumerate(zip(entity_ids, relations)):
            scalar = small_server.relation_existence_score(entity, relation)
            assert scalar == batch[row]

    def test_matches_relation_service_norm(self, small_server):
        entity_ids = np.asarray([0, 4], dtype=np.int64)
        relations = np.asarray([1, 2], dtype=np.int64)
        vectors = small_server.relation_service(entity_ids, relations)
        expected = np.abs(vectors).sum(axis=1)
        got = small_server.relation_existence_scores(entity_ids, relations)
        assert np.array_equal(got, expected)

    def test_shape_mismatch_rejected(self, small_server):
        with pytest.raises(ValueError, match="pair up"):
            small_server.relation_existence_scores([0, 1], [0])


class TestCachedFacade:
    def test_retrieval_passthroughs(self, small_server):
        cached = CachedPKGMServer(small_server, capacity=4)
        d, i = cached.nearest_tails(0, 0, k=K)
        raw_d, raw_i = small_server.nearest_tails(0, 0, k=K)
        assert np.array_equal(d, raw_d)
        assert np.array_equal(i, raw_i)
        batch_d, batch_i = cached.nearest_tails_batch([0, 1], [0, 0], k=K)
        assert batch_d.shape == (2, K) and batch_i.shape == (2, K)
        assert cached.tail_index is small_server.tail_index
        scores = cached.relation_existence_scores([0, 1], [0, 1])
        assert np.array_equal(
            scores, small_server.relation_existence_scores([0, 1], [0, 1])
        )
        index = cached.build_tail_index(kind="flat", metric="l1")
        assert small_server.tail_index is index
        small_server._tail_index = None
