"""Tests for experiment configs and the end-to-end pipeline."""

import numpy as np
import pytest

from repro.config import ExperimentConfig, bench_config, default_config, smoke_config
from repro.pipeline import build_workbench


class TestConfigs:
    def test_presets_construct(self):
        for preset in (smoke_config, default_config, bench_config):
            config = preset()
            assert isinstance(config, ExperimentConfig)
            assert config.pkgm.dim >= 1
            assert config.key_relations >= 1

    def test_smoke_is_smallest(self):
        smoke, bench = smoke_config(), bench_config()
        assert (
            smoke.catalog.num_categories * smoke.catalog.products_per_category
            < bench.catalog.num_categories * bench.catalog.products_per_category
        )

    def test_encoder_fits_pair_encoding(self):
        """Pair max_length must fit within the encoder's max_length."""
        for preset in (smoke_config, default_config, bench_config):
            config = preset()
            assert config.finetune_pair.max_length <= config.encoder_max_length
            assert config.finetune.max_length <= config.encoder_max_length

    def test_configs_are_frozen(self):
        config = smoke_config()
        with pytest.raises(Exception):
            config.key_relations = 99


class TestWorkbench:
    @pytest.fixture(scope="class")
    def workbench(self):
        return build_workbench(smoke_config(), pretrain_mlm=True)

    def test_all_artifacts_present(self, workbench):
        assert len(workbench.catalog.items) > 0
        assert workbench.pkgm.num_entities == len(workbench.catalog.entities)
        assert workbench.server.k == workbench.config.key_relations
        assert workbench.tokenizer.vocab_size > 5
        assert workbench.encoder_config.vocab_size == workbench.tokenizer.vocab_size
        assert workbench.encoder_config.service_dim == workbench.config.pkgm.dim

    def test_pkgm_converged(self, workbench):
        assert workbench.pkgm_history.improved()

    def test_mlm_state_loadable(self, workbench):
        from repro.text import MiniBert

        encoder = MiniBert(workbench.encoder_config, rng=np.random.default_rng(9))
        encoder.load_state_dict(workbench.mlm_state)  # must not raise

    def test_mlm_ran(self, workbench):
        assert len(workbench.mlm_losses) == workbench.config.mlm.epochs

    def test_skip_mlm(self):
        workbench = build_workbench(smoke_config(), pretrain_mlm=False)
        assert workbench.mlm_losses == []
        assert workbench.mlm_state  # state dict still available (fresh init)

    def test_server_covers_every_item(self, workbench):
        for item in workbench.catalog.items[:20]:
            vectors = workbench.server.serve(item.entity_id)
            assert vectors.triple_vectors.shape == (
                workbench.config.key_relations,
                workbench.config.pkgm.dim,
            )

    def test_deterministic(self):
        a = build_workbench(smoke_config(), pretrain_mlm=False)
        b = build_workbench(smoke_config(), pretrain_mlm=False)
        assert np.allclose(
            a.pkgm.triple_module.entity_embeddings.weight.data,
            b.pkgm.triple_module.entity_embeddings.weight.data,
        )
