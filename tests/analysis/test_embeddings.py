"""Tests for embedding-space diagnostics."""

import numpy as np
import pytest

from repro.analysis import (
    embedding_norm_summary,
    item_embedding_matrix,
    knn_category_purity,
    sibling_separation,
)
from repro.config import smoke_config
from repro.pipeline import build_workbench


@pytest.fixture(scope="module")
def workbench():
    return build_workbench(smoke_config(), pretrain_mlm=False)


class TestItemEmbeddingMatrix:
    def test_shapes_align(self, workbench):
        embeddings, categories = item_embedding_matrix(workbench.pkgm, workbench.catalog)
        assert len(embeddings) == len(workbench.catalog.items)
        assert len(categories) == len(embeddings)
        assert embeddings.shape[1] == workbench.config.pkgm.dim

    def test_rows_match_entity_table(self, workbench):
        embeddings, _ = item_embedding_matrix(workbench.pkgm, workbench.catalog)
        table = workbench.pkgm.triple_module.entity_embeddings.weight.data
        item = workbench.catalog.items[3]
        assert np.allclose(embeddings[3], table[item.entity_id])


class TestCategoryPurity:
    def test_trained_embeddings_cluster_above_chance(self, workbench):
        """The mechanism behind classification gains: same-category items
        share values, so TransE clusters them."""
        report = knn_category_purity(workbench.pkgm, workbench.catalog, k=5)
        assert report.purity > report.chance * 1.5

    def test_untrained_embeddings_near_chance(self, workbench):
        from repro.core import PKGM, PKGMConfig

        fresh = PKGM(
            len(workbench.catalog.entities),
            len(workbench.catalog.relations),
            PKGMConfig(dim=16),
            rng=np.random.default_rng(5),
        )
        report = knn_category_purity(fresh, workbench.catalog, k=5)
        assert report.purity < report.chance * 1.7

    def test_subsampling_path(self, workbench):
        report = knn_category_purity(
            workbench.pkgm, workbench.catalog, k=3, max_items=20,
            rng=np.random.default_rng(0),
        )
        assert 0.0 <= report.purity <= 1.0

    def test_rejects_bad_k(self, workbench):
        with pytest.raises(ValueError):
            knn_category_purity(workbench.pkgm, workbench.catalog, k=0)

    def test_row_format(self, workbench):
        row = knn_category_purity(workbench.pkgm, workbench.catalog, k=2).as_row()
        assert "purity" in row

    @pytest.mark.parametrize("k", [1, 5, 10])
    def test_blocked_scan_matches_full_matrix(self, workbench, k):
        """The FlatIndex rewrite must return *bit-identical* purity to
        the old dense-matrix path it replaced."""
        embeddings, categories = item_embedding_matrix(
            workbench.pkgm, workbench.catalog
        )
        n = len(embeddings)
        if n > 500:
            rng = np.random.default_rng(0)
            index = rng.choice(n, size=500, replace=False)
            queries, query_cats = embeddings[index], categories[index]
        else:
            queries, query_cats = embeddings, categories
        distances = np.abs(
            queries[:, None, :] - embeddings[None, :, :]
        ).sum(axis=2)
        purity_total = 0.0
        for i in range(len(queries)):
            row = distances[i]
            keep = row > 1e-12  # drop self-matches and exact duplicates
            order = np.lexsort((np.arange(n)[keep], row[keep]))[:k]
            neighbors = np.arange(n)[keep][order]
            if not len(neighbors):
                continue
            purity_total += np.mean(categories[neighbors] == query_cats[i])
        expected = purity_total / len(queries)
        report = knn_category_purity(workbench.pkgm, workbench.catalog, k=k)
        assert report.purity == expected

    def test_block_size_does_not_change_purity(self, workbench):
        reports = [
            knn_category_purity(
                workbench.pkgm, workbench.catalog, k=5, block_size=size
            )
            for size in (16, 256, 100_000)
        ]
        assert all(r.purity == reports[0].purity for r in reports)


class TestSiblingSeparation:
    def test_siblings_closer_than_random(self, workbench):
        """The mechanism behind alignment transfer."""
        report = sibling_separation(workbench.pkgm, workbench.catalog)
        assert report.sibling_mean_distance < report.random_mean_distance
        assert report.ratio > 1.0

    def test_max_pairs_subsamples(self, workbench):
        report = sibling_separation(
            workbench.pkgm, workbench.catalog, max_pairs=10,
            rng=np.random.default_rng(1),
        )
        assert report.sibling_mean_distance > 0

    def test_single_item_products_raise(self):
        from repro.core import PKGM, PKGMConfig
        from repro.data import CatalogConfig, generate_catalog

        catalog = generate_catalog(
            CatalogConfig(
                num_categories=2,
                products_per_category=3,
                min_items_per_product=1,
                max_items_per_product=1,
                seed=0,
            )
        )
        model = PKGM(len(catalog.entities), len(catalog.relations), PKGMConfig(dim=8))
        with pytest.raises(ValueError):
            sibling_separation(model, catalog)


class TestNormSummary:
    def test_entity_norms_respect_constraint(self, workbench):
        summary = embedding_norm_summary(workbench.pkgm)
        assert summary["entity_norm_max"] <= 1.0 + 1e-6
        assert summary["entity_norm_mean"] > 0
        assert summary["relation_norm_mean"] > 0
