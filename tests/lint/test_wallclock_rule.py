"""Tests for the wall-clock-in-reliability rule (R007)."""

RULE = "wall-clock-in-reliability"
RELIABILITY_PATH = "src/repro/reliability/gateway.py"


class TestScope:
    def test_flags_only_inside_reliability(self, lint_source):
        source = """
            import time

            def pause():
                time.sleep(1)
        """
        inside = lint_source(RULE, source, path=RELIABILITY_PATH)
        outside = lint_source(RULE, source, path="src/repro/core/cache.py")
        assert len(inside) == 1
        assert outside == []

    def test_flags_inside_obs(self, lint_source):
        source = """
            import time

            def stamp():
                return time.monotonic()
        """
        violations = lint_source(RULE, source, path="src/repro/obs/trace.py")
        assert len(violations) == 1

    def test_flags_inside_index(self, lint_source):
        source = """
            import time

            def stamp():
                return time.perf_counter()
        """
        violations = lint_source(RULE, source, path="src/repro/index/flat.py")
        assert len(violations) == 1

    def test_scoped_paths_configurable(self, lint_source):
        source = """
            import time

            def now():
                return time.time()
        """
        violations = lint_source(
            RULE,
            source,
            path="src/mysim/engine.py",
            scoped_paths=("mysim/",),
        )
        assert len(violations) == 1


class TestDetection:
    def test_flags_sleep_time_monotonic(self, lint_source):
        source = """
            import time

            def bad():
                time.sleep(0.1)
                a = time.time()
                b = time.monotonic()
                return a + b
        """
        violations = lint_source(RULE, source, path=RELIABILITY_PATH)
        assert len(violations) == 3
        assert all(v.rule == RULE for v in violations)
        assert "StepClock" in violations[0].message

    def test_flags_module_alias(self, lint_source):
        source = """
            import time as t

            def bad():
                t.sleep(1)
        """
        assert len(lint_source(RULE, source, path=RELIABILITY_PATH)) == 1

    def test_flags_from_import_and_alias(self, lint_source):
        source = """
            from time import sleep, monotonic as mono

            def bad():
                sleep(1)
                return mono()
        """
        assert len(lint_source(RULE, source, path=RELIABILITY_PATH)) == 2

    def test_perf_counter_flagged(self, lint_source):
        source = """
            import time

            def bad():
                return time.perf_counter()
        """
        assert len(lint_source(RULE, source, path=RELIABILITY_PATH)) == 1


class TestCleanCode:
    def test_virtual_clock_is_fine(self, lint_source):
        source = """
            from repro.reliability.retry import StepClock

            def good(clock: StepClock):
                clock.advance(1.0)
                return clock.now()
        """
        assert lint_source(RULE, source, path=RELIABILITY_PATH) == []

    def test_non_clock_time_attrs_not_flagged(self, lint_source):
        source = """
            import time

            def fine():
                return time.strftime("%Y")
        """
        assert lint_source(RULE, source, path=RELIABILITY_PATH) == []

    def test_unrelated_names_not_flagged(self, lint_source):
        source = """
            class Timer:
                def sleep(self):
                    return 0

            def fine(t: Timer):
                return t.sleep()
        """
        assert lint_source(RULE, source, path=RELIABILITY_PATH) == []

    def test_shipped_virtual_clock_packages_are_clean(self):
        from pathlib import Path

        from repro.lint import Linter
        from repro.lint.registry import get_rule_class

        linter = Linter(rules=[get_rule_class(RULE)()])
        src = Path(__file__).resolve().parents[2] / "src/repro"
        violations = []
        for package in ("reliability", "obs"):
            for path in sorted((src / package).glob("*.py")):
                violations.extend(linter.lint_file(path))
        assert violations == []
