"""Tests for the text/JSON reporters and the violation model."""

import json

import pytest

from repro.lint import LintResult, Severity, Violation
from repro.lint.reporters import JSONReporter, TextReporter, get_reporter


def _result():
    return LintResult(
        violations=[
            Violation(
                path="src/a.py",
                line=3,
                col=4,
                rule="mutable-default-arg",
                message="shared default",
                severity=Severity.ERROR,
            ),
            Violation(
                path="src/b.py",
                line=10,
                col=0,
                rule="bare-except",
                message="swallowed",
                severity=Severity.WARNING,
            ),
        ],
        files_checked=2,
    )


class TestTextReporter:
    def test_renders_lines_and_summary(self):
        out = TextReporter().render(_result())
        assert "src/a.py:3:4: error [mutable-default-arg] shared default" in out
        assert out.endswith("checked 2 files: 1 error(s), 1 warning(s)")

    def test_clean_result(self):
        out = TextReporter().render(LintResult(files_checked=1))
        assert out == "checked 1 file: 0 error(s), 0 warning(s)"


class TestJSONReporter:
    def test_payload_round_trips(self):
        payload = json.loads(JSONReporter().render(_result()))
        assert payload["files_checked"] == 2
        assert payload["errors"] == 1
        assert payload["warnings"] == 1
        assert len(payload["violations"]) == 2
        first = payload["violations"][0]
        assert first == {
            "path": "src/a.py",
            "line": 3,
            "col": 4,
            "rule": "mutable-default-arg",
            "message": "shared default",
            "severity": "error",
        }


class TestLookupAndExitCodes:
    def test_get_reporter(self):
        assert isinstance(get_reporter("text"), TextReporter)
        assert isinstance(get_reporter("json"), JSONReporter)
        with pytest.raises(ValueError):
            get_reporter("xml")

    def test_exit_codes(self):
        assert _result().exit_code() == 1
        warnings_only = LintResult(
            violations=[v for v in _result().violations if v.severity == Severity.WARNING],
            files_checked=1,
        )
        assert warnings_only.exit_code() == 0
        assert warnings_only.exit_code(strict=True) == 1
        assert LintResult(files_checked=1).exit_code(strict=True) == 0
