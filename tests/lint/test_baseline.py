"""Baseline ratchet: tolerate fingerprinted violations, fail new ones."""

import json

import pytest

from repro.lint.baseline import BASELINE_VERSION, Baseline
from repro.lint.cli import main as lint_main
from repro.lint.engine import LintResult
from repro.lint.violations import Severity, Violation


def make_violation(path="mod.py", line=3, rule="unseeded-randomness",
                   message="bad", severity=Severity.ERROR):
    return Violation(
        path=path, line=line, col=0, rule=rule, message=message,
        severity=severity,
    )


def roundtrip(violations, tmp_path):
    """Write a baseline for ``violations`` and load it back."""
    path = tmp_path / "baseline.json"
    Baseline.write(path, LintResult(violations=list(violations)))
    return path, Baseline.load(path)


class TestApply:
    def test_matched_error_demoted_and_flagged(self, tmp_path):
        violation = make_violation()
        _, baseline = roundtrip([violation], tmp_path)
        result = baseline.apply(LintResult(violations=[violation]))
        [adjusted] = result.violations
        assert adjusted.severity == Severity.WARNING
        assert adjusted.baselined
        assert result.exit_code(strict=True) == 0

    def test_line_shift_still_matches(self, tmp_path):
        # Fingerprints carry no line numbers: unrelated edits that move
        # a violation must not break the baseline.
        _, baseline = roundtrip([make_violation(line=3)], tmp_path)
        result = baseline.apply(
            LintResult(violations=[make_violation(line=40)])
        )
        assert result.violations[0].baselined

    def test_new_violation_still_fails(self, tmp_path):
        _, baseline = roundtrip([make_violation()], tmp_path)
        fresh = make_violation(rule="wall-clock", message="other")
        result = baseline.apply(
            LintResult(violations=[make_violation(), fresh])
        )
        assert result.exit_code() == 1
        assert [v.baselined for v in sorted(result.violations)] == [True, False]

    def test_budget_caps_duplicate_fingerprints(self, tmp_path):
        # One tolerated occurrence; a second identical violation is new.
        _, baseline = roundtrip([make_violation()], tmp_path)
        result = baseline.apply(
            LintResult(violations=[make_violation(), make_violation(line=9)])
        )
        assert sum(v.baselined for v in result.violations) == 1
        assert result.exit_code() == 1

    def test_baselined_warning_exempt_from_strict_only(self, tmp_path):
        tolerated = make_violation(severity=Severity.WARNING)
        _, baseline = roundtrip([tolerated], tmp_path)
        fresh = make_violation(message="new", severity=Severity.WARNING)
        result = baseline.apply(
            LintResult(violations=[tolerated, fresh])
        )
        assert result.exit_code(strict=False) == 0
        assert result.exit_code(strict=True) == 1


class TestFileFormat:
    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert len(Baseline.load(tmp_path / "absent.json")) == 0

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="unsupported format"):
            Baseline.load(path)

    def test_write_counts_duplicates(self, tmp_path):
        path, baseline = roundtrip(
            [make_violation(), make_violation(line=9)], tmp_path
        )
        data = json.loads(path.read_text())
        assert data["version"] == BASELINE_VERSION
        assert [e["count"] for e in data["entries"]] == [2]
        assert len(baseline) == 2


class TestCli:
    DIRTY = "import random\n\n\ndef pick():\n    return random.random()\n"

    @pytest.fixture
    def tree(self, tmp_path):
        (tmp_path / "mod.py").write_text(self.DIRTY)
        return tmp_path

    def test_write_then_ratchet(self, tree, capsys):
        baseline = tree / "baseline.json"
        args = ["--root", str(tree), str(tree)]
        assert lint_main(["--write-baseline", str(baseline)] + args) == 0
        capsys.readouterr()
        assert lint_main(["--baseline", str(baseline)] + args) == 0
        out = capsys.readouterr().out
        assert "(baselined)" in out

    def test_new_violation_breaks_ratchet(self, tree, capsys):
        baseline = tree / "baseline.json"
        args = ["--root", str(tree), str(tree)]
        lint_main(["--write-baseline", str(baseline)] + args)
        (tree / "fresh.py").write_text(self.DIRTY)
        assert lint_main(["--baseline", str(baseline)] + args) == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out

    def test_corrupt_baseline_is_usage_error(self, tree, capsys):
        baseline = tree / "baseline.json"
        baseline.write_text("[]")
        code = lint_main(["--baseline", str(baseline), "--root", str(tree), str(tree)])
        assert code == 2
        assert "unsupported format" in capsys.readouterr().err
