"""Determinism-taint pass over the seeded ``taint_chain`` corpus.

The corpus wires ``time.time()`` into ``repro.core`` through a
two-module call chain and plants an unseeded ``default_rng()`` directly
inside the boundary; clean twins of both paths must stay unflagged.
"""

import pytest


@pytest.fixture
def result(analyze_corpus):
    return analyze_corpus("taint_chain", select=["determinism-taint"])


def taints(result):
    return [v for v in result.violations if v.rule == "determinism-taint"]


class TestSeededViolations:
    def test_exactly_the_two_seeded_findings(self, result):
        assert [(v.path, v.line) for v in taints(result)] == [
            ("src/repro/core/engine.py", 6),
            ("src/repro/core/noise.py", 6),
        ]
        assert all(v.severity.name == "ERROR" for v in taints(result))

    def test_chain_reported_hop_by_hop(self, result):
        [chain] = [v for v in taints(result) if "engine" in v.path]
        assert (
            "repro.core.engine.step -> repro.schedule.backoff -> "
            "repro.jitterlib.jitter -> time.time()" in chain.message
        )

    def test_chain_ends_at_primitive_location(self, result):
        [chain] = [v for v in taints(result) if "engine" in v.path]
        assert chain.message.endswith("[src/repro/jitterlib.py:7]")

    def test_direct_unseeded_rng_inside_boundary(self, result):
        [direct] = [v for v in taints(result) if "noise" in v.path]
        assert "np.random.default_rng() [unseeded]" in direct.message


class TestCleanTwinsUnflagged:
    def test_clean_boundary_functions_not_reported(self, result):
        messages = " ".join(v.message for v in taints(result))
        # clean_step calls the untainted cadence/steady chain;
        # seeded_sample passes an explicit seed to default_rng.
        assert "clean_step" not in messages
        assert "seeded_sample" not in messages

    def test_taint_outside_boundary_not_reported(self, result):
        # jitter/backoff are themselves tainted but live outside the
        # deterministic boundary: only boundary functions are findings.
        assert all(v.path.startswith("src/repro/core/") for v in taints(result))
