"""Positive/negative fixtures for the mutable-default-arg rule (R002)."""

RULE = "mutable-default-arg"


class TestPositives:
    def test_list_display_default(self, lint_source):
        violations = lint_source(
            RULE,
            """
            def record(losses=[]):
                return losses
            """,
        )
        assert len(violations) == 1
        assert "'losses'" in violations[0].message

    def test_dict_and_set_defaults(self, lint_source):
        violations = lint_source(
            RULE,
            """
            def configure(options={}, seen=set()):
                return options, seen
            """,
        )
        assert len(violations) == 2

    def test_constructor_call_default(self, lint_source):
        violations = lint_source(
            RULE,
            """
            def gather(out=list()):
                return out
            """,
        )
        assert len(violations) == 1
        assert "list()" in violations[0].message

    def test_keyword_only_default(self, lint_source):
        violations = lint_source(
            RULE,
            """
            def train(*, history=[]):
                return history
            """,
        )
        assert len(violations) == 1

    def test_lambda_default(self, lint_source):
        violations = lint_source(RULE, "f = lambda acc=[]: acc\n")
        assert len(violations) == 1

    def test_comprehension_default(self, lint_source):
        violations = lint_source(
            RULE,
            """
            def ranks(ks=[k for k in (1, 3, 10)]):
                return ks
            """,
        )
        assert len(violations) == 1


class TestNegatives:
    def test_none_default_is_fine(self, lint_source):
        violations = lint_source(
            RULE,
            """
            def record(losses=None):
                if losses is None:
                    losses = []
                return losses
            """,
        )
        assert violations == []

    def test_immutable_defaults_are_fine(self, lint_source):
        violations = lint_source(
            RULE,
            """
            def train(epochs=10, name="pkgm", ks=(1, 3, 10), frozen=frozenset()):
                return epochs, name, ks, frozen
            """,
        )
        assert violations == []

    def test_mutable_literal_in_body_is_fine(self, lint_source):
        violations = lint_source(
            RULE,
            """
            def record():
                losses = []
                return losses
            """,
        )
        assert violations == []
