"""Positive/negative fixtures for the tensor-inplace-grad rule (R003)."""

RULE = "tensor-inplace-grad"


class TestPositives:
    def test_bare_data_assignment(self, lint_source):
        violations = lint_source(
            RULE,
            """
            def step(param, lr):
                param.data = param.data - lr * param.grad
            """,
        )
        assert len(violations) == 1
        assert "no_grad" in violations[0].message

    def test_augmented_assignment(self, lint_source):
        violations = lint_source(
            RULE,
            """
            def decay(param, wd):
                param.data *= 1.0 - wd
            """,
        )
        assert len(violations) == 1

    def test_nested_function_escapes_guard(self, lint_source):
        # The closure body runs later, outside the with-block's dynamic
        # extent, so the lexical no_grad() does not cover it.
        violations = lint_source(
            RULE,
            """
            def make_step(param):
                with no_grad():
                    def inner():
                        param.data = 0.0
                    return inner
            """,
        )
        assert len(violations) == 1

    def test_self_data_outside_init(self, lint_source):
        violations = lint_source(
            RULE,
            """
            class Tensor:
                def zero(self):
                    self.data = 0.0
            """,
        )
        assert len(violations) == 1


class TestNegatives:
    def test_no_grad_block_is_fine(self, lint_source):
        violations = lint_source(
            RULE,
            """
            from repro.nn import no_grad

            def step(param, lr):
                with no_grad():
                    param.data = param.data - lr * param.grad
            """,
        )
        assert violations == []

    def test_attribute_qualified_no_grad(self, lint_source):
        violations = lint_source(
            RULE,
            """
            import repro.nn as nn

            def step(param):
                with nn.no_grad():
                    param.data = 0.0
            """,
        )
        assert violations == []

    def test_guard_covers_nested_control_flow(self, lint_source):
        violations = lint_source(
            RULE,
            """
            def step(params):
                with no_grad():
                    for p in params:
                        if p.grad is not None:
                            p.data = p.data - p.grad
            """,
        )
        assert violations == []

    def test_self_data_in_init_is_construction(self, lint_source):
        violations = lint_source(
            RULE,
            """
            class Tensor:
                def __init__(self, data):
                    self.data = data
            """,
        )
        assert violations == []

    def test_data_reads_are_fine(self, lint_source):
        violations = lint_source(
            RULE,
            """
            def norm(param):
                value = param.data.sum()
                return value
            """,
        )
        assert violations == []
