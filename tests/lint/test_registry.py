"""Tests for the rule registry and per-rule configuration."""

import pytest

from repro.lint import Severity
from repro.lint.registry import create_rules, get_rule_class, rule_names

EXPECTED_RULES = {
    "unseeded-randomness",
    "mutable-default-arg",
    "tensor-inplace-grad",
    "config-key-drift",
    "bare-except",
    "export-drift",
}


class TestRegistry:
    def test_builtin_rules_registered(self):
        assert EXPECTED_RULES <= set(rule_names())

    def test_rule_codes_unique(self):
        codes = [get_rule_class(name).code for name in rule_names()]
        assert len(codes) == len(set(codes))

    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            get_rule_class("no-such-rule")

    def test_create_rules_select_and_disable(self):
        only = create_rules(select=["bare-except"])
        assert [rule.name for rule in only] == ["bare-except"]
        without = create_rules(disable=["bare-except"])
        assert "bare-except" not in {rule.name for rule in without}

    def test_create_rules_validates_names_early(self):
        with pytest.raises(ValueError, match="unknown rule"):
            create_rules(disable=["no-such-rule"])


class TestConfigure:
    def test_severity_override(self):
        rule = get_rule_class("mutable-default-arg")()
        rule.configure(severity="warning")
        assert rule.severity == Severity.WARNING

    def test_option_override(self):
        rule = get_rule_class("bare-except")()
        rule.configure(hot_paths=("serving/",))
        assert rule.hot_paths == ("serving/",)

    def test_unknown_option_raises(self):
        rule = get_rule_class("bare-except")()
        with pytest.raises(ValueError, match="has no option"):
            rule.configure(not_an_option=1)

    def test_create_rules_applies_options(self):
        (rule,) = create_rules(
            select=["bare-except"],
            options={"bare-except": {"severity": "warning"}},
        )
        assert rule.severity == Severity.WARNING
