"""Tests for the no-print-in-src rule (R008)."""

RULE = "no-print-in-src"
LIB_PATH = "src/repro/core/trainer.py"


class TestScope:
    def test_flags_print_in_library_code(self, lint_source):
        source = """
            def train():
                print("epoch done")
        """
        violations = lint_source(RULE, source, path=LIB_PATH)
        assert len(violations) == 1
        assert violations[0].rule == RULE

    def test_ignores_code_outside_src(self, lint_source):
        source = """
            print("debugging a test")
        """
        assert lint_source(RULE, source, path="tests/test_thing.py") == []
        assert lint_source(RULE, source, path="examples/demo.py") == []

    def test_cli_modules_are_allowlisted(self, lint_source):
        source = """
            def main():
                print("table row")
        """
        for path in (
            "src/repro/cli.py",
            "src/repro/lint/cli.py",
            "src/repro/lint/reporters.py",
        ):
            assert lint_source(RULE, source, path=path) == []


class TestPrecision:
    def test_print_as_value_is_not_flagged(self, lint_source):
        source = """
            def build_logger(verbose):
                log = print if verbose else (lambda *_: None)
                return log
        """
        assert lint_source(RULE, source, path=LIB_PATH) == []

    def test_method_named_print_is_not_flagged(self, lint_source):
        source = """
            def render(report):
                report.print()
        """
        assert lint_source(RULE, source, path=LIB_PATH) == []

    def test_every_call_site_reported(self, lint_source):
        source = """
            def noisy():
                print("a")
                print("b")
        """
        assert len(lint_source(RULE, source, path=LIB_PATH)) == 2
