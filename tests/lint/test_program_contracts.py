"""Cross-module contract passes over the seeded ``contracts`` corpus.

``repro.client`` imports a name its package never binds, calls ``load``
with an unknown keyword, and calls ``save`` without its required
``payload``; ``helper`` is exported by ``repro.api`` but never used.
"""

import pytest


@pytest.fixture
def result(analyze_corpus):
    return analyze_corpus("contracts")


def by_rule(result, rule):
    return [v for v in result.violations if v.rule == rule]


class TestUnresolvedImport:
    def test_missing_name_flagged(self, result):
        [violation] = by_rule(result, "unresolved-import")
        assert violation.path == "src/repro/client.py"
        assert "missing_name" in violation.message
        assert "never binds" in violation.message

    def test_resolvable_reexports_clean(self, result):
        messages = " ".join(v.message for v in by_rule(result, "unresolved-import"))
        assert "'load'" not in messages
        assert "'save'" not in messages


class TestSignatureMismatch:
    def test_unknown_keyword(self, result):
        [unknown] = [
            v
            for v in by_rule(result, "signature-mismatch")
            if "retries" in v.message
        ]
        # Resolved through the package re-export to the implementation.
        assert "repro.api.impl.load()" in unknown.message
        assert (unknown.path, unknown.line) == ("src/repro/client.py", 7)

    def test_missing_required_argument(self, result):
        [missing] = [
            v
            for v in by_rule(result, "signature-mismatch")
            if "missing required" in v.message
        ]
        assert "repro.api.impl.save()" in missing.message
        assert "payload" in missing.message

    def test_valid_keyword_call_clean(self, result):
        # load("snapshot.npz", strict=True) matches the signature; only
        # the two seeded mismatches may surface.
        assert len(by_rule(result, "signature-mismatch")) == 2


class TestUnusedExport:
    def test_unused_all_entry_is_warning(self, result):
        [unused] = by_rule(result, "unused-export")
        assert unused.severity.name == "WARNING"
        assert "'helper'" in unused.message
        assert unused.path == "src/repro/api/__init__.py"

    def test_imported_exports_not_flagged(self, result):
        messages = " ".join(v.message for v in by_rule(result, "unused-export"))
        assert "'load'" not in messages
        assert "'save'" not in messages


class TestCorpusTotals:
    def test_exact_violation_budget(self, result):
        assert result.error_count == 3
        assert result.warning_count == 1
