"""Tests for inline ``# repro-lint:`` suppression directives."""

import textwrap
from pathlib import Path

from repro.lint import Linter, Suppressions
from repro.lint.registry import get_rule_class


def _lint(source, rule_name="mutable-default-arg"):
    linter = Linter(rules=[get_rule_class(rule_name)()])
    return linter.lint_source(textwrap.dedent(source), Path("module.py"))


class TestParsing:
    def test_line_directive(self):
        supp = Suppressions.from_source("x = 1  # repro-lint: disable=my-rule\n")
        assert supp.is_suppressed("my-rule", 1)
        assert not supp.is_suppressed("my-rule", 2)
        assert not supp.is_suppressed("other-rule", 1)

    def test_file_directive(self):
        supp = Suppressions.from_source(
            "# repro-lint: disable-file=my-rule\nx = 1\n"
        )
        assert supp.is_suppressed("my-rule", 99)

    def test_all_sentinel(self):
        supp = Suppressions.from_source("x = 1  # repro-lint: disable=all\n")
        assert supp.is_suppressed("anything", 1)

    def test_multiple_rules_one_directive(self):
        supp = Suppressions.from_source(
            "x = 1  # repro-lint: disable=rule-a, rule-b\n"
        )
        assert supp.is_suppressed("rule-a", 1)
        assert supp.is_suppressed("rule-b", 1)
        assert not supp.is_suppressed("rule-c", 1)

    def test_unrelated_comments_ignored(self):
        supp = Suppressions.from_source("# plain comment mentioning repro-lint\n")
        assert not supp.is_suppressed("my-rule", 1)


class TestEngineIntegration:
    def test_line_suppression_silences_violation(self):
        violations = _lint(
            """
            def f(acc=[]):  # repro-lint: disable=mutable-default-arg
                return acc
            """
        )
        assert violations == []

    def test_line_suppression_is_line_scoped(self):
        violations = _lint(
            """
            def f(acc=[]):  # repro-lint: disable=mutable-default-arg
                return acc

            def g(acc=[]):
                return acc
            """
        )
        assert len(violations) == 1
        assert violations[0].line == 5

    def test_file_suppression_silences_whole_file(self):
        violations = _lint(
            """
            # repro-lint: disable-file=mutable-default-arg
            def f(acc=[]):
                return acc

            def g(acc=[]):
                return acc
            """
        )
        assert violations == []

    def test_wrong_rule_name_does_not_suppress(self):
        violations = _lint(
            """
            def f(acc=[]):  # repro-lint: disable=unseeded-randomness
                return acc
            """
        )
        assert len(violations) == 1
