"""Positive/negative fixtures for the export-drift rule (R006)."""

RULE = "export-drift"


class TestPositives:
    def test_exported_name_never_bound(self, lint_source):
        violations = lint_source(
            RULE,
            """
            from .tensor import Tensor

            __all__ = ["Tensor", "Parameter"]
            """,
            path="src/pkg/__init__.py",
        )
        assert len(violations) == 1
        assert "'Parameter'" in violations[0].message

    def test_bound_public_name_missing_from_all(self, lint_source):
        violations = lint_source(
            RULE,
            """
            from .tensor import Tensor
            from .optim import Adam

            __all__ = ["Tensor"]
            """,
            path="src/pkg/__init__.py",
        )
        assert len(violations) == 1
        assert "'Adam'" in violations[0].message

    def test_top_level_def_missing_from_all(self, lint_source):
        violations = lint_source(
            RULE,
            """
            __all__ = []

            def helper():
                return 1
            """,
            path="src/pkg/__init__.py",
        )
        assert len(violations) == 1
        assert "'helper'" in violations[0].message


class TestNegatives:
    def test_synchronized_all_is_fine(self, lint_source):
        violations = lint_source(
            RULE,
            """
            from .tensor import Tensor as T

            VERSION = "1.0"

            class Thing:
                pass

            __all__ = ["T", "Thing", "VERSION"]
            """,
            path="src/pkg/__init__.py",
        )
        assert violations == []

    def test_private_names_need_no_export(self, lint_source):
        violations = lint_source(
            RULE,
            """
            from .tensor import Tensor
            from . import _internal

            _CACHE = {}

            __all__ = ["Tensor"]
            """,
            path="src/pkg/__init__.py",
        )
        assert violations == []

    def test_plain_modules_are_skipped(self, lint_source):
        violations = lint_source(
            RULE,
            """
            from .tensor import Tensor

            __all__ = ["Tensor", "Ghost"]
            """,
            path="src/pkg/module.py",
        )
        assert violations == []

    def test_init_without_all_is_skipped(self, lint_source):
        violations = lint_source(
            RULE,
            """
            from .tensor import Tensor
            """,
            path="src/pkg/__init__.py",
        )
        assert violations == []
