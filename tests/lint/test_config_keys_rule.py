"""Positive/negative fixtures for the config-key-drift rule (R004)."""

RULE = "config-key-drift"

#: Injected schema so the tests do not depend on repro.config's fields.
KEYS = frozenset({"epochs", "learning_rate", "dim", "seed"})


class TestPositives:
    def test_getattr_typo(self, lint_source):
        violations = lint_source(
            RULE,
            """
            def lr(config):
                return getattr(config, "learning_rte", 1e-3)
            """,
            keys=KEYS,
        )
        assert len(violations) == 1
        assert "learning_rte" in violations[0].message

    def test_setattr_and_hasattr(self, lint_source):
        violations = lint_source(
            RULE,
            """
            def patch(cfg):
                if hasattr(cfg, "epochz"):
                    setattr(cfg, "epochz", 10)
            """,
            keys=KEYS,
        )
        assert len(violations) == 2

    def test_dataclasses_replace_keyword(self, lint_source):
        violations = lint_source(
            RULE,
            """
            import dataclasses

            def bump(config):
                return dataclasses.replace(config, epochz=100)
            """,
            keys=KEYS,
        )
        assert len(violations) == 1
        assert "epochz" in violations[0].message

    def test_subscript_key(self, lint_source):
        violations = lint_source(
            RULE,
            """
            def read(config):
                return config["lerning_rate"]
            """,
            keys=KEYS,
        )
        assert len(violations) == 1

    def test_self_config_attribute_receiver(self, lint_source):
        violations = lint_source(
            RULE,
            """
            class Trainer:
                def lr(self):
                    return getattr(self.config, "learning_rat", 0.0)
            """,
            keys=KEYS,
        )
        assert len(violations) == 1


class TestNegatives:
    def test_valid_keys_are_fine(self, lint_source):
        violations = lint_source(
            RULE,
            """
            import dataclasses

            def tweak(config):
                lr = getattr(config, "learning_rate", 1e-3)
                return dataclasses.replace(config, epochs=5, seed=1)
            """,
            keys=KEYS,
        )
        assert violations == []

    def test_non_config_receivers_are_ignored(self, lint_source):
        violations = lint_source(
            RULE,
            """
            def read(row):
                return row["whatever"], getattr(row, "anything", None)
            """,
            keys=KEYS,
        )
        assert violations == []

    def test_dynamic_keys_are_ignored(self, lint_source):
        violations = lint_source(
            RULE,
            """
            def read(config, key):
                return getattr(config, key, None)
            """,
            keys=KEYS,
        )
        assert violations == []

    def test_real_schema_resolves_from_repro_config(self, lint_source):
        # Without an injected schema the rule walks repro.config's
        # dataclass tree; 'pkgm' (a nested section) must be known.
        violations = lint_source(
            RULE,
            """
            def read(config):
                return getattr(config, "pkgm", None)
            """,
        )
        assert violations == []

    def test_real_schema_still_flags_garbage(self, lint_source):
        violations = lint_source(
            RULE,
            """
            def read(config):
                return getattr(config, "definitely_not_a_field_xyz", None)
            """,
        )
        assert len(violations) == 1
