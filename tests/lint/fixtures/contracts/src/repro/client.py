"""Known-bad importer: stale name, wrong keyword, missing argument."""

from repro.api import load, missing_name, save


def run():
    snapshot = load("snapshot.npz", strict=True, retries=3)
    save("snapshot.npz")
    return snapshot, missing_name
