from .impl import helper, load, save

__all__ = ["helper", "load", "save"]
