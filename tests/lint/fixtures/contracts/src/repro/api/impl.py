"""Callees whose signatures the client must match."""


def load(path, strict=False):
    return (path, strict)


def save(path, payload, *, fsync=True):
    return (path, payload, fsync)


def helper():
    return 1
