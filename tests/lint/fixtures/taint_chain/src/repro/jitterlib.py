"""Known-bad: reads the wall clock (the root of the taint chain)."""

import time


def jitter():
    return time.time() * 1e-9


def steady(step):
    return step * 2
