"""Deterministic boundary: both entry points below must be flagged."""

from repro.schedule import backoff, cadence


def step(x):
    return x + backoff(1)


def clean_step(x):
    return x + cadence(1)
