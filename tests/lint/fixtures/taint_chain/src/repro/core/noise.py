"""Deterministic boundary: unseeded generator constructed in place."""

import numpy as np


def sample(n):
    rng = np.random.default_rng()
    return rng.normal(size=n)


def seeded_sample(n, seed):
    rng = np.random.default_rng(seed)
    return rng.normal(size=n)
