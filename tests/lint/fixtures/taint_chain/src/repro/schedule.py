"""Middle hop: launders the wall-clock read through a clean-looking API."""

from .jitterlib import jitter, steady


def backoff(step):
    return step + jitter()


def cadence(step):
    return steady(step)
