"""Known-bad: module-level registries mutated from concurrent paths."""

CACHE = {}
EVENTS = []
LIMIT = 16


def remember(key, value):
    CACHE[key] = value


def record(event):
    EVENTS.append(event)


def lookup(key):
    return CACHE.get(key)
