"""Spawns threads whose target transitively mutates module state."""

import threading

from .state import remember


def handle(item):
    remember(item, item)


def serve(items):
    threads = [threading.Thread(target=handle, args=(item,)) for item in items]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
