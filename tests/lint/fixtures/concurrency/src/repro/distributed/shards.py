"""Public API of a concurrent package: everything here is an entry."""

from ..state import record


def push(shard, rows):
    record((shard, len(rows)))


def _internal(shard):
    return shard
