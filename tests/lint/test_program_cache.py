"""The analysis cache: warm runs re-parse only changed files and the
JSON report stays byte-identical across cold and warm runs."""

import re

import pytest

from repro.lint.cli import main as lint_main

JITTER = """
'''Wall-clock jitter helper (deliberately tainted).'''
import time


def jitter():
    return time.time() * 1e-9
"""

ENGINE = """
'''A deterministic-boundary module calling the tainted helper.'''
from repro.jitter import jitter


def step(state):
    return state + jitter()
"""


@pytest.fixture
def tree(tmp_path):
    """A tiny project whose core module reaches a taint source."""
    pkg = tmp_path / "src" / "repro"
    core = pkg / "core"
    core.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (core / "__init__.py").write_text("")
    (pkg / "jitter.py").write_text(JITTER)
    (core / "engine.py").write_text(ENGINE)
    return tmp_path


def run(tree, capsys, cache):
    """One CLI invocation; returns (exit code, stdout, parsed/cached)."""
    code = lint_main(
        [
            "--program",
            "--format",
            "json",
            "--root",
            str(tree),
            "--cache",
            str(cache),
            str(tree / "src"),
        ]
    )
    captured = capsys.readouterr()
    stats = re.search(
        r"(\d+) file\(s\), (\d+) parsed, (\d+) from cache", captured.err
    )
    assert stats is not None, captured.err
    total, parsed, cached = map(int, stats.groups())
    assert total == parsed + cached
    return code, captured.out, (parsed, cached)


class TestColdWarm:
    def test_warm_run_is_byte_identical_and_fully_cached(self, tree, capsys):
        cache = tree / "cache.json"
        _, cold_out, (cold_parsed, cold_cached) = run(tree, capsys, cache)
        assert (cold_parsed, cold_cached) == (4, 0)
        _, warm_out, (warm_parsed, warm_cached) = run(tree, capsys, cache)
        assert (warm_parsed, warm_cached) == (0, 4)
        assert warm_out == cold_out

    def test_touched_file_is_the_only_reparse(self, tree, capsys):
        cache = tree / "cache.json"
        run(tree, capsys, cache)
        jitter = tree / "src" / "repro" / "jitter.py"
        jitter.write_text(jitter.read_text() + "# trailing comment\n")
        _, _, (parsed, cached) = run(tree, capsys, cache)
        assert (parsed, cached) == (1, 3)

    def test_no_cache_flag_always_parses(self, tree, capsys):
        cache = tree / "cache.json"
        run(tree, capsys, cache)
        code = lint_main(
            [
                "--program",
                "--no-cache",
                "--format",
                "json",
                "--root",
                str(tree),
                str(tree / "src"),
            ]
        )
        err = capsys.readouterr().err
        assert "4 parsed, 0 from cache" in err
        assert code == 1

    def test_corrupt_cache_file_is_rebuilt(self, tree, capsys):
        cache = tree / "cache.json"
        run(tree, capsys, cache)
        cache.write_text("{not json")
        _, out, (parsed, _) = run(tree, capsys, cache)
        assert parsed == 4  # fell back to a cold parse, same report
        _, warm_out, (warm_parsed, _) = run(tree, capsys, cache)
        assert warm_parsed == 0
        assert warm_out == out


class TestFindingsSurviveCaching:
    def test_taint_chain_reported_from_cache(self, tree, capsys):
        cache = tree / "cache.json"
        code, cold_out, _ = run(tree, capsys, cache)
        assert code == 1
        assert "determinism-taint" in cold_out
        code, warm_out, _ = run(tree, capsys, cache)
        assert code == 1
        assert warm_out == cold_out
