"""Tests for the project index: naming, imports, aliases, call edges."""

import textwrap

from repro.lint.program import ProgramIndex, module_name_for, summarize_source
from repro.lint.program.index import KIND_CLASS, KIND_FUNCTION, KIND_MODULE


def make_index(modules):
    """Build an index from ``{dotted_name: source}`` (no files needed)."""
    summaries = []
    for name, source in modules.items():
        is_package = source.lstrip().startswith("# package")
        path = name.replace(".", "/") + ("/__init__.py" if is_package else ".py")
        summaries.append(
            summarize_source(
                name, path, textwrap.dedent(source), is_package=is_package
            )
        )
    return ProgramIndex(summaries)


class TestModuleNaming:
    def test_walks_init_parents(self, tmp_path):
        (tmp_path / "src" / "repro" / "core").mkdir(parents=True)
        (tmp_path / "src" / "repro" / "__init__.py").write_text("")
        (tmp_path / "src" / "repro" / "core" / "__init__.py").write_text("")
        mod = tmp_path / "src" / "repro" / "core" / "pkgm.py"
        mod.write_text("X = 1\n")
        assert module_name_for(mod) == ("repro.core.pkgm", False)

    def test_package_init(self, tmp_path):
        (tmp_path / "repro").mkdir()
        init = tmp_path / "repro" / "__init__.py"
        init.write_text("")
        assert module_name_for(init) == ("repro", True)

    def test_stray_script_uses_stem(self, tmp_path):
        script = tmp_path / "check_env.py"
        script.write_text("X = 1\n")
        assert module_name_for(script) == ("check_env", False)


class TestImportGraph:
    def test_project_imports_recorded_external_ignored(self):
        index = make_index(
            {
                "repro": "# package\n",
                "repro.util": "def helper():\n    return 1\n",
                "repro.main": "import os\nimport repro.util\n",
            }
        )
        assert index.import_graph["repro.main"] == ["repro.util"]

    def test_from_import_of_submodule(self):
        index = make_index(
            {
                "repro": "# package\n",
                "repro.util": "def helper():\n    return 1\n",
                "repro.main": "from repro import util\n",
            }
        )
        assert "repro.util" in index.import_graph["repro.main"]


class TestSymbolResolution:
    def test_module_alias(self):
        index = make_index(
            {
                "repro": "# package\n",
                "repro.util": "def helper():\n    return 1\n",
                "repro.main": "import repro.util as u\n",
            }
        )
        assert index.resolve_symbol("repro.main", "u") == (
            KIND_MODULE,
            "repro.util",
        )

    def test_reexport_chain_through_package_init(self):
        index = make_index(
            {
                "repro": "# package\nfrom .util import helper\n",
                "repro.util": "def helper():\n    return 1\n",
                "repro.main": "from repro import helper\n",
            }
        )
        assert index.resolve_symbol("repro.main", "helper") == (
            KIND_FUNCTION,
            "repro.util.helper",
        )

    def test_class_resolution(self):
        index = make_index(
            {
                "repro": "# package\n",
                "repro.model": (
                    "class PKGM:\n    def __init__(self):\n        pass\n"
                ),
                "repro.main": "from repro.model import PKGM\n",
            }
        )
        assert index.resolve_symbol("repro.main", "PKGM") == (
            KIND_CLASS,
            "repro.model.PKGM",
        )


class TestCallEdges:
    def test_cross_module_function_call(self):
        index = make_index(
            {
                "repro": "# package\n",
                "repro.util": "def helper():\n    return 1\n",
                "repro.main": (
                    "from repro.util import helper\n"
                    "def run():\n"
                    "    return helper()\n"
                ),
            }
        )
        assert index.call_graph["repro.main.run"] == {"repro.util.helper": 3}

    def test_aliased_module_call(self):
        index = make_index(
            {
                "repro": "# package\n",
                "repro.util": "def helper():\n    return 1\n",
                "repro.main": (
                    "import repro.util as u\n"
                    "def run():\n"
                    "    return u.helper()\n"
                ),
            }
        )
        assert "repro.util.helper" in index.call_graph["repro.main.run"]

    def test_constructor_resolves_to_init(self):
        index = make_index(
            {
                "repro": "# package\n",
                "repro.model": (
                    "class PKGM:\n    def __init__(self):\n        pass\n"
                ),
                "repro.main": (
                    "from repro.model import PKGM\n"
                    "def build():\n"
                    "    return PKGM()\n"
                ),
            }
        )
        assert "repro.model.PKGM.__init__" in index.call_graph["repro.main.build"]

    def test_self_method_call(self):
        index = make_index(
            {
                "repro": "# package\n",
                "repro.model": (
                    "class Trainer:\n"
                    "    def step(self):\n"
                    "        self.log()\n"
                    "    def log(self):\n"
                    "        pass\n"
                ),
            }
        )
        assert (
            "repro.model.Trainer.log"
            in index.call_graph["repro.model.Trainer.step"]
        )

    def test_inherited_method_via_base(self):
        index = make_index(
            {
                "repro": "# package\n",
                "repro.base": (
                    "class Base:\n    def close(self):\n        pass\n"
                ),
                "repro.model": (
                    "from repro.base import Base\n"
                    "class Child(Base):\n"
                    "    def run(self):\n"
                    "        self.close()\n"
                ),
            }
        )
        assert (
            "repro.base.Base.close"
            in index.call_graph["repro.model.Child.run"]
        )

    def test_local_shadow_blocks_resolution(self):
        index = make_index(
            {
                "repro": "# package\n",
                "repro.util": "def helper():\n    return 1\n",
                "repro.main": (
                    "from repro.util import helper\n"
                    "def run(helper):\n"
                    "    return helper()\n"
                ),
            }
        )
        assert index.call_graph["repro.main.run"] == {}


class TestReverseGraph:
    def test_reverse_edges_sorted(self):
        index = make_index(
            {
                "repro": "# package\n",
                "repro.util": "def helper():\n    return 1\n",
                "repro.b": (
                    "from repro.util import helper\n"
                    "def g():\n    helper()\n"
                ),
                "repro.a": (
                    "from repro.util import helper\n"
                    "def f():\n    helper()\n"
                ),
            }
        )
        callers = index.reverse_call_graph()["repro.util.helper"]
        assert [c for c, _ in callers] == ["repro.a.f", "repro.b.g"]
