"""End-to-end tests for ``python -m repro.lint`` and ``repro lint``."""

import json
import textwrap

import pytest

from repro.cli import main as repro_main
from repro.lint.cli import build_parser, list_rules, main as lint_main

CLEAN = """
'''A clean module.'''


def add(a, b):
    return a + b
"""

DIRTY = """
'''A module with a lint violation.'''
import random


def pick():
    return random.random()
"""


@pytest.fixture
def tree(tmp_path):
    """A temp directory with one clean and one dirty module."""
    (tmp_path / "clean.py").write_text(textwrap.dedent(CLEAN))
    (tmp_path / "dirty.py").write_text(textwrap.dedent(DIRTY))
    return tmp_path


class TestModuleEntryPoint:
    def test_clean_file_exits_zero(self, tree, capsys):
        assert lint_main([str(tree / "clean.py")]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_violation_exits_nonzero(self, tree, capsys):
        assert lint_main([str(tree / "dirty.py")]) == 1
        out = capsys.readouterr().out
        assert "unseeded-randomness" in out
        assert "1 error(s)" in out

    def test_directory_discovery(self, tree, capsys):
        assert lint_main([str(tree)]) == 1
        assert "checked 2 files" in capsys.readouterr().out

    def test_json_format(self, tree, capsys):
        assert lint_main(["--format", "json", str(tree / "dirty.py")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1
        assert payload["violations"][0]["rule"] == "unseeded-randomness"

    def test_disable_rule(self, tree):
        assert lint_main(["--disable", "unseeded-randomness", str(tree)]) == 0

    def test_select_other_rule(self, tree):
        assert lint_main(["--select", "mutable-default-arg", str(tree)]) == 0

    def test_unknown_rule_is_usage_error(self, tree, capsys):
        assert lint_main(["--disable", "no-such-rule", str(tree)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "ghost")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_syntax_error_is_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert lint_main([str(bad)]) == 1
        assert "syntax-error" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("R001", "R002", "R003", "R004", "R005", "R006"):
            assert code in out
        assert list_rules() in out


class TestReproSubcommand:
    def test_repro_lint_clean(self, tree, capsys):
        assert repro_main(["lint", str(tree / "clean.py")]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_repro_lint_dirty(self, tree, capsys):
        assert repro_main(["lint", str(tree / "dirty.py")]) == 1
        assert "unseeded-randomness" in capsys.readouterr().out

    def test_repro_lint_forwards_flags(self, tree):
        assert repro_main(["lint", "--disable", "unseeded-randomness", str(tree)]) == 0


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.paths == []
        assert args.format == "text"
        assert not args.strict

    def test_strict_promotes_warnings(self, tmp_path):
        warn = tmp_path / "warn.py"
        warn.write_text(
            textwrap.dedent(
                """
                '''Module with a warning-severity violation.'''


                def load(path):
                    try:
                        return open(path)
                    except OSError:
                        pass
                """
            )
        )
        assert lint_main([str(warn)]) == 0
        assert lint_main(["--strict", str(warn)]) == 1


class TestProgramFlags:
    def test_list_rules_includes_program_passes(self, capsys):
        lint_main(["--list-rules"])
        out = capsys.readouterr().out
        assert "determinism-taint" in out
        assert "[--program]" in out

    def test_select_pass_without_program_is_noop(self, tree):
        # Pass names are valid --select targets, but the passes only
        # run under --program; per-file rules are switched off.
        assert lint_main(["--select", "determinism-taint", str(tree)]) == 0

    def test_unknown_select_name_is_usage_error(self, tree, capsys):
        assert lint_main(["--select", "no-such-pass", str(tree)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_program_merges_rule_and_pass_findings(self, tree, capsys):
        assert lint_main(["--program", "--no-cache", str(tree)]) == 1
        out = capsys.readouterr().out
        assert "unseeded-randomness" in out

    def test_repro_lint_forwards_program_flag(self, tree, capsys):
        assert repro_main(["lint", "--program", "--no-cache", str(tree)]) == 1
        assert "program analysis:" in capsys.readouterr().err
