"""Concurrent-mutation pass over the seeded ``concurrency`` corpus.

Module-level mutables in ``repro.state`` are mutated from a
``threading.Thread`` target and from the public API of the
``repro.distributed`` package; the read-only accessor stays clean.
"""

import pytest


@pytest.fixture
def result(analyze_corpus):
    return analyze_corpus("concurrency", select=["concurrent-mutation"])


def mutations(result):
    return [v for v in result.violations if v.rule == "concurrent-mutation"]


class TestSeededViolations:
    def test_both_mutated_globals_flagged(self, result):
        flagged = sorted(v.message.split("'")[1] for v in mutations(result))
        assert flagged == ["CACHE", "EVENTS"]
        assert all(v.severity.name == "ERROR" for v in mutations(result))

    def test_thread_target_entry_with_chain(self, result):
        [cache] = [v for v in mutations(result) if "'CACHE'" in v.message]
        assert "repro.worker.handle -> repro.state.remember" in cache.message
        assert (
            "entry: threading.Thread target at src/repro/worker.py:13"
            in cache.message
        )

    def test_distributed_public_api_entry(self, result):
        [events] = [v for v in mutations(result) if "'EVENTS'" in v.message]
        assert "repro.distributed.shards.push -> repro.state.record" in events.message
        assert (
            "public API of concurrent package 'repro.distributed.shards'"
            in events.message
        )

    def test_mutation_kind_reported(self, result):
        kinds = {v.message.split("mutated (")[1].split(")")[0] for v in mutations(result)}
        assert kinds == {"subscript-assign", "call:append"}


class TestCleanPathsUnflagged:
    def test_readonly_accessor_not_flagged(self, result):
        assert "lookup" not in " ".join(v.message for v in mutations(result))

    def test_immutable_global_not_flagged(self, result):
        # LIMIT is an int: rebinding never happens and it is not a
        # mutable container, so it must not appear.
        assert "'LIMIT'" not in " ".join(v.message for v in mutations(result))

    def test_private_helper_not_an_entry(self, result):
        # repro.distributed.shards._internal is private: not part of
        # the concurrent package's public API.
        assert "_internal" not in " ".join(v.message for v in mutations(result))
