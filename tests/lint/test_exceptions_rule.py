"""Positive/negative fixtures for the bare-except rule (R005)."""

from repro.lint import Severity

RULE = "bare-except"


class TestPositives:
    def test_bare_except_is_error(self, lint_source):
        violations = lint_source(
            RULE,
            """
            def load(path):
                try:
                    return open(path)
                except:
                    return None
            """,
        )
        assert len(violations) == 1
        assert violations[0].severity == Severity.ERROR
        assert "bare" in violations[0].message

    def test_swallowed_exception_warns_outside_hot_paths(self, lint_source):
        violations = lint_source(
            RULE,
            """
            def load(path):
                try:
                    return open(path)
                except OSError:
                    pass
            """,
            path="src/repro/analysis/plots.py",
        )
        assert len(violations) == 1
        assert violations[0].severity == Severity.WARNING

    def test_swallowed_exception_errors_in_hot_paths(self, lint_source):
        violations = lint_source(
            RULE,
            """
            def step():
                try:
                    work()
                except ValueError:
                    ...
            """,
            path="src/repro/core/trainer.py",
        )
        assert len(violations) == 1
        assert violations[0].severity == Severity.ERROR

    def test_continue_only_handler_is_swallowed(self, lint_source):
        violations = lint_source(
            RULE,
            """
            def drain(items):
                for item in items:
                    try:
                        item.close()
                    except OSError:
                        continue
            """,
        )
        assert len(violations) == 1


class TestNegatives:
    def test_handler_that_logs_is_fine(self, lint_source):
        violations = lint_source(
            RULE,
            """
            def load(path, log):
                try:
                    return open(path)
                except OSError as exc:
                    log.warning("failed: %s", exc)
                    return None
            """,
        )
        assert violations == []

    def test_handler_that_reraises_is_fine(self, lint_source):
        violations = lint_source(
            RULE,
            """
            def step():
                try:
                    work()
                except ValueError as exc:
                    raise RuntimeError("step failed") from exc
            """,
        )
        assert violations == []
