"""Shared helpers for the lint test suite."""

import textwrap
from pathlib import Path

import pytest

from repro.lint import Linter
from repro.lint.registry import get_rule_class

#: Root of the seeded known-bad fixture corpus.
FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture
def fixture_corpus():
    """Path factory for the known-bad programs under ``fixtures/``."""

    def _corpus(name):
        root = FIXTURES / name
        assert root.is_dir(), f"missing fixture corpus {name!r}"
        return root

    return _corpus


@pytest.fixture
def analyze_corpus(fixture_corpus):
    """Run the whole-program analyzer over one fixture corpus.

    Each corpus is analyzed on its own (they all define a ``repro``
    package, so mixing them would collide on module names).  Returns
    the LintResult; paths are relative to the corpus root.
    """
    from repro.lint.program import ProgramAnalyzer

    def _analyze(name, select=None):
        from repro.lint.program import create_passes

        root = fixture_corpus(name)
        analyzer = ProgramAnalyzer(
            passes=create_passes(select=select or []),
            root=root,
            cache_path=None,
        )
        result, _stats = analyzer.analyze_paths([root])
        return result

    return _analyze


@pytest.fixture
def lint_source():
    """Lint a source snippet with a single named rule; returns violations.

    Usage: ``lint_source("unseeded-randomness", code, path="mod.py")``.
    Rule options (e.g. ``keys=...`` for config-key-drift) are forwarded
    to ``Rule.configure``.
    """

    def _lint(rule_name, source, path="module.py", **options):
        rule = get_rule_class(rule_name)()
        if options:
            rule.configure(**options)
        linter = Linter(rules=[rule])
        return linter.lint_source(textwrap.dedent(source), Path(path))

    return _lint
