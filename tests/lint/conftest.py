"""Shared helpers for the lint test suite."""

import textwrap
from pathlib import Path

import pytest

from repro.lint import Linter
from repro.lint.registry import get_rule_class


@pytest.fixture
def lint_source():
    """Lint a source snippet with a single named rule; returns violations.

    Usage: ``lint_source("unseeded-randomness", code, path="mod.py")``.
    Rule options (e.g. ``keys=...`` for config-key-drift) are forwarded
    to ``Rule.configure``.
    """

    def _lint(rule_name, source, path="module.py", **options):
        rule = get_rule_class(rule_name)()
        if options:
            rule.configure(**options)
        linter = Linter(rules=[rule])
        return linter.lint_source(textwrap.dedent(source), Path(path))

    return _lint
