"""Positive/negative fixtures for the unseeded-randomness rule (R001)."""

RULE = "unseeded-randomness"


class TestPositives:
    def test_stdlib_module_call(self, lint_source):
        violations = lint_source(
            RULE,
            """
            import random

            def pick():
                return random.random()
            """,
        )
        assert len(violations) == 1
        assert violations[0].rule == RULE
        assert "random.random()" in violations[0].message

    def test_stdlib_from_import(self, lint_source):
        violations = lint_source(
            RULE,
            """
            from random import shuffle

            def mix(items):
                shuffle(items)
            """,
        )
        assert len(violations) == 1
        assert "shuffle" in violations[0].message

    def test_numpy_global_rng(self, lint_source):
        violations = lint_source(
            RULE,
            """
            import numpy as np

            def noise(n):
                return np.random.rand(n)
            """,
        )
        assert len(violations) == 1
        assert "default_rng" in violations[0].message

    def test_numpy_seed_call_is_flagged(self, lint_source):
        violations = lint_source(
            RULE,
            """
            import numpy as np

            np.random.seed(0)
            """,
        )
        assert len(violations) == 1

    def test_numpy_random_module_alias(self, lint_source):
        violations = lint_source(
            RULE,
            """
            import numpy.random as npr

            def noise():
                return npr.standard_normal(3)
            """,
        )
        assert len(violations) == 1

    def test_from_numpy_random_import(self, lint_source):
        violations = lint_source(
            RULE,
            """
            from numpy.random import rand

            def noise():
                return rand(4)
            """,
        )
        assert len(violations) == 1


class TestNegatives:
    def test_default_rng_is_fine(self, lint_source):
        violations = lint_source(
            RULE,
            """
            import numpy as np

            def noise(seed):
                rng = np.random.default_rng(seed)
                return rng.standard_normal(3)
            """,
        )
        assert violations == []

    def test_explicit_random_instance_is_fine(self, lint_source):
        violations = lint_source(
            RULE,
            """
            import random

            def pick(seed):
                return random.Random(seed).random()
            """,
        )
        assert violations == []

    def test_unrelated_attribute_call_is_fine(self, lint_source):
        violations = lint_source(
            RULE,
            """
            import numpy as np

            def mean(x):
                return np.mean(x)
            """,
        )
        assert violations == []

    def test_exempt_paths_glob(self, lint_source):
        violations = lint_source(
            RULE,
            """
            import numpy as np

            np.random.seed(0)
            """,
            path="src/repro/seeding.py",
            exempt_paths=("*/seeding.py",),
        )
        assert violations == []
