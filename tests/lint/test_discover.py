"""Regression tests for file discovery filtering and dedup."""

from pathlib import Path

import pytest

from repro.lint.engine import IGNORE_MARKER, discover_files


@pytest.fixture
def tree(tmp_path):
    """A layout with excluded dirs, an egg-info, and an ignore marker."""
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text("X = 1\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text("X = 1\n")
    (tmp_path / "repro.egg-info").mkdir()
    (tmp_path / "repro.egg-info" / "meta.py").write_text("X = 1\n")
    (tmp_path / "fixtures").mkdir()
    (tmp_path / "fixtures" / IGNORE_MARKER).write_text("")
    (tmp_path / "fixtures" / "bad.py").write_text("X = 1\n")
    return tmp_path


class TestDirectoryWalks:
    def test_excluded_dirs_pruned(self, tree):
        found = discover_files([tree])
        assert [p.name for p in found] == ["mod.py"]

    def test_marker_prunes_subtrees(self, tree):
        assert all("fixtures" not in p.parts for p in discover_files([tree]))

    def test_walk_rooted_inside_marked_dir_still_works(self, tree):
        # Pointing discovery *at* the marked directory is explicit
        # intent: only markers strictly below the root prune.
        found = discover_files([tree / "fixtures"])
        assert [p.name for p in found] == ["bad.py"]


class TestDirectFileArguments:
    def test_direct_file_in_excluded_dir_is_filtered(self, tree):
        # Files passed directly used to bypass EXCLUDED_DIRS entirely.
        direct = tree / "pkg" / "__pycache__" / "junk.py"
        assert discover_files([direct]) == []

    def test_direct_file_in_egg_info_is_filtered(self, tree):
        assert discover_files([tree / "repro.egg-info" / "meta.py"]) == []

    def test_plain_direct_file_kept(self, tree):
        target = tree / "pkg" / "mod.py"
        assert discover_files([target]) == [target]


class TestOverlapAndOrdering:
    def test_overlapping_dir_and_file_dedupe(self, tree):
        # The same module reachable through a directory walk and a
        # direct argument must appear once.
        found = discover_files([tree, tree / "pkg" / "mod.py"])
        assert len(found) == 1

    def test_overlapping_dirs_dedupe(self, tree):
        found = discover_files([tree, tree / "pkg"])
        assert len(found) == 1

    def test_relative_and_absolute_spellings_dedupe(self, tree, monkeypatch):
        monkeypatch.chdir(tree)
        found = discover_files([Path("pkg"), tree / "pkg"])
        assert len(found) == 1

    def test_result_sorted(self, tree):
        (tree / "pkg" / "alpha.py").write_text("X = 1\n")
        names = [p.name for p in discover_files([tree / "pkg", tree])]
        assert names == sorted(names)

    def test_missing_path_raises(self, tree):
        with pytest.raises(FileNotFoundError):
            discover_files([tree / "nope"])
