"""The PR 3 gateway wrapping the worker pool — unchanged plumbing.

``Supervisor`` exposes ``serve`` / ``nearest_tails`` plus ``k``/``dim``
and raises :class:`PoolError` (an ``RPCError``), so ``PKGMGateway``
treats a pool exactly like any other replica backend.
"""

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.reliability import PKGMGateway, StepClock, TimedBackend
from repro.serving import PoolConfig, Supervisor


class InstantLatency:
    def sample(self):
        return 0.001


@pytest.fixture()
def pool(store_dir):
    supervisor = Supervisor(
        store_dir,
        PoolConfig(num_workers=2, max_batch=4, cache_pages=8),
        registry=MetricsRegistry(),
    )
    supervisor.start()
    yield supervisor
    supervisor.shutdown()


@pytest.fixture()
def gateway(pool):
    clock = StepClock()
    backend = TimedBackend(pool, latency=InstantLatency(), name="pool")
    return PKGMGateway([backend], clock=clock)


class TestGatewayOverPool:
    def test_serve_roundtrip_matches_reference(
        self, gateway, reference, item_ids
    ):
        entity = item_ids[0]
        assert gateway.submit(entity) is None
        gateway.clock.advance(0.01)
        responses = gateway.step()
        assert len(responses) == 1
        assert responses[0].ok
        np.testing.assert_array_equal(
            responses[0].vectors.triple_vectors,
            reference.serve(entity).triple_vectors,
        )

    def test_retrieval_roundtrip(self, gateway, reference, item_ids):
        entity = item_ids[1]
        expected_d, expected_i = reference.nearest_tails(entity, 0, k=4)
        assert gateway.submit_retrieval(entity, 0, k=4) is None
        gateway.clock.advance(0.01)
        responses = gateway.step()
        assert len(responses) == 1 and responses[0].ok
        np.testing.assert_array_equal(responses[0].vectors.distances, expected_d)
        np.testing.assert_array_equal(
            responses[0].vectors.neighbor_ids, expected_i
        )

    def test_unknown_id_degrades_instead_of_raising(self, gateway):
        assert gateway.submit(10_000) is None
        gateway.clock.advance(0.01)
        responses = gateway.step()
        assert len(responses) == 1
        assert not responses[0].ok
        assert responses[0].reason == "unknown-id"

    def test_expired_budget_never_reaches_the_pool(self, gateway, item_ids):
        backend = gateway.replicas[0]
        before = backend.calls
        response = gateway.submit_retrieval(item_ids[0], 0, k=4, budget=0.0)
        assert response is not None
        assert response.reason == "deadline"
        assert backend.calls == before
        assert gateway.stats.deadline_rejected == 1

    def test_gateway_inherits_pool_geometry(self, gateway, pool):
        assert gateway.k == pool.k
        assert gateway.dim == pool.dim
