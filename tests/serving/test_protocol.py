"""Wire-protocol tests: framing, torn frames, crash-buffer drains."""

import socket
import struct

import numpy as np
import pytest

from repro.serving import (
    PoolRequest,
    PoolResponse,
    ProtocolError,
    drain_frames,
    payload_checksum,
    recv_frame,
    send_frame,
    shard_of,
)
from repro.serving.protocol import MAX_FRAME_BYTES, decode, encode


@pytest.fixture()
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestFraming:
    def test_roundtrip(self, pair):
        left, right = pair
        message = ("batch", "serve", 10, [(0, 3, -1), (1, 5, -1)])
        send_frame(left, message)
        assert recv_frame(right) == message

    def test_many_frames_in_order(self, pair):
        left, right = pair
        for seq in range(5):
            send_frame(left, ("ping", seq))
        for seq in range(5):
            assert recv_frame(right) == ("ping", seq)

    def test_clean_eof_is_none(self, pair):
        left, right = pair
        left.close()
        assert recv_frame(right) is None

    def test_torn_frame_raises(self, pair):
        left, right = pair
        body = encode(("results", [(0, "ok", None)]))
        left.sendall(struct.pack(">I", len(body)) + body[: len(body) // 2])
        left.close()
        with pytest.raises(ProtocolError):
            recv_frame(right)

    def test_header_only_raises(self, pair):
        left, right = pair
        left.sendall(struct.pack(">I", 64))
        left.close()
        with pytest.raises(ProtocolError):
            recv_frame(right)

    def test_absurd_length_rejected(self, pair):
        left, right = pair
        left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError):
            recv_frame(right)

    def test_undecodable_body_raises(self, pair):
        left, right = pair
        left.sendall(struct.pack(">I", 4) + b"\xff\xff\xff\xff")
        with pytest.raises(ProtocolError):
            recv_frame(right)

    def test_decode_garbage_raises(self):
        with pytest.raises(ProtocolError):
            decode(b"not a pickle")


class TestDrainFrames:
    def test_complete_frames_survive_a_dead_peer(self, pair):
        """The kernel buffer outlives the writer — the drain rule's basis."""
        left, right = pair
        send_frame(left, ("results", 0, [(0, "ok", 1.0)]))
        send_frame(left, ("results", 0, [(1, "ok", 2.0)]))
        left.close()  # the "crash"
        frames = drain_frames(right)
        assert [f[2][0][0] for f in frames] == [0, 1]

    def test_trailing_partial_frame_discarded(self, pair):
        left, right = pair
        send_frame(left, ("pong", 1, 7))
        body = encode(("pong", 2, 9))
        left.sendall(struct.pack(">I", len(body)) + body[:3])
        left.close()
        assert drain_frames(right) == [("pong", 1, 7)]

    def test_empty_buffer_drains_empty(self, pair):
        left, right = pair
        assert drain_frames(right) == []


class TestShardOf:
    def test_modulo_rule(self):
        assert [shard_of(e, 3) for e in range(6)] == [0, 1, 2, 0, 1, 2]


class TestPayloadChecksum:
    def test_serve_checksum_is_stable(self):
        rng = np.random.default_rng(0)
        payload = (
            np.array([0, 2], dtype=np.int64),
            rng.standard_normal((2, 4)),
            rng.standard_normal((2, 4)),
        )
        assert payload_checksum("serve", payload) == payload_checksum(
            "serve", payload
        )

    def test_retrieve_checksum_detects_changes(self):
        distances = np.array([0.1, 0.2])
        ids = np.array([4, 5], dtype=np.int64)
        base = payload_checksum("retrieve", (distances, ids))
        assert payload_checksum("retrieve", (distances + 1, ids)) != base

    def test_exist_checksum_is_float_exact(self):
        assert payload_checksum("exist", 1.5) == payload_checksum("exist", 1.5)
        assert payload_checksum("exist", 1.5) != payload_checksum("exist", 1.6)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            payload_checksum("mystery", None)


class TestEnvelopes:
    def test_response_ok_property(self):
        def response(outcome):
            return PoolResponse(
                request_id=0,
                idempotency_key="k",
                kind="exist",
                entity_id=1,
                relation=0,
                outcome=outcome,
                payload=None,
                checksum=0,
                worker=0,
            )

        assert response("ok").ok
        assert not response("deadline").ok

    def test_request_is_frozen(self):
        request = PoolRequest(
            request_id=0,
            idempotency_key="k",
            kind="serve",
            entity_id=1,
            relation=-1,
            k=10,
            deadline_at=1.0,
            shard=0,
        )
        with pytest.raises(AttributeError):
            request.attempts = 5
