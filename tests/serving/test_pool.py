"""Supervisor tests: real forked workers, real crashes, exactly-once."""

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serving import PoolConfig, PoolError, Supervisor, run_batch
from repro.serving.protocol import STATUS_OK, STATUS_UNKNOWN
from repro.store import EmbeddingStore


@pytest.fixture()
def pool(store_dir):
    supervisor = Supervisor(
        store_dir,
        PoolConfig(num_workers=2, max_batch=4, cache_pages=8),
        registry=MetricsRegistry(),
    )
    supervisor.start()
    yield supervisor
    supervisor.shutdown()


class TestBitIdentity:
    def test_serve_matches_in_ram_reference(self, pool, reference, item_ids):
        for entity in item_ids[:6]:
            expected = reference.serve(entity)
            got = pool.serve(entity)
            np.testing.assert_array_equal(
                got.key_relations, expected.key_relations
            )
            np.testing.assert_array_equal(
                got.triple_vectors, expected.triple_vectors
            )
            np.testing.assert_array_equal(
                got.relation_vectors, expected.relation_vectors
            )

    def test_retrieval_matches_in_ram_reference(self, pool, reference, item_ids):
        entity = item_ids[0]
        expected_d, expected_i = reference.nearest_tails(entity, 0, k=5)
        got_d, got_i = pool.nearest_tails(entity, 0, k=5)
        np.testing.assert_array_equal(got_d, expected_d)
        np.testing.assert_array_equal(got_i, expected_i)

    def test_existence_matches_in_ram_reference(self, pool, reference, item_ids):
        entity = item_ids[1]
        expected = float(
            reference.relation_existence_scores(
                np.array([entity]), np.array([1])
            )[0]
        )
        assert pool.relation_existence_score(entity, 1) == expected

    def test_unknown_entity_raises_keyerror(self, pool):
        with pytest.raises(KeyError):
            pool.serve(10_000)


class TestLifecycle:
    def test_start_brings_all_workers_up(self, pool):
        assert pool.alive_workers() == 2
        assert pool.metrics.gauge("pool.workers_up").value == 2
        assert all(pid is not None for pid in pool.worker_pids())

    def test_heartbeats_answered(self, pool):
        assert pool.ping_all(timeout=10.0) == 2
        assert pool.metrics.counter("pool.heartbeats").value == 2
        assert pool.metrics.counter("pool.heartbeat_losses").value == 0

    def test_shutdown_is_clean_and_repeatable(self, store_dir):
        supervisor = Supervisor(store_dir, PoolConfig(num_workers=2))
        supervisor.start()
        supervisor.shutdown()
        supervisor.shutdown()
        assert pool_down(supervisor)

    def test_rejects_non_server_store(self, tmp_path):
        plain = EmbeddingStore.build(
            tmp_path / "plain",
            {"entity_table": np.zeros((4, 2))},
            num_shards=1,
            page_bytes=128,
            metadata={"kind": "test"},
        )
        plain.close()
        with pytest.raises(PoolError):
            Supervisor(tmp_path / "plain")


def pool_down(supervisor):
    return all(
        handle.process is None or not handle.process.is_alive()
        for handle in supervisor.workers
    )


class TestCrashRecovery:
    def test_kill_discovered_replayed_and_restarted(self, pool, item_ids):
        request_ids = [
            pool.submit("serve", entity) for entity in item_ids[:3]
        ]
        pool.kill_worker(0)
        responses = pool.drain()
        assert sorted(r.request_id for r in responses) == sorted(request_ids)
        outcomes = {r.request_id: r.outcome for r in responses}
        assert all(outcome == STATUS_OK for outcome in outcomes.values())
        assert pool.metrics.counter("pool.worker_deaths").value >= 1
        assert pool.metrics.counter("pool.worker_restarts").value >= 1
        assert pool.metrics.counter("pool.duplicates_dropped").value == 0

    def test_sync_call_survives_a_kill(self, pool, reference, item_ids):
        # Pick an entity whose shard belongs to worker 0, then kill 0
        # *before* the call: routing still thinks it is up, the send
        # lands in a dead socket, and the EOF path fails the batch over.
        entity = next(e for e in item_ids if e % 2 == 0)
        pool.kill_worker(0)
        expected = reference.serve(entity)
        got = pool.serve(entity)
        np.testing.assert_array_equal(got.triple_vectors, expected.triple_vectors)
        assert pool.metrics.counter("pool.worker_deaths").value == 1

    def test_exactly_once_under_repeated_kills(self, pool, item_ids):
        submitted = []
        for round_index in range(3):
            for entity in item_ids[:4]:
                submitted.append(pool.submit("exist", entity, relation=1))
            pool.kill_worker(round_index % 2)
            pool.drain()
        terminal = pool.terminal()
        assert sorted(terminal) == sorted(submitted)
        keys = [terminal[rid].idempotency_key for rid in terminal]
        assert len(set(keys)) == len(keys)
        assert pool.metrics.counter("pool.duplicates_dropped").value == 0

    def test_expired_budget_fails_fast_before_dispatch(self, pool, item_ids):
        request_id = pool.submit("serve", item_ids[0], budget=0.0)
        response = pool.terminal()[request_id]
        assert response.outcome == "deadline"
        assert response.worker == -1
        assert pool.metrics.counter("pool.failfast_deadline").value == 1
        assert pool.metrics.counter("pool.batches_sent").value == 0


class TestIdleScrub:
    def test_idle_ticks_scrub_the_store(self, store_dir):
        supervisor = Supervisor(
            store_dir,
            PoolConfig(num_workers=1, scrub_pages_per_tick=4),
            registry=MetricsRegistry(),
        )
        supervisor.start()
        try:
            for _ in range(3):
                supervisor.tick()
            assert supervisor.metrics.counter("pool.idle_scrub_ticks").value == 3
            assert supervisor.metrics.counter("store.scrub.pages").value == 12
        finally:
            supervisor.shutdown()


class TestRunBatch:
    def test_run_batch_mixes_ok_and_unknown(self, reference, item_ids):
        items = [(0, item_ids[0], -1), (1, 10_000, -1)]
        results = run_batch(reference, "serve", 10, items)
        statuses = {request_id: status for request_id, status, _ in results}
        assert statuses == {0: STATUS_OK, 1: STATUS_UNKNOWN}

    def test_run_batch_exist_uses_fused_kernel(self, reference, item_ids):
        items = [(i, entity, 1) for i, entity in enumerate(item_ids[:4])]
        results = run_batch(reference, "exist", 10, items)
        expected = reference.relation_existence_scores(
            np.array(item_ids[:4]), np.ones(4, dtype=np.int64)
        )
        for (request_id, status, payload), want in zip(results, expected):
            assert status == STATUS_OK
            assert payload == float(want)
