"""Pool loadtest tests: every request accounted, deterministic fallback."""

from repro.obs.metrics import MetricsRegistry
from repro.serving import (
    PoolConfig,
    ServeLoadConfig,
    ServeLoadReport,
    Supervisor,
    run_serve_loadtest,
)


def run_once(store_dir, item_ids, **overrides):
    pool = Supervisor(
        store_dir,
        PoolConfig(num_workers=2, max_batch=4, cache_pages=8),
        registry=MetricsRegistry(),
    )
    pool.start()
    try:
        return run_serve_loadtest(
            pool,
            item_ids,
            ServeLoadConfig(requests=60, window=8, **overrides),
            timer=None,  # virtual stamps: fully deterministic
        )
    finally:
        pool.shutdown()


class TestLoadtest:
    def test_every_request_is_answered(self, store_dir, item_ids):
        report = run_once(store_dir, item_ids)
        assert report.requests == 60
        assert report.ok + report.degraded == 60
        assert report.degraded == 0  # unknown_prob defaults to 0
        assert report.batches > 0
        assert report.mean_batch >= 1.0

    def test_unknown_ids_count_as_degraded(self, store_dir, item_ids):
        report = run_once(store_dir, item_ids, unknown_prob=0.3)
        assert report.ok + report.degraded == 60
        assert report.degraded > 0

    def test_outcome_accounting_is_deterministic(self, store_dir, item_ids):
        """Same seed, same outcome counts — latency percentiles are
        measurements (they depend on real arrival order) and are
        deliberately left out of the comparison."""
        first = run_once(store_dir, item_ids)
        second = run_once(store_dir, item_ids)
        assert (first.requests, first.ok, first.degraded) == (
            second.requests,
            second.ok,
            second.degraded,
        )

    def test_report_rows_render(self):
        report = ServeLoadReport(
            requests=10,
            ok=10,
            degraded=0,
            elapsed=0.5,
            qps=20.0,
            p50=0.001,
            p99=0.002,
            batches=5,
            mean_batch=2.0,
        )
        rows = report.as_rows()
        assert any("10 requests" in row for row in rows)
        assert any("qps" in row for row in rows)
