"""Every public name in ``repro.serving.__all__`` resolves and imports."""

import repro.serving as serving
from repro.serving import (
    Batch,
    ChaosConfig,
    ChaosReport,
    Coalescer,
    CoalescerConfig,
    PoolConfig,
    PoolError,
    PoolRequest,
    PoolResponse,
    ProtocolError,
    ServeLoadConfig,
    ServeLoadReport,
    Supervisor,
    WorkerHandle,
    drain_frames,
    payload_checksum,
    recv_frame,
    run_batch,
    run_kill_drill,
    run_serve_loadtest,
    send_frame,
    shard_of,
    worker_main,
)
from repro.store import ScrubScheduler, ScrubTick


def test_all_names_resolve():
    for name in serving.__all__:
        assert getattr(serving, name) is not None


def test_all_is_sorted_and_complete():
    assert list(serving.__all__) == sorted(serving.__all__)
    exported = {
        Batch,
        ChaosConfig,
        ChaosReport,
        Coalescer,
        CoalescerConfig,
        PoolConfig,
        PoolError,
        PoolRequest,
        PoolResponse,
        ProtocolError,
        ServeLoadConfig,
        ServeLoadReport,
        Supervisor,
        WorkerHandle,
        drain_frames,
        payload_checksum,
        recv_frame,
        run_batch,
        run_kill_drill,
        run_serve_loadtest,
        send_frame,
        shard_of,
        worker_main,
    }
    assert len(exported) == len(serving.__all__)


def test_scrub_scheduler_is_a_store_export():
    assert ScrubScheduler is not None
    assert ScrubTick is not None
