"""Kill-drill tests: exactly-once under SIGKILL, byte-identical reruns."""

import pytest

from repro.serving import ChaosConfig, ChaosReport, run_kill_drill


def drill_config(**overrides):
    """A drill small enough for CI but with two real kills."""
    base = dict(
        requests=80,
        workers=3,
        kill_at=(20, 50),
        kill_workers=(0, 1),
        window=6,
        seed=0,
        k=4,
        cache_pages=8,
    )
    base.update(overrides)
    return ChaosConfig(**base)


class TestKillDrill:
    def test_drill_recovers_with_two_kills(self, store_dir):
        report = run_kill_drill(store_dir, list(range(20)), drill_config())
        assert report.ok
        assert report.kills == 2
        assert report.exactly_once
        assert report.duplicates == 0
        assert report.operational["worker_deaths"] >= 2
        assert report.operational["worker_restarts"] >= 2
        assert report.outcomes.get("failed", 0) == 0
        assert sum(report.outcomes.values()) == 80

    def test_transcript_is_byte_identical_across_runs(self, store_dir):
        items = list(range(20))
        first = run_kill_drill(store_dir, items, drill_config())
        second = run_kill_drill(store_dir, items, drill_config())
        assert first.lines() == second.lines()
        assert first.ok and second.ok

    def test_transcript_never_names_workers(self, store_dir):
        """Worker identity and replay status are timing-dependent —
        the byte-diffable surface must not leak them."""
        report = run_kill_drill(store_dir, list(range(20)), drill_config())
        for line in report.transcript:
            assert "worker" not in line
            assert "replay" not in line

    def test_detail_lines_carry_operational_counters(self, store_dir):
        report = run_kill_drill(store_dir, list(range(20)), drill_config())
        detail = "\n".join(report.detail_lines())
        assert "worker_deaths" in detail
        assert "replays" in detail

    def test_different_seeds_differ(self, store_dir):
        items = list(range(20))
        first = run_kill_drill(store_dir, items, drill_config(seed=0))
        second = run_kill_drill(store_dir, items, drill_config(seed=1))
        assert first.transcript != second.transcript


class TestValidation:
    def test_kill_lists_must_pair_up(self):
        with pytest.raises(ValueError):
            ChaosConfig(kill_at=(10,), kill_workers=(0, 1))

    def test_kills_need_two_workers(self):
        with pytest.raises(ValueError):
            ChaosConfig(workers=1, kill_at=(10,), kill_workers=(0,))

    def test_report_fails_without_detected_deaths(self):
        report = ChaosReport(
            requests=4,
            workers=2,
            kills=1,
            outcomes={"ok": 4},
            transcript=[],
            exactly_once=True,
            duplicates=0,
            operational={"worker_deaths": 0},
        )
        assert not report.ok
        assert report.lines()[-1] == "drill: FAILED"
