"""Coalescer tests: max-batch, max-delay, forced flush — all virtual-time."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.reliability import StepClock
from repro.serving import Batch, Coalescer, CoalescerConfig, PoolRequest


def request(request_id, shard=0, kind="serve", k=10, entity=1):
    return PoolRequest(
        request_id=request_id,
        idempotency_key=f"key-{request_id}",
        kind=kind,
        entity_id=entity,
        relation=-1,
        k=k,
        deadline_at=100.0,
        shard=shard,
    )


class TestPolicy:
    def test_flush_on_full(self):
        coalescer = Coalescer(StepClock(), CoalescerConfig(max_batch=3))
        assert coalescer.offer(request(0)) == []
        assert coalescer.offer(request(1)) == []
        batches = coalescer.offer(request(2))
        assert len(batches) == 1
        assert [r.request_id for r in batches[0].requests] == [0, 1, 2]
        assert coalescer.pending() == 0

    def test_flush_on_delay(self):
        clock = StepClock()
        coalescer = Coalescer(
            clock, CoalescerConfig(max_batch=16, max_delay=0.5)
        )
        coalescer.offer(request(0))
        clock.advance(0.4)
        assert coalescer.due() == []
        clock.advance(0.2)
        batches = coalescer.due()
        assert len(batches) == 1
        assert batches[0].requests[0].request_id == 0

    def test_delay_measured_from_oldest(self):
        clock = StepClock()
        coalescer = Coalescer(
            clock, CoalescerConfig(max_batch=16, max_delay=0.5)
        )
        coalescer.offer(request(0))
        clock.advance(0.4)
        coalescer.offer(request(1))  # same group; does not reset the timer
        clock.advance(0.15)
        batches = coalescer.due()
        assert len(batches) == 1
        assert len(batches[0].requests) == 2

    def test_groups_are_keyed_by_shard_kind_k(self):
        coalescer = Coalescer(StepClock(), CoalescerConfig(max_batch=2))
        coalescer.offer(request(0, shard=0, kind="serve"))
        coalescer.offer(request(1, shard=1, kind="serve"))
        coalescer.offer(request(2, shard=0, kind="retrieve", k=5))
        assert coalescer.pending() == 3  # three distinct groups, none full
        batches = coalescer.flush_all()
        keys = [(b.shard, b.kind, b.k) for b in batches]
        assert keys == sorted(keys)
        assert len(batches) == 3

    def test_flush_all_forced_and_deterministic_order(self):
        coalescer = Coalescer(StepClock(), CoalescerConfig(max_batch=8))
        for request_id, shard in [(0, 2), (1, 0), (2, 1)]:
            coalescer.offer(request(request_id, shard=shard))
        assert [b.shard for b in coalescer.flush_all()] == [0, 1, 2]
        assert coalescer.flush_all() == []


class TestMetrics:
    def test_counters_and_reasons(self):
        clock = StepClock()
        registry = MetricsRegistry()
        coalescer = Coalescer(
            clock,
            CoalescerConfig(max_batch=2, max_delay=0.1),
            registry=registry,
        )
        coalescer.offer(request(0))
        coalescer.offer(request(1))  # full
        coalescer.offer(request(2))
        clock.advance(0.2)
        coalescer.due()  # delay
        coalescer.offer(request(3))
        coalescer.flush_all()  # forced
        assert registry.counter("coalesce.requests").value == 4
        assert registry.counter("coalesce.batches").value == 3
        for reason in ("full", "delay", "forced"):
            counter = registry.counter(
                "coalesce.flushes", labels={"reason": reason}
            )
            assert counter.value == 1


class TestValidation:
    def test_config_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            CoalescerConfig(max_batch=0)
        with pytest.raises(ValueError):
            CoalescerConfig(max_delay=-1.0)

    def test_batch_is_frozen(self):
        batch = Batch(shard=0, kind="serve", k=10, requests=())
        with pytest.raises(AttributeError):
            batch.shard = 1
