"""Fixtures for the serving-tier suite: one store, one reference server.

The pool forks real processes, so the store is built once per module
(via ``tmp_path_factory``) and every test forks its own short-lived
supervisor over it.  The in-RAM ``reference`` server is the oracle:
anything the pool answers must match it bit-for-bit.
"""

import numpy as np
import pytest

from repro.core import KeyRelationSelector, PKGM, PKGMConfig, PKGMServer
from repro.kg import TripleStore


@pytest.fixture(scope="module")
def reference():
    """A small untrained server: 60 entities, 6 relations, 20 items."""
    rng = np.random.default_rng(11)
    triples = []
    items = list(range(20))
    for head in items:
        for relation in rng.choice(6, size=3, replace=False):
            triples.append((head, int(relation), int(rng.integers(20, 60))))
    store = TripleStore(triples)
    categories = {head: head % 3 for head in items}
    selector = KeyRelationSelector(store, categories, k=3)
    model = PKGM(60, 6, PKGMConfig(dim=8), rng=np.random.default_rng(0))
    return PKGMServer(model, selector)


@pytest.fixture(scope="module")
def item_ids(reference):
    return list(reference.known_items())


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory, reference):
    path = tmp_path_factory.mktemp("serving") / "store"
    reference.save_store(path, num_shards=2, page_bytes=512).close()
    return path
