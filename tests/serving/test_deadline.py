"""Worker-side deadline cancellation and budget propagation."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.reliability.admission import Deadline
from repro.reliability.gateway import TimedBackend
from repro.reliability.retry import StepClock
from repro.serving import PoolConfig, PoolError, Supervisor, run_batch
from repro.serving.protocol import STATUS_DEADLINE, STATUS_OK


@pytest.fixture()
def pool(store_dir):
    supervisor = Supervisor(
        store_dir,
        PoolConfig(num_workers=2, max_batch=4, cache_pages=8),
        clock=StepClock(),
        registry=MetricsRegistry(),
    )
    supervisor.start()
    yield supervisor
    supervisor.shutdown()


class TestRunBatch:
    def test_expired_budget_cancelled_before_kernel(self, reference, item_ids):
        entity = item_ids[0]
        results = run_batch(
            reference, "serve", 10, [(0, entity, -1, 0.0)]
        )
        assert results == [(0, STATUS_DEADLINE, None)]

    def test_live_budget_served(self, reference, item_ids):
        entity = item_ids[0]
        results = run_batch(
            reference, "serve", 10, [(0, entity, -1, 5.0)]
        )
        assert results[0][1] == STATUS_OK

    def test_legacy_three_tuple_items_are_unbounded(self, reference, item_ids):
        entity = item_ids[0]
        results = run_batch(reference, "serve", 10, [(0, entity, -1)])
        assert results[0][1] == STATUS_OK

    def test_mixed_batch_cancels_only_expired(self, reference, item_ids):
        items = [
            (0, item_ids[0], 1, 0.0),
            (1, item_ids[1], 1, None),
            (2, item_ids[2], 1, 3.0),
        ]
        results = dict(
            (rid, status) for rid, status, _ in
            run_batch(reference, "exist", 10, items)
        )
        assert results == {
            0: STATUS_DEADLINE,
            1: STATUS_OK,
            2: STATUS_OK,
        }


class TestPoolDeadlines:
    def test_expired_deadline_fails_fast(self, pool, item_ids):
        deadline = Deadline(pool.clock, 0.0)
        with pytest.raises(PoolError, match="deadline"):
            pool.serve(item_ids[0], deadline=deadline)
        assert (
            pool.metrics.counter("pool.failfast_deadline").value >= 1
        )

    def test_live_deadline_answers(self, pool, reference, item_ids):
        deadline = Deadline(pool.clock, 60.0)
        got = pool.serve(item_ids[0], deadline=deadline)
        assert got.triple_vectors.shape == (
            reference.k, reference.dim
        )

    def test_gateway_backend_detects_deadline_support(self, pool):
        backend = TimedBackend(pool)
        assert backend._accepts_deadline is True

    def test_batch_frames_carry_budget(self, pool, item_ids, monkeypatch):
        captured = []
        original = pool._send_batch

        def spy(handle, batch, items):
            captured.append(list(items))
            return original(handle, batch, items)

        monkeypatch.setattr(pool, "_send_batch", spy)
        pool.serve(item_ids[0], deadline=Deadline(pool.clock, 42.0))
        assert captured
        item = captured[0][0]
        assert len(item) == 4
        assert item[3] is not None and item[3] <= 42.0
