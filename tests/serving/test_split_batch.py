"""Giant-batch splitting across idle siblings."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.reliability.retry import StepClock
from repro.serving import PoolConfig, PoolError, Supervisor
from repro.serving.protocol import STATUS_OK


def make_pool(store_dir, **config):
    supervisor = Supervisor(
        store_dir,
        PoolConfig(num_workers=2, max_batch=16, cache_pages=8, **config),
        clock=StepClock(),
        registry=MetricsRegistry(),
    )
    supervisor.start()
    return supervisor


def burst(pool, item_ids, n):
    """Submit ``n`` same-shard requests so they coalesce into one batch."""
    shard0 = [e for e in item_ids if e % 2 == 0]
    entities = (shard0 * n)[:n]
    ids = [pool.submit("serve", entity) for entity in entities]
    for batch in pool.coalescer.flush_all():
        pool._dispatch(batch)
    while len(pool._terminal) < n:
        pool._poll(timeout=5.0, hang_is_death=True)
    return ids


class TestSplitBatch:
    def test_default_never_splits(self, store_dir, item_ids):
        pool = make_pool(store_dir)
        try:
            burst(pool, item_ids, 8)
            assert pool.metrics.counter("pool.batch_splits").value == 0
        finally:
            pool.shutdown()

    def test_giant_batch_splits_and_answers_all(self, store_dir, item_ids):
        pool = make_pool(store_dir, split_batch=2)
        try:
            request_ids = burst(pool, item_ids, 6)
            assert pool.metrics.counter("pool.batch_splits").value >= 1
            responses = pool.drain()
            assert sorted(r.request_id for r in responses) == sorted(
                request_ids
            )
            assert all(r.outcome == STATUS_OK for r in responses)
        finally:
            pool.shutdown()

    def test_split_spreads_work_to_idle_sibling(self, store_dir, item_ids):
        pool = make_pool(store_dir, split_batch=2)
        try:
            burst(pool, item_ids, 6)
            pool.ping_all(timeout=10.0)  # served_total rides the pong
            served = [handle.served_total for handle in pool.workers]
            # Shard-0 burst alone would leave worker 1 idle; the split
            # must have handed it at least one chunk.
            assert served[1] > 0
        finally:
            pool.shutdown()

    def test_exactly_once_after_split(self, store_dir, item_ids):
        pool = make_pool(store_dir, split_batch=2)
        try:
            burst(pool, item_ids, 6)
            pool.drain()
            assert (
                pool.metrics.counter("pool.duplicates_dropped").value == 0
            )
        finally:
            pool.shutdown()

    def test_negative_split_rejected(self):
        with pytest.raises(ValueError, match="split_batch"):
            PoolConfig(split_batch=-1)
