"""Property-based tests for metric invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    hit_ratio_at_k,
    hits_at_k,
    label_ranks,
    mean_reciprocal_rank,
    ndcg_at_k,
    rank_of_positive,
)


ranks_strategy = st.lists(st.integers(1, 200), min_size=1, max_size=50)


@settings(max_examples=50, deadline=None)
@given(ranks_strategy, st.integers(1, 100))
def test_metrics_bounded(ranks, k):
    assert 0.0 <= hits_at_k(ranks, k) <= 1.0
    assert 0.0 <= ndcg_at_k(ranks, k) <= 1.0
    assert 0.0 < mean_reciprocal_rank(ranks) <= 1.0


@settings(max_examples=50, deadline=None)
@given(ranks_strategy)
def test_metrics_monotone_in_k(ranks):
    hr = [hit_ratio_at_k(ranks, k) for k in (1, 3, 5, 10, 30)]
    ndcg = [ndcg_at_k(ranks, k) for k in (1, 3, 5, 10, 30)]
    assert all(a <= b + 1e-12 for a, b in zip(hr, hr[1:]))
    assert all(a <= b + 1e-12 for a, b in zip(ndcg, ndcg[1:]))


@settings(max_examples=50, deadline=None)
@given(ranks_strategy)
def test_ndcg_never_exceeds_hr(ranks):
    """Each query contributes <= 1 to HR and <= its HR gain to NDCG."""
    for k in (1, 5, 30):
        assert ndcg_at_k(ranks, k) <= hit_ratio_at_k(ranks, k) + 1e-12


@settings(max_examples=50, deadline=None)
@given(ranks_strategy)
def test_ndcg1_equals_hr1(ranks):
    assert ndcg_at_k(ranks, 1) == hit_ratio_at_k(ranks, 1)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.floats(-100, 100, allow_nan=False), min_size=2, max_size=40, unique=True
    )
)
def test_rank_of_positive_consistent_with_sort(scores):
    scores = np.asarray(scores)
    for index in (0, len(scores) - 1):
        rank = rank_of_positive(scores, positive_index=index)
        expected = 1 + int((scores > scores[index]).sum())
        assert rank == expected


@settings(max_examples=50, deadline=None)
@given(
    st.integers(2, 8).flatmap(
        lambda c: st.tuples(
            st.lists(
                st.lists(
                    st.floats(-10, 10, allow_nan=False), min_size=c, max_size=c
                ),
                min_size=1,
                max_size=10,
            ),
            st.just(c),
        )
    )
)
def test_label_ranks_in_range(data):
    rows, c = data
    logits = np.asarray(rows)
    labels = np.zeros(len(rows), dtype=np.int64)
    ranks = label_ranks(logits, labels)
    assert np.all(ranks >= 1)
    assert np.all(ranks <= c)
