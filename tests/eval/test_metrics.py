"""Unit tests for evaluation metrics."""

import numpy as np
import pytest

from repro.eval import (
    accuracy,
    hit_ratio_at_k,
    hits_at_k,
    label_ranks,
    mean_reciprocal_rank,
    ndcg_at_k,
    rank_of_positive,
    ranking_metrics,
)


class TestAccuracy:
    def test_basic(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == pytest.approx(2 / 3)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 2]))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))


class TestLabelRanks:
    def test_correct_label_highest_gets_rank_one(self):
        logits = np.array([[0.1, 0.9, 0.0]])
        assert label_ranks(logits, np.array([1]))[0] == 1

    def test_correct_label_lowest_gets_last_rank(self):
        logits = np.array([[0.9, 0.5, 0.1]])
        assert label_ranks(logits, np.array([2]))[0] == 3

    def test_ties_averaged(self):
        logits = np.array([[1.0, 1.0, 1.0, 1.0]])
        # 0 better, 3 ties -> 1 + 3//2 = 2.
        assert label_ranks(logits, np.array([0]))[0] == 2

    def test_batch(self):
        logits = np.array([[0.9, 0.1], [0.1, 0.9]])
        ranks = label_ranks(logits, np.array([0, 0]))
        assert list(ranks) == [1, 2]

    def test_validates_shape(self):
        with pytest.raises(ValueError):
            label_ranks(np.array([1.0, 2.0]), np.array([0]))
        with pytest.raises(ValueError):
            label_ranks(np.ones((2, 3)), np.array([0]))


class TestHitsAndHR:
    def test_hits(self):
        ranks = [1, 2, 5, 11]
        assert hits_at_k(ranks, 1) == pytest.approx(0.25)
        assert hits_at_k(ranks, 10) == pytest.approx(0.75)

    def test_hr_is_alias(self):
        assert hit_ratio_at_k([1, 3], 2) == hits_at_k([1, 3], 2)

    def test_validates(self):
        with pytest.raises(ValueError):
            hits_at_k([], 1)
        with pytest.raises(ValueError):
            hits_at_k([1], 0)


class TestNDCG:
    def test_rank_one_is_perfect(self):
        assert ndcg_at_k([1], 10) == pytest.approx(1.0)

    def test_rank_beyond_k_is_zero(self):
        assert ndcg_at_k([11], 10) == pytest.approx(0.0)

    def test_rank_two_value(self):
        assert ndcg_at_k([2], 10) == pytest.approx(1.0 / np.log2(3))

    def test_ndcg_at_1_equals_hr_at_1(self):
        """The paper's Table VIII shows NDCG@1 == HR@1/100 — same formula."""
        ranks = [1, 2, 1, 5]
        assert ndcg_at_k(ranks, 1) == pytest.approx(hit_ratio_at_k(ranks, 1))

    def test_monotone_in_k(self):
        ranks = [1, 4, 9, 25]
        values = [ndcg_at_k(ranks, k) for k in (1, 3, 5, 10, 30)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))


class TestMRRAndRankOfPositive:
    def test_mrr(self):
        assert mean_reciprocal_rank([1, 2, 4]) == pytest.approx((1 + 0.5 + 0.25) / 3)

    def test_rank_of_positive_best(self):
        assert rank_of_positive(np.array([0.9, 0.2, 0.1])) == 1

    def test_rank_of_positive_worst(self):
        assert rank_of_positive(np.array([0.1, 0.5, 0.9])) == 3

    def test_rank_of_positive_other_index(self):
        assert rank_of_positive(np.array([0.5, 0.9, 0.1]), positive_index=1) == 1

    def test_tie_handling(self):
        # All equal: 0 better, 2 ties -> rank 2.
        assert rank_of_positive(np.array([0.5, 0.5, 0.5])) == 2

    def test_validates(self):
        with pytest.raises(ValueError):
            rank_of_positive(np.array([]))
        with pytest.raises(IndexError):
            rank_of_positive(np.array([1.0]), positive_index=5)


class TestRankingMetrics:
    def test_all_cutoffs_present(self):
        out = ranking_metrics([1, 2, 3], ks=(1, 5))
        assert set(out) == {"HR@1", "NDCG@1", "HR@5", "NDCG@5"}

    def test_values_consistent(self):
        ranks = [1, 6, 2]
        out = ranking_metrics(ranks, ks=(5,))
        assert out["HR@5"] == pytest.approx(hits_at_k(ranks, 5))
        assert out["NDCG@5"] == pytest.approx(ndcg_at_k(ranks, 5))
