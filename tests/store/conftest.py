"""Fixtures for the out-of-core store suite: small seeded tables."""

import numpy as np
import pytest

from repro.store import EmbeddingStore


@pytest.fixture(scope="module")
def arrays():
    rng = np.random.default_rng(7)
    return {
        "entity_table": rng.standard_normal((37, 4)),
        "relation_table": rng.standard_normal((5, 4)),
        "transfer": rng.standard_normal((5, 4, 4)),
        "item_ids": np.arange(0, 74, 2, dtype=np.int64)[:12],
        "key_relations": rng.integers(0, 5, size=(12, 2)).astype(np.int64),
    }


@pytest.fixture()
def store(tmp_path, arrays):
    """A freshly built 3-shard store with small pages (multi-page shards)."""
    built = EmbeddingStore.build(
        tmp_path / "store",
        arrays,
        num_shards=3,
        page_bytes=128,
        cache_pages=4,
        metadata={"kind": "test"},
    )
    yield built
    built.close()
