"""Store-backed serving: cold start, bit-identity, degraded reads.

The acceptance bar for the storage engine: a server restored from a
store with a page-cache budget *smaller than the table bytes* serves
``service_vectors`` and ``nearest_tails`` bit-identically to the
in-RAM server it was built from, and seeded corruption degrades —
never crashes — the resilient facade, with every outcome accounted.
"""

import numpy as np
import pytest

from repro.core import KeyRelationSelector, PKGM, PKGMConfig, PKGMServer
from repro.core.service import SnapshotError
from repro.kg import TripleStore
from repro.obs.metrics import MetricsRegistry
from repro.reliability import (
    ResilientPKGMServer,
    StorageFaultPlan,
    StorageFaultStats,
    inject_storage_faults,
)
from repro.store import EmbeddingStore, QuarantinedRowError


@pytest.fixture(scope="module")
def reference():
    store = TripleStore(
        [
            (0, 0, 10),
            (0, 1, 11),
            (1, 0, 12),
            (1, 2, 13),
            (2, 1, 14),
            (2, 2, 15),
        ]
    )
    selector = KeyRelationSelector(store, {0: 0, 1: 0, 2: 1}, k=2)
    model = PKGM(16, 3, PKGMConfig(dim=4), rng=np.random.default_rng(0))
    return PKGMServer(model, selector)


@pytest.fixture()
def store_dir(tmp_path, reference):
    reference.save_store(tmp_path / "st", num_shards=2, page_bytes=64).close()
    return tmp_path / "st"


class TestColdStart:
    def test_cache_budget_smaller_than_tables(self, store_dir, reference):
        server = PKGMServer.from_store(store_dir, cache_pages=3)
        assert 3 * 64 < server.store.nbytes  # budget < catalog bytes
        for item in reference.known_items():
            a, b = reference.serve(item), server.serve(item)
            assert np.array_equal(a.key_relations, b.key_relations)
            assert np.array_equal(a.triple_vectors, b.triple_vectors)
            assert np.array_equal(a.relation_vectors, b.relation_vectors)
        assert len(server.store._cache) <= 3
        server.store.close()

    def test_nearest_tails_bit_identical(self, store_dir, reference):
        server = PKGMServer.from_store(store_dir, cache_pages=3)
        d_ref, i_ref = reference.nearest_tails(0, 0, k=5)
        d_st, i_st = server.nearest_tails(0, 0, k=5)
        assert np.array_equal(d_ref, d_st)
        assert np.array_equal(i_ref, i_st)
        server.store.close()

    def test_batch_surfaces_match(self, store_dir, reference):
        server = PKGMServer.from_store(store_dir, cache_pages=3)
        items = reference.known_items()
        assert np.array_equal(
            reference.serve_sequence_batch(items),
            server.serve_sequence_batch(items),
        )
        assert np.array_equal(
            reference.serve_condensed_batch(items),
            server.serve_condensed_batch(items),
        )
        server.store.close()

    def test_save_store_is_byte_deterministic(self, tmp_path, reference):
        for run in ("r1", "r2"):
            reference.save_store(tmp_path / run, num_shards=2, page_bytes=64).close()
        for name in sorted(p.name for p in (tmp_path / "r1").iterdir()):
            assert (tmp_path / "r1" / name).read_bytes() == (
                tmp_path / "r2" / name
            ).read_bytes(), name

    def test_foreign_store_is_refused(self, tmp_path):
        EmbeddingStore.build(
            tmp_path / "alien", {"entity_table": np.zeros((4, 2))}
        ).close()
        with pytest.raises(SnapshotError, match="missing table"):
            PKGMServer.from_store(tmp_path / "alien")

    def test_wrong_kind_is_refused(self, tmp_path):
        EmbeddingStore.build(
            tmp_path / "plain",
            {
                "entity_table": np.zeros((4, 2)),
                "relation_table": np.zeros((3, 2)),
                "transfer": np.zeros((3, 2, 2)),
                "item_ids": np.zeros(2, dtype=np.int64),
                "key_relations": np.zeros((2, 1), dtype=np.int64),
            },
        ).close()
        with pytest.raises(SnapshotError, match="kind"):
            PKGMServer.from_store(tmp_path / "plain")


class TestDegradedServing:
    def corrupt_entities(self, store_dir):
        """Flip one byte in every entity shard: some items quarantined."""
        for path in sorted(store_dir.glob("entity_table-*.bin")):
            blob = bytearray(path.read_bytes())
            blob[3] ^= 0x40
            path.write_bytes(bytes(blob))

    def test_quarantined_row_raises_from_raw_server(self, store_dir):
        self.corrupt_entities(store_dir)
        server = PKGMServer.from_store(store_dir, cache_pages=3)
        server.store.scrub()
        bad_rows = server.store.quarantined_rows("entity_table")
        assert bad_rows
        with pytest.raises(QuarantinedRowError):
            server.triple_service(
                np.array([bad_rows[0]]), np.array([0])
            )
        server.store.close()

    def test_facade_never_raises_and_accounts_everything(self, store_dir, reference):
        self.corrupt_entities(store_dir)
        registry = MetricsRegistry()
        server = PKGMServer.from_store(store_dir, cache_pages=3, registry=registry)
        server.store.scrub()
        facade = ResilientPKGMServer(server, registry=registry)
        items = reference.known_items()
        for item in items + [99]:
            payload = facade.serve(item)  # must not raise
            assert payload is not None
        stats = facade.stats
        assert stats.requests == len(items) + 1
        assert stats.fallback_quarantined > 0
        resolved = (
            stats.served_live
            + stats.served_stale
            + stats.fallback_unknown
            + stats.fallback_error
            + stats.fallback_quarantined
            + stats.deadline_exceeded
        )
        assert resolved == stats.requests
        snapshot = registry.snapshot()
        assert snapshot["store.quarantined_reads"] > 0
        assert (
            snapshot['serving.resolution{outcome="fallback-quarantined"}']
            == stats.fallback_quarantined
        )
        server.store.close()

    def test_warm_serving_cache_masks_quarantine(self, store_dir, reference):
        registry = MetricsRegistry()
        server = PKGMServer.from_store(store_dir, cache_pages=8, registry=registry)
        facade = ResilientPKGMServer(server, registry=registry)
        items = reference.known_items()
        for item in items:  # warm the serving LRU while the disk is clean
            assert not facade.serve(item).degraded
        self.corrupt_entities(store_dir)
        server.store.close()  # drop mmaps so damage is re-read
        server.store._cache.clear()
        server.store.scrub()
        assert server.store.quarantined_rows("entity_table")
        for item in items:
            # Cached payloads are valid model output — served, not
            # degraded, even though the backing pages are quarantined.
            assert not facade.serve(item).degraded
        assert facade.stats.fallback_quarantined == 0
        assert facade.stats.served_live == 2 * len(items)
        server.store.close()

    def test_repair_restores_live_serving(self, tmp_path, store_dir, reference):
        reference.save_store(
            tmp_path / "replica", num_shards=2, page_bytes=64
        ).close()
        self.corrupt_entities(store_dir)
        server = PKGMServer.from_store(store_dir, cache_pages=3)
        assert not server.store.scrub().clean
        replica = EmbeddingStore.open(tmp_path / "replica")
        assert server.store.repair(replica).complete
        replica.close()
        for item in reference.known_items():
            assert np.array_equal(
                reference.serve(item).triple_vectors,
                server.serve(item).triple_vectors,
            )
        server.store.close()


class TestSeededStorageChaos:
    def run_drill(self, tmp_path, reference, tag):
        primary = tmp_path / tag / "primary"
        replica = tmp_path / tag / "replica"
        reference.save_store(primary, num_shards=2, page_bytes=64).close()
        reference.save_store(replica, num_shards=2, page_bytes=64).close()
        plan = StorageFaultPlan(seed=3, torn_writes=1, bit_flips=2)
        fault_stats = inject_storage_faults(primary, plan)
        assert isinstance(fault_stats, StorageFaultStats)
        registry = MetricsRegistry()
        server = PKGMServer.from_store(primary, cache_pages=3, registry=registry)
        scrub = server.store.scrub()
        facade = ResilientPKGMServer(server, registry=registry)
        outcomes = []
        for item in reference.known_items():
            outcomes.append(facade.serve(item).degraded)
        donor = EmbeddingStore.open(replica)
        repair = server.store.repair(donor)
        donor.close()
        result = (
            fault_stats.events,
            scrub.bad_pages,
            tuple(outcomes),
            repair.repaired,
            registry.snapshot(),
        )
        server.store.close()
        return result

    def test_two_runs_are_identical(self, tmp_path, reference):
        assert self.run_drill(tmp_path, reference, "a") == self.run_drill(
            tmp_path, reference, "b"
        )

    def test_zero_exceptions_and_full_repair(self, tmp_path, reference):
        events, bad_pages, outcomes, repaired, snapshot = self.run_drill(
            tmp_path, reference, "solo"
        )
        assert events and bad_pages
        assert sorted(repaired) == sorted(bad_pages)
        assert snapshot["store.pages_repaired"] == len(bad_pages)
        assert snapshot["store.pages_unrepairable"] == 0


class TestStorageFaultDeterminism:
    def test_same_plan_damages_same_bytes(self, tmp_path, reference):
        digests = []
        for run in ("x", "y"):
            target = tmp_path / run
            reference.save_store(target, num_shards=2, page_bytes=64).close()
            plan = StorageFaultPlan(
                seed=11, torn_writes=1, bit_flips=3, lost_fsync_tails=1
            )
            stats = inject_storage_faults(target, plan)
            digest = {
                p.name: p.read_bytes() for p in sorted(target.glob("*.bin"))
            }
            digests.append((stats.events, digest))
        assert digests[0] == digests[1]

    def test_different_seeds_differ(self, tmp_path, reference):
        events = []
        for seed in (0, 1):
            target = tmp_path / f"s{seed}"
            reference.save_store(target, num_shards=2, page_bytes=64).close()
            stats = inject_storage_faults(
                target, StorageFaultPlan(seed=seed, bit_flips=2)
            )
            events.append(stats.events)
        assert events[0] != events[1]

    def test_manifest_truncation_refuses_open(self, tmp_path, reference):
        target = tmp_path / "m"
        reference.save_store(target, num_shards=2, page_bytes=64).close()
        from repro.store import StoreManifestError

        inject_storage_faults(
            target, StorageFaultPlan(truncate_manifest=True)
        )
        with pytest.raises(StoreManifestError):
            EmbeddingStore.open(target)

    def test_damage_requested_on_empty_dir_raises(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(FileNotFoundError):
            inject_storage_faults(
                tmp_path / "empty", StorageFaultPlan(bit_flips=1)
            )
