"""Geometry and manifest self-checksum invariants."""

import numpy as np
import pytest

from repro.store import (
    STORE_VERSION,
    StoreManifestError,
    StoreSchemaError,
    TableSpec,
    manifest_checksum,
    parse_manifest,
    seal_manifest,
    shard_filename,
)
from repro.store.layout import canonical_json, shard_row_ids, spec_for_array


def make_spec(**overrides):
    base = dict(
        name="entity_table",
        dtype="float64",
        row_shape=(4,),
        rows=37,
        num_shards=3,
        layout="contiguous",
        page_bytes=128,
    )
    base.update(overrides)
    return TableSpec(**base)


class TestTableSpec:
    def test_row_geometry(self):
        spec = make_spec()
        assert spec.row_nbytes == 32
        assert spec.row_elems == 4
        assert spec.shape == (37, 4)
        assert spec.nbytes == 37 * 32
        assert spec.rows_per_page == 4  # 128 // 32

    def test_pages_are_row_aligned_even_for_oversized_rows(self):
        spec = make_spec(row_shape=(8, 8), page_bytes=64)  # 512-byte rows
        assert spec.rows_per_page == 1

    @pytest.mark.parametrize("layout", ["contiguous", "strided"])
    def test_locate_and_global_row_are_inverse(self, layout):
        spec = make_spec(layout=layout)
        for row in range(spec.rows):
            shard, local = spec.locate(row)
            assert 0 <= shard < spec.num_shards
            assert spec.global_row(shard, local) == row

    @pytest.mark.parametrize("layout", ["contiguous", "strided"])
    def test_shards_partition_rows(self, layout):
        spec = make_spec(layout=layout)
        seen = []
        for shard in range(spec.num_shards):
            rows = shard_row_ids(spec, shard)
            assert len(rows) == spec.shard_rows(shard)
            seen.extend(rows)
        assert sorted(seen) == list(range(spec.rows))

    def test_strided_matches_parameter_server_sharding(self):
        spec = make_spec(layout="strided")
        for row in range(spec.rows):
            shard, _ = spec.locate(row)
            assert shard == row % spec.num_shards

    def test_page_byte_range_covers_shard(self):
        spec = make_spec()
        for shard in range(spec.num_shards):
            total = 0
            for page in range(spec.shard_pages(shard)):
                start, stop = spec.page_byte_range(shard, page)
                assert stop > start
                total += stop - start
            assert total == spec.shard_nbytes(shard)

    def test_out_of_range_rows_and_shards_raise(self):
        spec = make_spec()
        with pytest.raises(IndexError):
            spec.locate(spec.rows)
        with pytest.raises(IndexError):
            spec.global_row(spec.num_shards, 0)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"name": "bad/name"},
            {"rows": -1},
            {"num_shards": 0},
            {"layout": "mirrored"},
            {"page_bytes": 0},
        ],
    )
    def test_invalid_specs_are_rejected(self, overrides):
        with pytest.raises(StoreSchemaError):
            make_spec(**overrides)

    def test_manifest_roundtrip(self):
        spec = make_spec()
        assert TableSpec.from_manifest("entity_table", spec.to_manifest()) == spec

    def test_spec_for_array_rejects_scalars(self):
        with pytest.raises(StoreSchemaError):
            spec_for_array("x", np.float64(3.0), 1, "contiguous", 128)


class TestManifestChecksum:
    def document(self):
        return seal_manifest(
            {
                "version": STORE_VERSION,
                "page_bytes": 128,
                "metadata": {},
                "tables": {},
            }
        )

    def test_sealed_manifest_parses(self):
        doc = self.document()
        assert parse_manifest(canonical_json(doc)) == doc

    def test_checksum_excludes_itself(self):
        doc = self.document()
        assert manifest_checksum(doc) == doc["checksum"]

    def test_any_field_change_is_refused(self):
        doc = self.document()
        doc["page_bytes"] = 256
        with pytest.raises(StoreManifestError, match="self-checksum"):
            parse_manifest(canonical_json(doc))

    def test_truncation_is_refused(self):
        payload = canonical_json(self.document())
        with pytest.raises(StoreManifestError, match="unreadable"):
            parse_manifest(payload[: len(payload) // 2])

    def test_non_object_is_refused(self):
        with pytest.raises(StoreManifestError, match="not a JSON object"):
            parse_manifest(b"[1, 2]")

    def test_wrong_version_is_refused(self):
        doc = seal_manifest(
            {"version": 99, "page_bytes": 128, "metadata": {}, "tables": {}}
        )
        with pytest.raises(StoreManifestError, match="version"):
            parse_manifest(canonical_json(doc))


def test_shard_filenames_are_stable():
    assert shard_filename("entity_table", 3) == "entity_table-0003.bin"
