"""Engine behaviour: roundtrips, cache, quarantine, scrub, repair."""

import os

import numpy as np
import pytest

from repro.store import (
    EmbeddingStore,
    MANIFEST_NAME,
    QuarantinedRowError,
    RepairReport,
    ScrubReport,
    StoreError,
    StoreManifestError,
    StoreSchemaError,
    StoreTable,
    shard_filename,
)


def flip_byte(path, offset=10):
    blob = bytearray(path.read_bytes())
    blob[offset] ^= 0xFF
    path.write_bytes(bytes(blob))


class TestBuildOpen:
    def test_roundtrip_bytes(self, tmp_path, store, arrays):
        reopened = EmbeddingStore.open(store.directory)
        for name, array in arrays.items():
            assert np.array_equal(reopened.read_table(name), array)
        reopened.close()

    def test_same_input_builds_are_byte_identical(self, tmp_path, arrays):
        for run in ("r1", "r2"):
            EmbeddingStore.build(
                tmp_path / run, arrays, num_shards=3, page_bytes=128
            ).close()
        files = sorted(p.name for p in (tmp_path / "r1").iterdir())
        assert files == sorted(p.name for p in (tmp_path / "r2").iterdir())
        for name in files:
            assert (tmp_path / "r1" / name).read_bytes() == (
                tmp_path / "r2" / name
            ).read_bytes(), name

    def test_empty_store_is_rejected(self, tmp_path):
        with pytest.raises(StoreSchemaError):
            EmbeddingStore.build(tmp_path / "s", {})

    def test_open_missing_directory_is_refused(self, tmp_path):
        with pytest.raises(StoreManifestError, match="no store manifest"):
            EmbeddingStore.open(tmp_path / "nowhere")

    def test_torn_manifest_is_refused(self, store):
        manifest = store.directory / MANIFEST_NAME
        manifest.write_bytes(manifest.read_bytes()[:-40])
        with pytest.raises(StoreManifestError):
            EmbeddingStore.open(store.directory)

    def test_bit_flipped_manifest_is_refused(self, store):
        flip_byte(store.directory / MANIFEST_NAME, offset=60)
        with pytest.raises(StoreManifestError):
            EmbeddingStore.open(store.directory)

    def test_metadata_survives_reopen(self, store):
        assert EmbeddingStore.open(store.directory).metadata == {"kind": "test"}


class TestReads:
    def test_read_row_matches_source(self, store, arrays):
        for row in (0, 13, 36):
            assert np.array_equal(
                store.read_row("entity_table", row), arrays["entity_table"][row]
            )

    def test_read_rows_any_shape(self, store, arrays):
        index = np.array([[0, 5], [36, 2]])
        assert np.array_equal(
            store.read_rows("entity_table", index), arrays["entity_table"][index]
        )

    def test_negative_rows_wrap(self, store, arrays):
        assert np.array_equal(
            store.read_row("entity_table", -1), arrays["entity_table"][-1]
        )

    def test_out_of_range_raises_index_error(self, store):
        with pytest.raises(IndexError):
            store.read_row("entity_table", 37)
        with pytest.raises(IndexError):
            store.read_rows("entity_table", np.array([0, 99]))

    def test_unknown_table_raises_schema_error(self, store):
        with pytest.raises(StoreSchemaError, match="no table"):
            store.read_row("nope", 0)

    def test_cache_stays_within_budget(self, store):
        store.read_table("entity_table")
        store.read_table("transfer")
        assert len(store._cache) <= 4
        snapshot = store.metrics.snapshot()
        assert snapshot["store.page_evictions"] > 0
        assert snapshot["store.page_faults"] > 0

    def test_page_hits_are_counted(self, store):
        store.read_row("entity_table", 0)
        before = store.metrics.snapshot()["store.page_hits"]
        store.read_row("entity_table", 0)
        assert store.metrics.snapshot()["store.page_hits"] == before + 1


class TestStoreTable:
    def test_matches_numpy_semantics(self, store, arrays):
        table = StoreTable(store, "entity_table")
        source = arrays["entity_table"]
        assert table.shape == source.shape
        assert table.dtype == source.dtype
        assert len(table) == len(source)
        assert np.array_equal(table[7], source[7])
        assert np.array_equal(table[2:20:3], source[2:20:3])
        assert np.array_equal(table[[4, 1, 4]], source[[4, 1, 4]])
        assert np.array_equal(table[np.array([[0, 1], [2, 3]])],
                              source[np.array([[0, 1], [2, 3]])])
        assert np.array_equal(np.asarray(table), source)

    def test_tuple_indexing(self, store, arrays):
        table = StoreTable(store, "transfer")
        source = arrays["transfer"]
        index = np.array([0, 3, 1])
        assert np.array_equal(table[index, 1], source[index, 1])


class TestQuarantine:
    def corrupt_shard(self, store, name="entity_table", shard=1, offset=10):
        flip_byte(store.directory / shard_filename(name, shard), offset)

    def test_lazy_detection_on_first_fault(self, store, arrays):
        self.corrupt_shard(store)
        spec = store.spec("entity_table")
        bad_row = spec.global_row(1, 0)
        with pytest.raises(QuarantinedRowError) as excinfo:
            store.read_row("entity_table", bad_row)
        assert excinfo.value.table == "entity_table"
        # Quarantine is part of the store error hierarchy (callers can
        # catch StoreError) *and* a LookupError (degraded-read policy).
        assert isinstance(excinfo.value, StoreError)
        assert isinstance(excinfo.value, LookupError)
        assert store.quarantined_pages() == [("entity_table", 1, 0)]
        # Healthy rows on other pages still read clean.
        assert np.array_equal(
            store.read_row("entity_table", 0), arrays["entity_table"][0]
        )

    def test_scrub_quarantines_verify_does_not(self, tmp_path, arrays):
        for mode in ("verify", "scrub"):
            built = EmbeddingStore.build(
                tmp_path / mode, arrays, num_shards=3, page_bytes=128
            )
            self.corrupt_shard(built)
            report = getattr(built, mode)()
            assert isinstance(report, ScrubReport)
            assert report.pages_bad == 1
            assert not report.clean
            expected = [("entity_table", 1, 0)] if mode == "scrub" else []
            assert built.quarantined_pages() == expected
            built.close()

    def test_torn_write_quarantines_tail_pages(self, store):
        shard_path = store.directory / shard_filename("entity_table", 0)
        size = shard_path.stat().st_size
        with open(shard_path, "r+b") as handle:
            handle.truncate(size // 2)
        report = store.scrub()
        torn = [k for k in report.bad_pages if k[0] == "entity_table"]
        assert torn  # pages at/after the tear fail
        assert all(key[1] == 0 for key in torn)

    def test_quarantined_reads_are_counted(self, store):
        self.corrupt_shard(store)
        store.scrub()
        spec = store.spec("entity_table")
        bad_row = spec.global_row(1, 0)
        for _ in range(3):
            with pytest.raises(QuarantinedRowError):
                store.read_row("entity_table", bad_row)
        assert store.metrics.snapshot()["store.quarantined_reads"] == 3

    def test_quarantined_rows_enumerates_damage(self, store):
        self.corrupt_shard(store)
        store.scrub()
        spec = store.spec("entity_table")
        start, stop = spec.page_rows(1, 0)
        expected = sorted(spec.global_row(1, r) for r in range(start, stop))
        assert store.quarantined_rows("entity_table") == expected


class TestRepair:
    @pytest.fixture()
    def replica(self, tmp_path, arrays):
        built = EmbeddingStore.build(
            tmp_path / "replica", arrays, num_shards=3, page_bytes=128
        )
        yield built
        built.close()

    def test_repair_restores_bytes_exactly(self, store, replica, arrays):
        target = store.directory / shard_filename("entity_table", 1)
        pristine = target.read_bytes()
        flip_byte(target)
        store.scrub()
        report = store.repair(replica)
        assert isinstance(report, RepairReport)
        assert report.complete
        assert report.pages_repaired == 1
        assert target.read_bytes() == pristine
        assert store.quarantined_pages() == []
        assert np.array_equal(store.read_table("entity_table"),
                              arrays["entity_table"])
        assert store.scrub().clean

    def test_repair_after_torn_write(self, store, replica, arrays):
        target = store.directory / shard_filename("transfer", 0)
        with open(target, "r+b") as handle:
            handle.truncate(1)
        store.scrub()
        assert store.repair(replica).complete
        assert np.array_equal(store.read_table("transfer"), arrays["transfer"])

    def test_corrupt_donor_is_rejected(self, store, replica):
        flip_byte(store.directory / shard_filename("entity_table", 1))
        flip_byte(replica.directory / shard_filename("entity_table", 1))
        store.scrub()
        report = store.repair(replica)
        assert report.pages_unrepairable == 1
        assert store.quarantined_pages() == [("entity_table", 1, 0)]

    def test_mismatched_replica_is_rejected(self, store, tmp_path, arrays):
        other = EmbeddingStore.build(
            tmp_path / "other",
            {"entity_table": np.zeros((37, 4))},
            num_shards=2,
            page_bytes=128,
        )
        flip_byte(store.directory / shard_filename("entity_table", 1))
        store.scrub()
        report = store.repair(other)
        assert report.pages_unrepairable == 1
        other.close()

    def test_restore_manifest_from_replica(self, store, replica):
        manifest = store.directory / MANIFEST_NAME
        manifest.write_bytes(manifest.read_bytes()[: manifest.stat().st_size // 2])
        store.close()
        with pytest.raises(StoreManifestError):
            EmbeddingStore.open(store.directory)
        EmbeddingStore.restore_manifest(store.directory, replica.directory)
        reopened = EmbeddingStore.open(store.directory)
        assert reopened.verify().clean
        reopened.close()

    def test_restore_manifest_refuses_damaged_donor(self, store, replica):
        donor_manifest = replica.directory / MANIFEST_NAME
        flip_byte(donor_manifest, offset=30)
        with pytest.raises(StoreManifestError):
            EmbeddingStore.restore_manifest(store.directory, replica.directory)


class TestDeterministicAccounting:
    def test_identical_runs_produce_identical_metrics(self, tmp_path, arrays):
        snapshots = []
        for run in ("a", "b"):
            built = EmbeddingStore.build(
                tmp_path / run, arrays, num_shards=3, page_bytes=128,
                cache_pages=4,
            )
            flip_byte(built.directory / shard_filename("entity_table", 1))
            built.scrub()
            bad_row = built.quarantined_rows("entity_table")[0]
            quarantined_reads = 0
            for row in (0, 5, bad_row, 36):
                try:
                    built.read_row("entity_table", row)
                except QuarantinedRowError:
                    quarantined_reads += 1
            assert quarantined_reads == 1
            snapshots.append(built.metrics.snapshot())
            built.close()
        assert snapshots[0] == snapshots[1]
