"""``build_from_rows`` must be byte-for-byte ``build`` with bounded RAM."""

import numpy as np
import pytest

from repro.store import (
    EmbeddingStore,
    MANIFEST_NAME,
    RowSource,
    StoreSchemaError,
    StreamingShardWriter,
)


def make_arrays(rng):
    return {
        "entity": rng.standard_normal((37, 6)).astype(np.float32),
        "relation": rng.standard_normal((5, 6)).astype(np.float64),
        "ids": np.arange(37, dtype=np.int64),
    }


def directory_bytes(directory):
    return {
        path.name: path.read_bytes()
        for path in sorted(directory.iterdir())
        if path.is_file()
    }


@pytest.mark.parametrize("layout", ["contiguous", "strided"])
@pytest.mark.parametrize("num_shards", [1, 3])
@pytest.mark.parametrize("chunk_rows", [0, 4])
def test_streamed_build_matches_in_ram_build(
    tmp_path, layout, num_shards, chunk_rows
):
    arrays = make_arrays(np.random.default_rng(7))
    EmbeddingStore.build(
        tmp_path / "ram",
        arrays,
        num_shards=num_shards,
        layout=layout,
        page_bytes=256,
    ).close()
    sources = {
        name: RowSource.from_array(array, chunk_rows=chunk_rows)
        for name, array in arrays.items()
    }
    EmbeddingStore.build_from_rows(
        tmp_path / "stream",
        sources,
        num_shards=num_shards,
        layout=layout,
        page_bytes=256,
    ).close()
    assert directory_bytes(tmp_path / "ram") == directory_bytes(
        tmp_path / "stream"
    )


def test_streamed_store_reads_back_rows(tmp_path):
    array = np.random.default_rng(1).standard_normal((20, 3)).astype(
        np.float32
    )
    store = EmbeddingStore.build_from_rows(
        tmp_path,
        {"table": RowSource.from_array(array, chunk_rows=6)},
        num_shards=2,
        layout="strided",
        page_bytes=128,
    )
    try:
        assert np.array_equal(store.read_table("table"), array)
        assert np.array_equal(store.read_row("table", 13), array[13])
    finally:
        store.close()


def test_streaming_writer_matches_one_shot_shard(tmp_path):
    from repro.store import write_shard

    payload = bytes(range(256)) * 5
    (tmp_path / "a").mkdir()
    (tmp_path / "b").mkdir()
    one_shot = write_shard(tmp_path / "a", "shard.bin", payload, 128)
    writer = StreamingShardWriter(tmp_path / "b", "shard.bin", 128)
    for start in range(0, len(payload), 100):
        writer.write(payload[start : start + 100])
    streamed = writer.finish()
    assert streamed == one_shot
    assert (tmp_path / "a" / "shard.bin").read_bytes() == (
        tmp_path / "b" / "shard.bin"
    ).read_bytes()


def test_empty_table_streams(tmp_path):
    empty = np.zeros((0, 4), dtype=np.float32)
    store = EmbeddingStore.build_from_rows(
        tmp_path, {"empty": RowSource.from_array(empty)}
    )
    try:
        assert store.read_table("empty").shape == (0, 4)
    finally:
        store.close()


class TestAbortSemantics:
    def test_dtype_mismatch_leaves_no_manifest(self, tmp_path):
        source = RowSource(
            dtype="float32",
            row_shape=(4,),
            rows=8,
            chunks=lambda: [np.zeros((8, 4), dtype=np.float64)],
        )
        with pytest.raises(StoreSchemaError, match="dtype"):
            EmbeddingStore.build_from_rows(tmp_path, {"bad": source})
        assert not (tmp_path / MANIFEST_NAME).exists()
        assert not list(tmp_path.glob("*.tmp*"))

    def test_short_source_leaves_no_manifest(self, tmp_path):
        source = RowSource(
            dtype="float32",
            row_shape=(4,),
            rows=10,
            chunks=lambda: [np.zeros((6, 4), dtype=np.float32)],
        )
        with pytest.raises(StoreSchemaError, match="yielded 6 rows"):
            EmbeddingStore.build_from_rows(tmp_path, {"bad": source})
        assert not (tmp_path / MANIFEST_NAME).exists()

    def test_overlong_source_leaves_no_manifest(self, tmp_path):
        source = RowSource(
            dtype="float32",
            row_shape=(4,),
            rows=4,
            chunks=lambda: [np.zeros((8, 4), dtype=np.float32)],
        )
        with pytest.raises(StoreSchemaError, match="more than"):
            EmbeddingStore.build_from_rows(tmp_path, {"bad": source})
        assert not (tmp_path / MANIFEST_NAME).exists()
