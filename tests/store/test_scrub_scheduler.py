"""Incremental scrub scheduler: background sweeps, zero foreground cost."""

import pytest

from repro.store import QuarantinedRowError, ScrubScheduler
from repro.store.layout import shard_filename

from .test_store import flip_byte


class TestSweepMechanics:
    def test_ticks_cover_the_store_exactly_once_per_sweep(self, store):
        scheduler = ScrubScheduler(store, pages_per_tick=3)
        ticks = scheduler.run_sweep()
        assert sum(t.pages_scanned for t in ticks) >= scheduler.pages_total
        assert sum(1 for t in ticks if t.wrapped) == 1
        assert scheduler.metrics.counter("store.scrub.sweeps").value == 1

    def test_cursor_wraps_and_persists_across_ticks(self, store):
        scheduler = ScrubScheduler(store, pages_per_tick=2)
        first = scheduler.cursor
        scheduler.tick()
        assert scheduler.cursor == (first + 2) % scheduler.pages_total
        scheduler.run_sweep()
        assert scheduler.metrics.counter("store.scrub.sweeps").value >= 1

    def test_clean_store_sweeps_clean(self, store):
        scheduler = ScrubScheduler(store, pages_per_tick=4)
        for tick in scheduler.run_sweep():
            assert tick.clean
            assert tick.newly_quarantined == ()
        assert scheduler.metrics.counter("store.scrub.quarantined").value == 0

    def test_pages_per_tick_validated(self, store):
        with pytest.raises(ValueError):
            ScrubScheduler(store, pages_per_tick=0)


class TestDamageHandling:
    def test_planted_damage_is_quarantined_in_background(self, store):
        """The satellite's acceptance: a bad page is caught and
        quarantined by ticks alone, without a single foreground read."""
        flip_byte(store.directory / shard_filename("entity_table", 1))
        scheduler = ScrubScheduler(store, pages_per_tick=3)
        ticks = scheduler.run_sweep()
        bad = [key for tick in ticks for key in tick.newly_quarantined]
        assert len(bad) == 1
        assert bad[0][0] == "entity_table" and bad[0][1] == 1
        assert bad[0] in store.quarantine
        # Zero foreground interference: no cache traffic at all.
        assert store.metrics.counter("store.page_hits").value == 0
        assert store.metrics.counter("store.page_faults").value == 0
        assert scheduler.metrics.counter("store.scrub.quarantined").value == 1

    def test_quarantined_page_fails_future_reads(self, store):
        flip_byte(store.directory / shard_filename("entity_table", 1))
        scheduler = ScrubScheduler(store, pages_per_tick=8)
        scheduler.run_sweep()
        rows = store.quarantined_rows("entity_table")
        assert rows
        with pytest.raises(QuarantinedRowError):
            store.read_row("entity_table", rows[0])

    def test_second_sweep_does_not_requarantine(self, store):
        flip_byte(store.directory / shard_filename("entity_table", 1))
        scheduler = ScrubScheduler(store, pages_per_tick=4)
        scheduler.run_sweep()
        scheduler.run_sweep()
        assert scheduler.metrics.counter("store.scrub.quarantined").value == 1
        assert scheduler.metrics.counter("store.scrub.sweeps").value == 2


class TestCheckPageApi:
    def test_iter_page_keys_is_sorted_and_complete(self, store):
        keys = store.iter_page_keys()
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))
        assert all(name in store.table_names() for name, _, _ in keys)

    def test_check_page_true_on_clean_false_on_damage(self, store):
        keys = store.iter_page_keys()
        assert store.check_page(keys[0], quarantine=True)
        flip_byte(store.directory / shard_filename("entity_table", 1))
        damaged = [
            key
            for key in keys
            if not store.check_page(key, quarantine=False)
        ]
        assert damaged
        # quarantine=False probes without convicting.
        assert store.quarantine == set()
