"""Shard-file layer: atomic writes, CRC records, lazy mmap reads."""

import numpy as np
import pytest

from repro.store import (
    ShardInfo,
    ShardReader,
    TableSpec,
    page_crc32s,
    shard_filename,
    write_shard,
)


def make_spec(rows=16, page_bytes=64):
    return TableSpec(
        name="t",
        dtype="float64",
        row_shape=(4,),
        rows=rows,
        num_shards=1,
        layout="contiguous",
        page_bytes=page_bytes,
    )


def shard_bytes(spec, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((spec.rows, 4)).astype(np.float64).tobytes()


class TestPageCrc32s:
    def test_covers_every_byte_including_short_tail(self):
        data = bytes(range(0, 250))
        crcs = page_crc32s(data, 64)
        assert len(crcs) == 4  # 64+64+64+58
        import zlib

        assert crcs[-1] == zlib.crc32(data[192:])

    def test_rejects_non_positive_page(self):
        with pytest.raises(ValueError):
            page_crc32s(b"abc", 0)


class TestWriteShard:
    def test_roundtrip_through_reader(self, tmp_path):
        spec = make_spec()
        data = shard_bytes(spec)
        info = write_shard(
            tmp_path, shard_filename("t", 0), data, spec.page_bytes
        )
        assert isinstance(info, ShardInfo)
        assert info.nbytes == len(data)
        assert info.page_crcs == tuple(page_crc32s(data, spec.page_bytes))
        reader = ShardReader(tmp_path / info.file, spec, 0, info)
        for page in range(spec.shard_pages(0)):
            start, stop = spec.page_byte_range(0, page)
            chunk, ok = reader.read_page(page)
            assert ok and chunk == data[start:stop]
        assert reader.raw_bytes() == data
        reader.close()

    def test_manifest_record_roundtrips(self, tmp_path):
        spec = make_spec()
        info = write_shard(
            tmp_path, shard_filename("t", 0), shard_bytes(spec),
            spec.page_bytes,
        )
        assert ShardInfo.from_manifest(info.to_manifest()) == info


class TestReaderDamage:
    def test_torn_file_fails_pages_past_the_tear(self, tmp_path):
        spec = make_spec()
        data = shard_bytes(spec)
        info = write_shard(
            tmp_path, shard_filename("t", 0), data, spec.page_bytes
        )
        (tmp_path / info.file).write_bytes(data[: spec.page_bytes + 7])
        reader = ShardReader(tmp_path / info.file, spec, 0, info)
        _, ok0 = reader.read_page(0)
        assert ok0  # page before the tear still verifies
        for page in range(1, spec.shard_pages(0)):
            _, ok = reader.read_page(page)
            assert not ok
        reader.close()

    def test_bit_flip_fails_exactly_one_page(self, tmp_path):
        spec = make_spec()
        data = shard_bytes(spec)
        info = write_shard(
            tmp_path, shard_filename("t", 0), data, spec.page_bytes
        )
        blob = bytearray(data)
        blob[spec.page_bytes + 3] ^= 0x01  # inside page 1
        (tmp_path / info.file).write_bytes(bytes(blob))
        reader = ShardReader(tmp_path / info.file, spec, 0, info)
        verdicts = [
            reader.read_page(page)[1]
            for page in range(spec.shard_pages(0))
        ]
        assert verdicts.count(False) == 1 and verdicts[1] is False
        reader.close()

    def test_missing_file_fails_every_page_without_raising(self, tmp_path):
        spec = make_spec()
        info = ShardInfo(
            file=shard_filename("t", 0), nbytes=spec.nbytes,
            sha256="0" * 64,
            page_crcs=tuple(0 for _ in range(spec.shard_pages(0))),
        )
        reader = ShardReader(tmp_path / info.file, spec, 0, info)
        for page in range(spec.shard_pages(0)):
            data, ok = reader.read_page(page)
            assert data == b"" and not ok
        assert reader.raw_bytes() == b""
        reader.close()

    def test_out_of_range_page_is_damage_not_error(self, tmp_path):
        spec = make_spec()
        info = write_shard(
            tmp_path, shard_filename("t", 0), shard_bytes(spec),
            spec.page_bytes,
        )
        reader = ShardReader(tmp_path / info.file, spec, 0, info)
        assert reader.read_page(spec.shard_pages(0) - 1)[1]
        data, ok = reader.read_page(spec.shard_pages(0))
        assert data == b"" and not ok
        reader.close()
