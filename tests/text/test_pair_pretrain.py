"""Tests for the self-supervised title-pair pretext task (NSP substitute)."""

import numpy as np
import pytest

from repro.text import (
    MiniBert,
    MiniBertConfig,
    PairPretrainConfig,
    PairPretrainer,
    WordTokenizer,
)


@pytest.fixture
def tok():
    return WordTokenizer([f"w{i}" for i in range(40)])


@pytest.fixture
def encoder(tok):
    config = MiniBertConfig(
        vocab_size=tok.vocab_size,
        max_length=16,
        dim=24,
        num_layers=2,
        num_heads=2,
        ffn_dim=48,
        dropout=0.0,
        tie_qk_init=True,
    )
    return MiniBert(config, rng=np.random.default_rng(0))


def make_title_fn(rng):
    """Items are distinct 4-word bags; titles are noisy samples of them."""
    vocab_per_item = {}

    def title_fn(item):
        if item not in vocab_per_item:
            local = np.random.default_rng(item)
            vocab_per_item[item] = [f"w{i}" for i in local.choice(40, 4, replace=False)]
        words = vocab_per_item[item]
        keep = [w for w in words if rng.random() > 0.2]
        return keep or words[:1]

    return title_fn


class TestPairPretrainer:
    def test_build_pairs_balanced(self, encoder, tok):
        trainer = PairPretrainer(
            encoder, tok, PairPretrainConfig(num_pairs=100, epochs=1, seed=0)
        )
        pairs, labels = trainer.build_pairs(
            make_title_fn(np.random.default_rng(0)), num_items=20
        )
        assert len(pairs) == 100
        assert labels.sum() == 50

    def test_same_category_negatives(self, encoder, tok):
        trainer = PairPretrainer(
            encoder,
            tok,
            PairPretrainConfig(num_pairs=60, epochs=1, same_category_negatives=True),
        )
        categories = [i % 3 for i in range(20)]
        # Should not raise even with sparse categories.
        pairs, labels = trainer.build_pairs(
            make_title_fn(np.random.default_rng(1)), 20, categories
        )
        assert len(pairs) == 60

    def test_training_reduces_loss(self, encoder, tok):
        trainer = PairPretrainer(
            encoder,
            tok,
            PairPretrainConfig(
                num_pairs=400, epochs=6, batch_size=32, max_length=14, seed=0
            ),
        )
        losses = trainer.train(make_title_fn(np.random.default_rng(2)), num_items=25)
        assert losses[-1] < losses[0]

    def test_pretext_accuracy_above_chance_after_training(self, encoder, tok):
        trainer = PairPretrainer(
            encoder,
            tok,
            PairPretrainConfig(
                num_pairs=600, epochs=8, batch_size=32, max_length=14, seed=0
            ),
        )
        title_fn = make_title_fn(np.random.default_rng(3))
        trainer.train(title_fn, num_items=25)
        accuracy = trainer.pretext_accuracy(title_fn, num_items=25, num_pairs=200)
        assert accuracy > 0.6

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PairPretrainConfig(num_pairs=1)
        with pytest.raises(ValueError):
            PairPretrainConfig(epochs=0)
        with pytest.raises(ValueError):
            PairPretrainConfig(learning_rate=0)

    def test_rejects_single_item(self, encoder, tok):
        trainer = PairPretrainer(encoder, tok, PairPretrainConfig(num_pairs=10, epochs=1))
        with pytest.raises(ValueError):
            trainer.build_pairs(make_title_fn(np.random.default_rng(0)), num_items=1)
