"""Tests for the mini-BERT encoder, service injection, MLM, and heads."""

import numpy as np
import pytest

from repro.text import (
    MLMConfig,
    MLMTrainer,
    MiniBert,
    MiniBertConfig,
    PairClassifier,
    TextClassifier,
    WordTokenizer,
    mask_tokens,
)


@pytest.fixture
def tok():
    words = [f"w{i}" for i in range(30)]
    return WordTokenizer(words)


def make_bert(tok, **overrides):
    defaults = dict(
        vocab_size=tok.vocab_size,
        max_length=12,
        dim=16,
        num_layers=2,
        num_heads=2,
        ffn_dim=32,
        dropout=0.0,
        service_dim=8,
        max_service_vectors=10,
    )
    defaults.update(overrides)
    return MiniBert(MiniBertConfig(**defaults), rng=np.random.default_rng(0))


class TestMiniBert:
    def test_output_shape(self, tok):
        bert = make_bert(tok)
        ids, mask, seg = tok.encode_batch([["w1", "w2"], ["w3"]], 12)
        out = bert(ids, attention_mask=mask, segment_ids=seg)
        assert out.shape == (2, 12, 16)

    def test_pooled_is_cls_position(self, tok):
        bert = make_bert(tok)
        ids, mask, seg = tok.encode_batch([["w1"]], 12)
        hidden = bert(ids, attention_mask=mask, segment_ids=seg)
        assert np.allclose(bert.pooled(hidden).data, hidden.data[:, 0, :])

    def test_defaults_for_mask_and_segments(self, tok):
        bert = make_bert(tok)
        ids, _, _ = tok.encode_batch([["w1", "w2"]], 12)
        out = bert(ids)
        assert out.shape == (1, 12, 16)

    def test_rejects_overlong_sequence(self, tok):
        bert = make_bert(tok, max_length=6)
        ids = np.zeros((1, 7), dtype=np.int64)
        with pytest.raises(ValueError):
            bert(ids)

    def test_rejects_1d_ids(self, tok):
        bert = make_bert(tok)
        with pytest.raises(ValueError):
            bert(np.zeros(5, dtype=np.int64))

    def test_service_injection_extends_sequence(self, tok):
        bert = make_bert(tok)
        ids, mask, seg = tok.encode_batch([["w1"], ["w2"]], 12)
        service = np.random.default_rng(1).normal(size=(2, 4, 8))
        out = bert(ids, attention_mask=mask, segment_ids=seg, service_vectors=service)
        assert out.shape == (2, 12 + 4, 16)

    def test_service_vectors_influence_cls(self, tok):
        bert = make_bert(tok)
        bert.eval()
        ids, mask, seg = tok.encode_batch([["w1", "w2"]], 12)
        s1 = np.ones((1, 2, 8))
        s2 = -np.ones((1, 2, 8))
        out1 = bert(ids, mask, seg, service_vectors=s1)
        out2 = bert(ids, mask, seg, service_vectors=s2)
        assert not np.allclose(out1.data[:, 0], out2.data[:, 0])

    def test_service_without_projection_raises(self, tok):
        bert = make_bert(tok, service_dim=None)
        ids, mask, seg = tok.encode_batch([["w1"]], 12)
        with pytest.raises(ValueError):
            bert(ids, mask, seg, service_vectors=np.zeros((1, 2, 8)))

    def test_service_shape_validated(self, tok):
        bert = make_bert(tok)
        ids, mask, seg = tok.encode_batch([["w1"]], 12)
        with pytest.raises(ValueError):
            bert(ids, mask, seg, service_vectors=np.zeros((2, 2, 8)))  # wrong batch
        with pytest.raises(ValueError):
            bert(ids, mask, seg, service_vectors=np.zeros((1, 11, 8)))  # > max

    def test_service_segment_ids_change_output(self, tok):
        bert = make_bert(tok)
        bert.eval()
        ids, mask, seg = tok.encode_batch([["w1"]], 12)
        service = np.ones((1, 4, 8))
        segs_a = np.zeros((1, 4), dtype=np.int64)
        segs_b = np.array([[0, 0, 1, 1]])
        out_a = bert(ids, mask, seg, service_vectors=service, service_segment_ids=segs_a)
        out_b = bert(ids, mask, seg, service_vectors=service, service_segment_ids=segs_b)
        assert not np.allclose(out_a.data, out_b.data)

    def test_service_segment_shape_validated(self, tok):
        bert = make_bert(tok)
        ids, mask, seg = tok.encode_batch([["w1"]], 12)
        with pytest.raises(ValueError):
            bert(
                ids,
                mask,
                seg,
                service_vectors=np.zeros((1, 4, 8)),
                service_segment_ids=np.zeros((1, 3), dtype=np.int64),
            )

    def test_pair_service_segment_ids_helper(self):
        from repro.text import pair_service_segment_ids

        segs = pair_service_segment_ids(3, "pkgm-all", k=5)
        assert segs.shape == (3, 20)
        assert np.all(segs[:, :10] == 0) and np.all(segs[:, 10:] == 1)
        assert pair_service_segment_ids(3, "base", k=5) is None

    def test_gradients_flow_through_service_projection(self, tok):
        bert = make_bert(tok)
        ids, mask, seg = tok.encode_batch([["w1"]], 12)
        service = np.ones((1, 3, 8))
        out = bert(ids, mask, seg, service_vectors=service)
        out.sum().backward()
        assert bert.service_projection.weight.grad is not None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MiniBertConfig(vocab_size=3)
        with pytest.raises(ValueError):
            MiniBertConfig(max_length=2)
        with pytest.raises(ValueError):
            MiniBertConfig(num_segments=0)


class TestMaskTokens:
    def test_labels_only_at_selected_positions(self, tok):
        rng = np.random.default_rng(0)
        ids, mask, _ = tok.encode_batch([[f"w{i}" for i in range(8)]] * 10, 12)
        config = MLMConfig(mask_probability=0.5)
        corrupted, labels = mask_tokens(ids, mask, tok, config, rng)
        selected = labels >= 0
        # Original ids preserved in labels.
        assert np.all(labels[selected] == ids[selected])
        # Non-selected positions untouched.
        assert np.all(corrupted[~selected] == ids[~selected])

    def test_never_masks_specials_or_padding(self, tok):
        rng = np.random.default_rng(1)
        ids, mask, _ = tok.encode_batch([["w1", "w2"]] * 20, 12)
        config = MLMConfig(mask_probability=0.9)
        corrupted, labels = mask_tokens(ids, mask, tok, config, rng)
        specials = np.isin(ids, [tok.pad_id, tok.cls_id, tok.sep_id])
        assert np.all(labels[specials] == -1)
        assert np.all(corrupted[specials] == ids[specials])

    def test_mask_token_dominates_corruptions(self, tok):
        rng = np.random.default_rng(2)
        ids, mask, _ = tok.encode_batch([[f"w{i}" for i in range(10)]] * 50, 12)
        config = MLMConfig(mask_probability=0.5)
        corrupted, labels = mask_tokens(ids, mask, tok, config, rng)
        selected = labels >= 0
        masked_share = (corrupted[selected] == tok.mask_id).mean()
        assert 0.7 < masked_share < 0.9

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MLMConfig(mask_probability=0.0)
        with pytest.raises(ValueError):
            MLMConfig(replace_with_mask=0.8, replace_with_random=0.3)


class TestMLMTraining:
    def test_loss_decreases(self, tok):
        bert = make_bert(tok, service_dim=None, dropout=0.0)
        rng = np.random.default_rng(3)
        # Structured corpus: deterministic co-occurrence so MLM can learn.
        corpus = []
        for _ in range(60):
            start = int(rng.integers(0, 10))
            corpus.append([f"w{start}", f"w{start + 10}", f"w{start + 20}"])
        trainer = MLMTrainer(
            bert, tok, MLMConfig(epochs=10, batch_size=16, learning_rate=3e-3, seed=0)
        )
        losses = trainer.train(corpus, max_length=8)
        assert losses[-1] < losses[0]

    def test_empty_corpus_raises(self, tok):
        bert = make_bert(tok, service_dim=None)
        trainer = MLMTrainer(bert, tok)
        with pytest.raises(ValueError):
            trainer.train([])

    def test_predict_masked_returns_vocab_logits(self, tok):
        bert = make_bert(tok, service_dim=None)
        trainer = MLMTrainer(bert, tok, MLMConfig(epochs=1))
        trainer.train([["w1", "w2", "w3"]] * 4, max_length=8)
        logits = trainer.predict_masked(["w1", "w2", "w3"], masked_position=2)
        assert logits.shape == (tok.vocab_size,)


class TestHeads:
    def test_classifier_shapes(self, tok):
        bert = make_bert(tok)
        clf = TextClassifier(bert, num_classes=5, rng=np.random.default_rng(1))
        ids, mask, seg = tok.encode_batch([["w1"], ["w2"], ["w3"]], 12)
        logits = clf(ids, mask, seg)
        assert logits.shape == (3, 5)
        assert clf.predict(ids, mask, seg).shape == (3,)

    def test_classifier_rejects_single_class(self, tok):
        with pytest.raises(ValueError):
            TextClassifier(make_bert(tok), num_classes=1)

    def test_pair_classifier_shapes(self, tok):
        bert = make_bert(tok)
        pair = PairClassifier(bert, rng=np.random.default_rng(2))
        ids, mask, seg = tok.encode_pair_batch(
            [(["w1"], ["w2"]), (["w3"], ["w4"])], 12
        )
        logits = pair(ids, mask, seg)
        assert logits.shape == (2,)
        proba = pair.predict_proba(ids, mask, seg)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_classifier_trains_on_separable_data(self, tok):
        """Fine-tuning drives training accuracy up on a separable task."""
        from repro.nn import Adam, functional as F

        bert = make_bert(tok, service_dim=None, dropout=0.0)
        clf = TextClassifier(bert, num_classes=2, rng=np.random.default_rng(3))
        titles = [["w1", "w2"]] * 8 + [["w20", "w21"]] * 8
        labels = np.array([0] * 8 + [1] * 8)
        ids, mask, seg = tok.encode_batch(titles, 8)
        opt = Adam(clf.parameters(), lr=1e-3)
        for _ in range(30):
            opt.zero_grad()
            loss = F.cross_entropy(clf(ids, mask, seg), labels)
            loss.backward()
            opt.step()
        accuracy = (clf.predict(ids, mask, seg) == labels).mean()
        assert accuracy == 1.0
