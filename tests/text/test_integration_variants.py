"""Unit tests for the integration-variant helpers (paper §II-E)."""

import numpy as np
import pytest

from repro.text import VARIANTS, validate_variant, vectors_per_item


class TestValidateVariant:
    def test_accepts_all_known(self):
        for variant in VARIANTS:
            assert validate_variant(variant) == variant

    def test_case_insensitive(self):
        assert validate_variant("PKGM-ALL") == "pkgm-all"
        assert validate_variant("Base") == "base"

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            validate_variant("pkgm")
        with pytest.raises(ValueError):
            validate_variant("")


class TestVectorsPerItem:
    @pytest.mark.parametrize(
        "variant,k,expected",
        [
            ("base", 10, 0),
            ("pkgm-t", 10, 10),
            ("pkgm-r", 10, 10),
            ("pkgm-all", 10, 20),
            ("pkgm-all", 1, 2),
        ],
    )
    def test_counts(self, variant, k, expected):
        assert vectors_per_item(variant, k) == expected

    def test_matches_paper_2k_formulation(self):
        """§II-E: k triple vectors + k relation vectors = 2k total."""
        k = 7
        assert (
            vectors_per_item("pkgm-t", k) + vectors_per_item("pkgm-r", k)
            == vectors_per_item("pkgm-all", k)
            == 2 * k
        )
