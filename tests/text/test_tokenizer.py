"""Unit tests for the word tokenizer."""

import numpy as np
import pytest

from repro.text import SPECIAL_TOKENS, WordTokenizer


@pytest.fixture
def tok():
    return WordTokenizer(["red", "skirt", "cotton", "brandx", "summer"])


class TestVocabulary:
    def test_specials_occupy_first_ids(self, tok):
        assert tok.pad_id == 0
        assert tok.unk_id == 1
        assert tok.cls_id == 2
        assert tok.sep_id == 3
        assert tok.mask_id == 4

    def test_vocab_size(self, tok):
        assert tok.vocab_size == 5 + 5

    def test_unknown_word_maps_to_unk(self, tok):
        assert tok.id_of("zzz") == tok.unk_id

    def test_roundtrip(self, tok):
        assert tok.token_of(tok.id_of("red")) == "red"

    def test_token_of_bad_id_raises(self, tok):
        with pytest.raises(IndexError):
            tok.token_of(999)

    def test_is_special(self, tok):
        assert tok.is_special(tok.pad_id)
        assert not tok.is_special(tok.id_of("red"))

    def test_specials_not_duplicated(self):
        tok = WordTokenizer(["[PAD]", "word"])
        assert tok.vocab_size == 5 + 1


class TestEncodeSingle:
    def test_structure(self, tok):
        ids, mask, segments = tok.encode(["red", "skirt"], max_length=8)
        assert ids[0] == tok.cls_id
        assert ids[3] == tok.sep_id
        assert list(ids[4:]) == [tok.pad_id] * 4
        assert list(mask) == [1, 1, 1, 1, 0, 0, 0, 0]
        assert np.all(segments == 0)

    def test_truncation_keeps_first_words(self, tok):
        words = ["red", "skirt", "cotton", "summer", "brandx"]
        ids, _, _ = tok.encode(words, max_length=5)
        decoded = tok.decode(ids)
        assert decoded == ["red", "skirt", "cotton"]

    def test_min_length_validated(self, tok):
        with pytest.raises(ValueError):
            tok.encode(["red"], max_length=2)

    def test_batch_shapes(self, tok):
        ids, mask, segments = tok.encode_batch(
            [["red"], ["skirt", "cotton"]], max_length=6
        )
        assert ids.shape == mask.shape == segments.shape == (2, 6)


class TestEncodePair:
    def test_structure(self, tok):
        ids, mask, segments = tok.encode_pair(["red"], ["skirt"], max_length=8)
        assert ids[0] == tok.cls_id
        assert ids[2] == tok.sep_id  # after first sentence
        assert ids[4] == tok.sep_id  # after second sentence
        # Segments: [CLS] a [SEP] -> 0, b [SEP] -> 1.
        assert list(segments[:5]) == [0, 0, 0, 1, 1]
        assert np.all(segments[5:] == 0)
        assert list(mask[:5]) == [1] * 5

    def test_each_side_truncated_to_half_budget(self, tok):
        a = ["red"] * 10
        b = ["skirt"] * 10
        ids, _, _ = tok.encode_pair(a, b, max_length=11)
        decoded = tok.decode(ids)
        assert decoded.count("red") == 4  # (11-3)//2
        assert decoded.count("skirt") == 4

    def test_min_length_validated(self, tok):
        with pytest.raises(ValueError):
            tok.encode_pair(["a"], ["b"], max_length=4)

    def test_pair_batch(self, tok):
        ids, mask, segments = tok.encode_pair_batch(
            [(["red"], ["skirt"]), (["cotton"], ["summer"])], max_length=8
        )
        assert ids.shape == (2, 8)
        assert segments.max() == 1

    def test_unknown_words_in_pair(self, tok):
        ids, _, _ = tok.encode_pair(["zzz"], ["qqq"], max_length=8)
        assert (ids == tok.unk_id).sum() == 2


class TestDecode:
    def test_skips_specials_by_default(self, tok):
        ids, _, _ = tok.encode(["red"], max_length=6)
        assert tok.decode(ids) == ["red"]

    def test_keeps_specials_on_request(self, tok):
        ids, _, _ = tok.encode(["red"], max_length=6)
        decoded = tok.decode(ids, skip_special=False)
        assert decoded[0] == "[CLS]"
        assert "[PAD]" in decoded
