"""Tests for the Poincaré-ball operations and the MuRP scorer."""

import numpy as np
import pytest

from repro.baselines import MuRP, make_scorer
from repro.baselines.hyperbolic import (
    artanh,
    expmap0,
    logmap0,
    mobius_add,
    poincare_distance,
    project_to_ball,
)
from repro.nn import Tensor, check_gradients, no_grad


RNG = np.random.default_rng(0)


def ball_points(*shape, scale=0.2):
    return Tensor(RNG.normal(size=shape) * scale, requires_grad=True)


class TestHyperbolicOps:
    def test_artanh_inverts_tanh(self):
        x = np.linspace(-0.9, 0.9, 7)
        out = artanh(Tensor(np.tanh(x))).data
        assert np.allclose(out, x, atol=1e-8)

    def test_artanh_clips_out_of_domain(self):
        out = artanh(Tensor(np.array([1.5, -1.5]))).data
        assert np.all(np.isfinite(out))

    def test_mobius_identity(self):
        """0 ⊕ y == y."""
        y = RNG.normal(size=(4, 3)) * 0.3
        out = mobius_add(Tensor(np.zeros_like(y)), Tensor(y)).data
        assert np.allclose(out, y, atol=1e-9)

    def test_mobius_left_inverse(self):
        """(-x) ⊕ x == 0."""
        x = RNG.normal(size=(4, 3)) * 0.3
        out = mobius_add(Tensor(-x), Tensor(x)).data
        assert np.allclose(out, 0.0, atol=1e-9)

    def test_mobius_stays_in_ball(self):
        x = project_to_ball(RNG.normal(size=(50, 4)))
        y = project_to_ball(RNG.normal(size=(50, 4)))
        out = mobius_add(Tensor(x), Tensor(y)).data
        assert np.all(np.linalg.norm(out, axis=-1) < 1.0 + 1e-9)

    def test_exp_log_roundtrip(self):
        y = RNG.normal(size=(6, 5)) * 0.3
        roundtrip = expmap0(logmap0(Tensor(y))).data
        assert np.allclose(roundtrip, y, atol=1e-8)

    def test_log_exp_roundtrip(self):
        v = RNG.normal(size=(6, 5)) * 0.3
        roundtrip = logmap0(expmap0(Tensor(v))).data
        assert np.allclose(roundtrip, v, atol=1e-6)

    def test_distance_symmetric_and_zero_on_diagonal(self):
        x = RNG.normal(size=(5, 4)) * 0.3
        y = RNG.normal(size=(5, 4)) * 0.3
        d_xy = poincare_distance(Tensor(x), Tensor(y)).data
        d_yx = poincare_distance(Tensor(y), Tensor(x)).data
        assert np.allclose(d_xy, d_yx, atol=1e-9)
        d_xx = poincare_distance(Tensor(x), Tensor(x)).data
        assert np.allclose(d_xx, 0.0, atol=1e-4)

    def test_distance_grows_toward_boundary(self):
        """The same Euclidean gap costs more near the ball's edge."""
        origin_pair = poincare_distance(
            Tensor(np.array([[0.0, 0.0]])), Tensor(np.array([[0.1, 0.0]]))
        ).item()
        edge_pair = poincare_distance(
            Tensor(np.array([[0.85, 0.0]])), Tensor(np.array([[0.95, 0.0]]))
        ).item()
        assert edge_pair > origin_pair

    def test_gradients(self):
        check_gradients(
            lambda a, b: mobius_add(a, b),
            [ball_points(3, 4), ball_points(3, 4)],
            atol=1e-4,
            rtol=1e-3,
        )
        check_gradients(
            lambda a, b: poincare_distance(a, b),
            [ball_points(3, 4), ball_points(3, 4)],
            atol=1e-4,
            rtol=1e-3,
        )

    def test_project_to_ball(self):
        big = RNG.normal(size=(10, 3)) * 5
        inside = project_to_ball(big)
        assert np.all(np.linalg.norm(inside, axis=-1) < 1.0)
        small = RNG.normal(size=(10, 3)) * 0.01
        assert np.allclose(project_to_ball(small), small)


class TestMuRP:
    @pytest.fixture
    def model(self):
        return MuRP(10, 3, 6, rng=np.random.default_rng(1))

    def test_registered_in_factory(self):
        assert isinstance(make_scorer("murp", 8, 2, 4), MuRP)

    def test_score_shape_and_finite(self, model):
        scores = model.score(np.array([0, 1]), np.array([0, 2]), np.array([3, 4]))
        assert scores.shape == (2,)
        assert np.all(np.isfinite(scores.data))

    def test_fast_paths_consistent(self, model):
        all_t = model.score_all_tails(2, 1)
        single = model.score(np.array([2]), np.array([1]), np.array([7])).item()
        assert single == pytest.approx(all_t[7], rel=1e-8)
        all_h = model.score_all_heads(1, 7)
        single = model.score(np.array([4]), np.array([1]), np.array([7])).item()
        assert single == pytest.approx(all_h[4], rel=1e-8)

    def test_gradients_reach_all_parameters(self, model):
        scores = model.score(np.array([0, 1]), np.array([0, 1]), np.array([2, 3]))
        scores.sum().backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, f"no grad for {name}"

    def test_post_batch_keeps_entities_in_ball(self, model):
        with no_grad():
            model.entities.weight.data *= 100
        model.post_batch()
        norms = np.linalg.norm(model.entities.weight.data, axis=-1)
        assert np.all(norms < 1.0)

    def test_trains_on_tiny_kg(self):
        from repro.baselines import KGETrainer, KGETrainerConfig
        from repro.kg import TripleStore

        store = TripleStore(
            [(h, r, 8 + (h + r) % 4) for h in range(8) for r in range(2)]
        )
        model = MuRP(12, 2, 8, rng=np.random.default_rng(2))
        losses = KGETrainer(
            model,
            KGETrainerConfig(epochs=15, batch_size=8, learning_rate=5e-3, seed=0),
        ).train(store)
        assert losses[-1] < losses[0]
