"""Tests for the TransD and TranSparse scorers."""

import numpy as np
import pytest

from repro.baselines import TranSparse, TransD, TransE, make_scorer
from repro.kg import TripleStore
from repro.nn import no_grad


NUM_ENTITIES, NUM_RELATIONS, DIM = 12, 4, 6


class TestTransD:
    @pytest.fixture
    def model(self):
        return TransD(NUM_ENTITIES, NUM_RELATIONS, DIM, rng=np.random.default_rng(0))

    def test_projection_formula(self, model):
        """e_perp = e + (e_p . e) r_p, computed against numpy."""
        h, r = 3, 1
        e = model.entities.weight.data[h]
        e_p = model.entity_proj.weight.data[h]
        r_p = model.relation_proj.weight.data[r]
        expected = e + (e_p @ e) * r_p
        from repro.nn import Tensor

        got = model._project(
            Tensor(e[None, :]), Tensor(e_p[None, :]), Tensor(r_p[None, :])
        ).data[0]
        assert np.allclose(got, expected)

    def test_fast_paths_consistent(self, model):
        head, relation, tail = 2, 1, 7
        single = model.score(
            np.array([head]), np.array([relation]), np.array([tail])
        ).item()
        assert single == pytest.approx(
            model.score_all_tails(head, relation)[tail], rel=1e-8
        )
        assert single == pytest.approx(
            model.score_all_heads(relation, tail)[head], rel=1e-8
        )

    def test_gradients_reach_projection_vectors(self, model):
        score = model.score(np.array([0, 1]), np.array([0, 1]), np.array([2, 3]))
        score.sum().backward()
        assert model.entity_proj.weight.grad is not None
        assert model.relation_proj.weight.grad is not None

    def test_zero_projection_reduces_to_transe(self):
        model = TransD(NUM_ENTITIES, NUM_RELATIONS, DIM, rng=np.random.default_rng(1))
        model.entity_proj.weight.data[:] = 0.0
        model.relation_proj.weight.data[:] = 0.0
        reference = TransE(NUM_ENTITIES, NUM_RELATIONS, DIM, rng=np.random.default_rng(1))
        with no_grad():
            reference.entities.weight.data = model.entities.weight.data.copy()
            reference.relations.weight.data = model.relations.weight.data.copy()
        h, r, t = np.array([0]), np.array([1]), np.array([2])
        assert model.score(h, r, t).item() == pytest.approx(
            reference.score(h, r, t).item()
        )


class TestTranSparse:
    @pytest.fixture
    def model(self):
        return TranSparse(
            NUM_ENTITIES, NUM_RELATIONS, DIM, rng=np.random.default_rng(0)
        )

    def test_default_masks_dense(self, model):
        assert np.all(model._masks == 1.0)

    def test_set_densities_sparsifies_rare_relations(self, model):
        counts = {0: 100, 1: 100, 2: 5, 3: 1}
        model.set_densities(counts)
        dense_fill = model._masks[0].mean()
        sparse_fill = model._masks[3].mean()
        assert sparse_fill < dense_fill
        # Diagonal backbone always kept.
        for relation in range(NUM_RELATIONS):
            assert np.all(np.diag(model._masks[relation]) == 1.0)

    def test_masked_entries_stay_zero_after_updates(self, model):
        model.set_densities({0: 100, 1: 50, 2: 5, 3: 1})
        zero_mask = model._masks == 0.0
        # Simulate a gradient step filling everything, then post_batch.
        with no_grad():
            model.matrices.data = model.matrices.data + 1.0
        model.post_batch()
        assert np.all(model.matrices.data[zero_mask] == 0.0)

    def test_fast_paths_consistent_after_sparsify(self, model):
        model.set_densities({0: 100, 1: 50, 2: 5, 3: 1})
        head, relation, tail = 4, 3, 9
        single = model.score(
            np.array([head]), np.array([relation]), np.array([tail])
        ).item()
        assert single == pytest.approx(
            model.score_all_tails(head, relation)[tail], rel=1e-8
        )
        assert single == pytest.approx(
            model.score_all_heads(relation, tail)[head], rel=1e-8
        )

    def test_validates_min_density(self):
        with pytest.raises(ValueError):
            TranSparse(5, 2, 4, min_density=0.0)

    def test_set_densities_empty_noop(self, model):
        before = model._masks.copy()
        model.set_densities({})
        assert np.array_equal(model._masks, before)


class TestFactoryIntegration:
    def test_new_names_registered(self):
        assert isinstance(make_scorer("transd", 5, 2, 4), TransD)
        assert isinstance(make_scorer("TranSparse", 5, 2, 4), TranSparse)

    def test_trainable_end_to_end(self):
        from repro.baselines import KGETrainer, KGETrainerConfig

        store = TripleStore(
            [(h, r, 8 + (h + r) % 4) for h in range(8) for r in range(2)]
        )
        for name in ("transd", "transparse"):
            model = make_scorer(name, 12, 2, 8, rng=np.random.default_rng(0))
            if isinstance(model, TranSparse):
                model.set_densities(store.relation_counts())
            losses = KGETrainer(
                model,
                KGETrainerConfig(epochs=12, batch_size=8, learning_rate=0.02, seed=0),
            ).train(store)
            assert losses[-1] < losses[0]
