"""Tests for the filtered link-prediction ranking protocol."""

import numpy as np
import pytest

from repro.baselines import evaluate_link_prediction, make_scorer
from repro.baselines.link_prediction import _rank
from repro.kg import TripleStore


class OracleModel:
    """A fake scorer that knows the answers: true triples get energy 0."""

    def __init__(self, truth, num_entities):
        self.truth = truth
        self.num_entities = num_entities

    def score_all_tails(self, head, relation):
        energies = np.ones(self.num_entities)
        for h, r, t in self.truth:
            if h == head and r == relation:
                energies[t] = 0.0
        return energies

    def score_all_heads(self, relation, tail):
        energies = np.ones(self.num_entities)
        for h, r, t in self.truth:
            if r == relation and t == tail:
                energies[h] = 0.0
        return energies


class AntiOracleModel(OracleModel):
    """True triples get the *worst* energy."""

    def score_all_tails(self, head, relation):
        return 1.0 - super().score_all_tails(head, relation)

    def score_all_heads(self, relation, tail):
        return 1.0 - super().score_all_heads(relation, tail)


@pytest.fixture
def tiny():
    truth = [(0, 0, 5), (1, 0, 6), (2, 1, 7)]
    test = TripleStore(truth)
    return truth, test


class TestOracleRanking:
    def test_oracle_gets_perfect_metrics(self, tiny):
        truth, test = tiny
        model = OracleModel(truth, num_entities=10)
        result = evaluate_link_prediction(model, test, [test], ks=(1, 3))
        assert result.mrr == pytest.approx(1.0)
        assert result.hits[1] == pytest.approx(1.0)
        assert result.mean_rank == pytest.approx(1.0)

    def test_anti_oracle_ranks_last(self, tiny):
        truth, test = tiny
        model = AntiOracleModel(truth, num_entities=10)
        result = evaluate_link_prediction(model, test, [test], ks=(1,))
        assert result.hits[1] == 0.0
        assert result.mean_rank > 5

    def test_filtering_removes_other_true_answers(self):
        # (0,0,5) and (0,0,6) both true; when ranking (0,0,5) the entity 6
        # must be excluded from candidates.
        truth = [(0, 0, 5), (0, 0, 6)]
        test = TripleStore([(0, 0, 5)])
        filter_store = TripleStore(truth)

        class BiasedModel(OracleModel):
            def score_all_tails(self, head, relation):
                energies = np.ones(self.num_entities)
                energies[6] = 0.0  # other true answer scores best
                energies[5] = 0.5
                return energies

            def score_all_heads(self, relation, tail):
                energies = np.ones(self.num_entities)
                energies[0] = 0.0
                return energies

        model = BiasedModel(truth, num_entities=10)
        filtered = evaluate_link_prediction(model, test, [filter_store], ks=(1,))
        unfiltered = evaluate_link_prediction(model, test, [test], ks=(1,))
        # With filtering, entity 6 is removed, so rank of 5 improves to 1.
        assert filtered.hits[1] > unfiltered.hits[1]

    def test_tail_only_mode(self, tiny):
        truth, test = tiny
        model = OracleModel(truth, num_entities=10)
        result = evaluate_link_prediction(model, test, [test], both_sides=False)
        assert result.num_queries == len(test.to_array())

    def test_max_queries_subsamples(self, tiny):
        truth, test = tiny
        model = OracleModel(truth, num_entities=10)
        result = evaluate_link_prediction(
            model, test, [test], max_queries=2, rng=np.random.default_rng(0)
        )
        assert result.num_queries == 4  # 2 triples x 2 sides

    def test_empty_test_raises(self):
        model = OracleModel([], num_entities=10)
        with pytest.raises(ValueError):
            evaluate_link_prediction(model, TripleStore(), [])

    def test_tie_policy_averages(self):
        """A constant scorer gets the mid rank, not rank 1."""
        class ConstantModel:
            num_entities = 10

            def score_all_tails(self, head, relation):
                return np.zeros(10)

            def score_all_heads(self, relation, tail):
                return np.zeros(10)

        rank = _rank(ConstantModel(), 0, 0, 5, [], side="tail")
        # 0 strictly better, 9 ties -> 1 + 9//2 = 5.
        assert rank == 5

    def test_bad_side_raises(self, tiny):
        truth, _ = tiny
        model = OracleModel(truth, num_entities=10)
        with pytest.raises(ValueError):
            _rank(model, 0, 0, 5, [], side="middle")


class TestEndToEnd:
    def test_trained_transe_beats_untrained(self):
        from repro.baselines import KGETrainer, KGETrainerConfig
        from repro.data import CatalogConfig, generate_catalog
        from repro.kg import split_triples

        catalog = generate_catalog(
            CatalogConfig(
                num_categories=3,
                products_per_category=10,
                min_items_per_product=2,
                max_items_per_product=3,
                seed=0,
            )
        )
        split = split_triples(catalog.store, 0.12, 0.12, np.random.default_rng(0))
        n_ent, n_rel = len(catalog.entities), len(catalog.relations)

        untrained = make_scorer("transe", n_ent, n_rel, 16, rng=np.random.default_rng(1))
        before = evaluate_link_prediction(
            untrained, split.test, [split.train, split.valid, split.test]
        )
        trained = make_scorer("transe", n_ent, n_rel, 16, rng=np.random.default_rng(1))
        KGETrainer(
            trained,
            KGETrainerConfig(epochs=30, batch_size=64, learning_rate=0.02, seed=0),
        ).train(split.train)
        after = evaluate_link_prediction(
            trained, split.test, [split.train, split.valid, split.test]
        )
        assert after.mrr > max(before.mrr * 2, 0.15)


class TestANNEvaluation:
    @pytest.fixture(scope="class")
    def transe(self):
        rng = np.random.default_rng(3)
        model = make_scorer("transe", 120, 4, 16, rng=np.random.default_rng(2))
        triples = [
            (int(rng.integers(0, 120)), int(rng.integers(0, 4)), int(rng.integers(0, 120)))
            for _ in range(25)
        ]
        return model, TripleStore(triples)

    def test_flat_index_has_perfect_recall(self, transe):
        from repro.baselines import evaluate_link_prediction_ann

        model, test = transe
        result = evaluate_link_prediction_ann(model, test, k=5, index_kind="flat")
        assert result.recall_at_k == 1.0
        assert result.num_queries == len(test.to_array())
        assert result.exact_distance_computations == result.num_queries * 120

    def test_ivf_trades_recall_for_savings(self, transe):
        from repro.baselines import evaluate_link_prediction_ann

        model, test = transe
        result = evaluate_link_prediction_ann(
            model, test, k=5, index_kind="ivf",
            index_params={"nlist": 8, "nprobe": 4, "seed": 0},
        )
        assert 0.0 <= result.recall_at_k <= 1.0
        assert result.saving > 1.0
        assert "recall@5" in result.as_row("ivf")

    def test_prebuilt_index_is_used(self, transe):
        from repro.baselines import evaluate_link_prediction_ann
        from repro.index import FlatIndex

        model, test = transe
        index = FlatIndex(model.dim, metric="l1")
        index.add(model.entities.weight.data)
        result = evaluate_link_prediction_ann(model, test, k=3, index=index)
        assert result.recall_at_k == 1.0
        assert index.metrics.counter("index.search.queries").value > 0

    def test_non_transe_rejected(self, transe):
        from repro.baselines import evaluate_link_prediction_ann

        _, test = transe
        oracle = OracleModel([], num_entities=120)
        with pytest.raises(TypeError, match="TransE"):
            evaluate_link_prediction_ann(oracle, test, k=5)

    def test_max_queries_subsamples(self, transe):
        from repro.baselines import evaluate_link_prediction_ann

        model, test = transe
        result = evaluate_link_prediction_ann(
            model, test, k=5, index_kind="flat", max_queries=7
        )
        assert result.num_queries == 7
