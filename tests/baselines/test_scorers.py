"""Unit tests for the KGE scorers: formulas, fast paths, gradients."""

import numpy as np
import pytest

from repro.baselines import (
    SCORERS,
    ComplEx,
    DistMult,
    KGETrainer,
    KGETrainerConfig,
    RESCAL,
    TransE,
    TransH,
    TransR,
    make_scorer,
)
from repro.kg import TripleStore
from repro.nn import no_grad


NUM_ENTITIES, NUM_RELATIONS, DIM = 12, 4, 6


@pytest.fixture(params=sorted(SCORERS))
def scorer(request):
    return make_scorer(
        request.param, NUM_ENTITIES, NUM_RELATIONS, DIM, rng=np.random.default_rng(0)
    )


class TestScorerContract:
    """Every scorer satisfies the shared energy-model contract."""

    def test_batch_score_shape(self, scorer):
        h = np.array([0, 1, 2])
        r = np.array([0, 1, 2])
        t = np.array([3, 4, 5])
        assert scorer.score(h, r, t).shape == (3,)

    def test_score_all_tails_consistent_with_score(self, scorer):
        head, relation = 2, 1
        all_energies = scorer.score_all_tails(head, relation)
        assert all_energies.shape == (NUM_ENTITIES,)
        for tail in (0, 5, 11):
            single = scorer.score(
                np.array([head]), np.array([relation]), np.array([tail])
            ).item()
            assert single == pytest.approx(all_energies[tail], rel=1e-8, abs=1e-8)

    def test_score_all_heads_consistent_with_score(self, scorer):
        relation, tail = 2, 7
        all_energies = scorer.score_all_heads(relation, tail)
        assert all_energies.shape == (NUM_ENTITIES,)
        for head in (1, 4, 9):
            single = scorer.score(
                np.array([head]), np.array([relation]), np.array([tail])
            ).item()
            assert single == pytest.approx(all_energies[head], rel=1e-8, abs=1e-8)

    def test_gradients_reach_every_parameter(self, scorer):
        h = np.array([0, 1, 2, 3])
        r = np.array([0, 1, 2, 3])
        t = np.array([4, 5, 6, 7])
        scorer.score(h, r, t).sum().backward()
        for name, param in scorer.named_parameters():
            assert param.grad is not None, f"no grad for {name}"

    def test_post_batch_runs(self, scorer):
        scorer.post_batch()  # must not raise


class TestFormulaValues:
    def test_transe_formula(self):
        m = TransE(5, 2, 3, rng=np.random.default_rng(1))
        h, r, t = 0, 1, 2
        expected = np.abs(
            m.entities.weight.data[h]
            + m.relations.weight.data[r]
            - m.entities.weight.data[t]
        ).sum()
        got = m.score(np.array([h]), np.array([r]), np.array([t])).item()
        assert got == pytest.approx(expected)

    def test_transh_projection_removes_normal_component(self):
        m = TransH(5, 2, 3, rng=np.random.default_rng(2))
        w = m.normals.weight.data[0]
        w = w / np.linalg.norm(w)
        e = m.entities.weight.data[1]
        projected = m._project_np(e, m.normals.weight.data[0])
        assert projected @ w == pytest.approx(0.0, abs=1e-10)

    def test_transr_reduces_to_transe_with_identity(self):
        m = TransR(5, 2, 3, rng=np.random.default_rng(3))
        m.matrices.data[:] = np.eye(3)
        ref = TransE(5, 2, 3, rng=np.random.default_rng(3))
        with no_grad():
            ref.entities.weight.data = m.entities.weight.data.copy()
            ref.relations.weight.data = m.relations.weight.data.copy()
        h, r, t = np.array([0]), np.array([1]), np.array([2])
        assert m.score(h, r, t).item() == pytest.approx(ref.score(h, r, t).item())

    def test_distmult_symmetric_in_head_tail(self):
        m = DistMult(5, 2, 3, rng=np.random.default_rng(4))
        h, r, t = np.array([0]), np.array([1]), np.array([2])
        assert m.score(h, r, t).item() == pytest.approx(
            m.score(t, r, h).item()
        )

    def test_complex_asymmetric_in_head_tail(self):
        m = ComplEx(5, 2, 3, rng=np.random.default_rng(5))
        h, r, t = np.array([0]), np.array([1]), np.array([2])
        assert m.score(h, r, t).item() != pytest.approx(m.score(t, r, h).item())

    def test_rescal_formula(self):
        m = RESCAL(5, 2, 3, rng=np.random.default_rng(6))
        h, r, t = 0, 1, 2
        expected = -(
            m.entities.weight.data[h]
            @ m.matrices.data[r]
            @ m.entities.weight.data[t]
        )
        got = m.score(np.array([h]), np.array([r]), np.array([t])).item()
        assert got == pytest.approx(expected)


class TestFactory:
    def test_known_names(self):
        for name in SCORERS:
            model = make_scorer(name, 5, 2, 4)
            assert model.num_entities == 5

    def test_case_insensitive(self):
        assert isinstance(make_scorer("TransE", 5, 2, 4), TransE)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_scorer("bogus", 5, 2, 4)

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            TransE(5, 2, 0)


class TestTrainerSmoke:
    def test_loss_decreases_for_each_family(self):
        store = TripleStore(
            [(h, r, 8 + (h + r) % 4) for h in range(8) for r in range(2)]
        )
        for name in ("transe", "distmult"):
            model = make_scorer(name, 12, 2, 8, rng=np.random.default_rng(0))
            losses = KGETrainer(
                model,
                KGETrainerConfig(epochs=15, batch_size=8, learning_rate=0.02, seed=0),
            ).train(store)
            assert losses[-1] < losses[0]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            KGETrainerConfig(epochs=0)
        with pytest.raises(ValueError):
            KGETrainerConfig(margin=0)
