"""Tests for ConvE and its from-ops convolution."""

import numpy as np
import pytest

from repro.baselines import ConvE, make_scorer
from repro.baselines.conve import _square_factorization, conv2d_3x3, pad2d
from repro.nn import Tensor, check_gradients


RNG = np.random.default_rng(0)


class TestPad2d:
    def test_shape_and_content(self):
        x = Tensor(np.ones((2, 1, 3, 4)))
        padded = pad2d(x, 1)
        assert padded.shape == (2, 1, 5, 6)
        assert np.allclose(padded.data[:, :, 1:-1, 1:-1], 1.0)
        assert np.allclose(padded.data[:, :, 0, :], 0.0)
        assert np.allclose(padded.data[:, :, :, 0], 0.0)

    def test_zero_padding_noop(self):
        x = Tensor(np.ones((1, 1, 2, 2)))
        assert pad2d(x, 0) is x

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            pad2d(Tensor(np.ones((1, 1, 2, 2))), -1)


class TestConv2d:
    def test_matches_naive_convolution(self):
        x = RNG.normal(size=(2, 3, 5, 4))
        w = RNG.normal(size=(2, 3, 3, 3))
        out = conv2d_3x3(Tensor(x), Tensor(w), padding=1).data
        # Naive reference.
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        expected = np.zeros((2, 2, 5, 4))
        for b in range(2):
            for f in range(2):
                for i in range(5):
                    for j in range(4):
                        expected[b, f, i, j] = np.sum(
                            xp[b, :, i : i + 3, j : j + 3] * w[f]
                        )
        assert np.allclose(out, expected, atol=1e-10)

    def test_no_padding_shrinks(self):
        x = Tensor(RNG.normal(size=(1, 1, 5, 5)))
        w = Tensor(RNG.normal(size=(1, 1, 3, 3)))
        assert conv2d_3x3(x, w, padding=0).shape == (1, 1, 3, 3)

    def test_too_small_input_rejected(self):
        x = Tensor(RNG.normal(size=(1, 1, 2, 2)))
        w = Tensor(RNG.normal(size=(1, 1, 3, 3)))
        with pytest.raises(ValueError):
            conv2d_3x3(x, w, padding=0)

    def test_gradients(self):
        x = Tensor(RNG.normal(size=(1, 2, 4, 3)), requires_grad=True)
        w = Tensor(RNG.normal(size=(2, 2, 3, 3)), requires_grad=True)
        check_gradients(
            lambda a, b: conv2d_3x3(a, b, padding=1), [x, w], atol=1e-4, rtol=1e-3
        )


class TestConvE:
    @pytest.fixture
    def model(self):
        return ConvE(10, 3, 12, rng=np.random.default_rng(1), num_filters=4)

    def test_registered_in_factory(self):
        assert isinstance(make_scorer("conve", 8, 2, 6), ConvE)

    def test_score_shape(self, model):
        scores = model.score(np.array([0, 1]), np.array([0, 2]), np.array([3, 4]))
        assert scores.shape == (2,)

    def test_fast_tail_path_consistent(self, model):
        all_t = model.score_all_tails(2, 1)
        for tail in (0, 5, 9):
            single = model.score(
                np.array([2]), np.array([1]), np.array([tail])
            ).item()
            assert single == pytest.approx(all_t[tail], rel=1e-8, abs=1e-8)

    def test_fast_head_path_consistent(self, model):
        all_h = model.score_all_heads(1, 7)
        for head in (0, 4, 9):
            single = model.score(
                np.array([head]), np.array([1]), np.array([7])
            ).item()
            assert single == pytest.approx(all_h[head], rel=1e-8, abs=1e-8)

    def test_gradients_reach_all_parameters(self, model):
        scores = model.score(np.array([0, 1]), np.array([0, 1]), np.array([2, 3]))
        scores.sum().backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, f"no grad for {name}"

    def test_asymmetric(self, model):
        forward = model.score(np.array([0]), np.array([1]), np.array([2])).item()
        backward = model.score(np.array([2]), np.array([1]), np.array([0])).item()
        assert forward != pytest.approx(backward)

    def test_image_shape_validation(self):
        with pytest.raises(ValueError):
            ConvE(5, 2, 12, image_shape=(5, 3))
        with pytest.raises(ValueError):
            ConvE(5, 2, 12, num_filters=0)

    def test_square_factorization(self):
        assert _square_factorization(12) == (3, 4)
        assert _square_factorization(16) == (4, 4)
        assert _square_factorization(7) == (1, 7)

    def test_trains_on_tiny_kg(self):
        from repro.baselines import KGETrainer, KGETrainerConfig
        from repro.kg import TripleStore

        store = TripleStore(
            [(h, r, 8 + (h + r) % 4) for h in range(8) for r in range(2)]
        )
        model = ConvE(12, 2, 8, rng=np.random.default_rng(2), num_filters=4)
        losses = KGETrainer(
            model,
            KGETrainerConfig(epochs=10, batch_size=8, learning_rate=5e-3, seed=0),
        ).train(store)
        assert losses[-1] < losses[0]
