"""Tests for the deployable server snapshot (save/load)."""

import numpy as np
import pytest

from repro.core import PKGMServer


class TestServerSaveLoad:
    def test_roundtrip_serves_identically(self, server, catalog, tmp_path):
        path = tmp_path / "server.npz"
        server.save(path)
        restored = PKGMServer.load(path)
        for item in catalog.items[:10]:
            original = server.serve(item.entity_id)
            loaded = restored.serve(item.entity_id)
            assert np.allclose(original.triple_vectors, loaded.triple_vectors)
            assert np.allclose(original.relation_vectors, loaded.relation_vectors)
            assert np.array_equal(original.key_relations, loaded.key_relations)

    def test_roundtrip_metadata(self, server, tmp_path):
        path = tmp_path / "server.npz"
        server.save(path)
        restored = PKGMServer.load(path)
        assert restored.k == server.k
        assert restored.dim == server.dim
        assert restored.num_entities == server.num_entities
        assert restored.num_relations == server.num_relations

    def test_batch_apis_work_after_load(self, server, catalog, tmp_path):
        path = tmp_path / "server.npz"
        server.save(path)
        restored = PKGMServer.load(path)
        ids = [item.entity_id for item in catalog.items[:5]]
        assert np.allclose(
            server.serve_sequence_batch(ids), restored.serve_sequence_batch(ids)
        )
        assert np.allclose(
            server.serve_condensed_batch(ids), restored.serve_condensed_batch(ids)
        )

    def test_unknown_item_raises_after_load(self, server, tmp_path):
        path = tmp_path / "server.npz"
        server.save(path)
        restored = PKGMServer.load(path)
        with pytest.raises(KeyError):
            restored.serve(10**9)

    def test_save_load_save_roundtrip(self, server, catalog, tmp_path):
        """A loaded server must itself be saveable (frozen selectors
        expose the same public surface as live ones)."""
        first = tmp_path / "first.npz"
        second = tmp_path / "second.npz"
        server.save(first)
        restored = PKGMServer.load(first)
        restored.save(second)
        twice = PKGMServer.load(second)
        for item in catalog.items[:5]:
            assert np.allclose(
                server.serve(item.entity_id).sequence(),
                twice.serve(item.entity_id).sequence(),
            )
        assert twice.known_items() == server.known_items()

    def test_known_items_preserved_across_roundtrip(self, server, tmp_path):
        path = tmp_path / "server.npz"
        server.save(path)
        restored = PKGMServer.load(path)
        assert restored.known_items() == server.known_items()

    def test_snapshot_is_self_contained(self, server, catalog, tmp_path):
        """Loading must not need the model, selector, or triple store."""
        path = tmp_path / "server.npz"
        server.save(path)
        restored = PKGMServer.load(path)
        entity = catalog.items[0].entity_id
        before = restored.serve(entity).sequence()
        # Mutating the original server's arrays must not affect the copy.
        server._entity_table += 10.0
        after = restored.serve(entity).sequence()
        server._entity_table -= 10.0
        assert np.allclose(before, after)
