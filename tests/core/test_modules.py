"""Unit tests for the triple and relation query modules (Eq. 1-2, 6-7)."""

import numpy as np
import pytest

from repro.core import PKGM, PKGMConfig, RelationQueryModule, TripleQueryModule
from repro.nn import Tensor, no_grad


RNG = np.random.default_rng(0)


@pytest.fixture
def triple_module():
    return TripleQueryModule(20, 5, dim=8, rng=np.random.default_rng(1))


@pytest.fixture
def relation_module(triple_module):
    return RelationQueryModule(triple_module, rng=np.random.default_rng(2))


class TestTripleQueryModule:
    def test_score_matches_l1_formula(self, triple_module):
        h, r, t = np.array([1]), np.array([2]), np.array([3])
        expected = np.abs(
            triple_module.entity_embeddings.weight.data[1]
            + triple_module.relation_embeddings.weight.data[2]
            - triple_module.entity_embeddings.weight.data[3]
        ).sum()
        assert triple_module.score(h, r, t).item() == pytest.approx(expected)

    def test_score_batch_shape(self, triple_module):
        scores = triple_module.score(
            np.array([0, 1, 2]), np.array([0, 1, 2]), np.array([3, 4, 5])
        )
        assert scores.shape == (3,)
        assert np.all(scores.data >= 0)

    def test_service_is_h_plus_r(self, triple_module):
        out = triple_module.service(np.array([4]), np.array([1]))
        expected = (
            triple_module.entity_embeddings.weight.data[4]
            + triple_module.relation_embeddings.weight.data[1]
        )
        assert np.allclose(out[0], expected)

    def test_service_returns_numpy(self, triple_module):
        out = triple_module.service(np.array([0, 1]), np.array([0, 1]))
        assert isinstance(out, np.ndarray)
        assert out.shape == (2, 8)

    def test_perfect_triple_scores_zero(self, triple_module):
        # Force t = h + r exactly.
        weights = triple_module.entity_embeddings.weight.data
        weights[3] = (
            weights[1] + triple_module.relation_embeddings.weight.data[2]
        )
        score = triple_module.score(np.array([1]), np.array([2]), np.array([3]))
        assert score.item() == pytest.approx(0.0, abs=1e-12)

    def test_gradients_flow(self, triple_module):
        score = triple_module.score(np.array([0]), np.array([0]), np.array([1]))
        score.sum().backward()
        assert triple_module.entity_embeddings.weight.grad is not None
        assert triple_module.relation_embeddings.weight.grad is not None

    def test_renormalize(self, triple_module):
        with no_grad():
            triple_module.entity_embeddings.weight.data *= 100
        triple_module.renormalize_entities(1.0)
        norms = np.linalg.norm(triple_module.entity_embeddings.weight.data, axis=1)
        assert np.all(norms <= 1.0 + 1e-9)

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            TripleQueryModule(5, 2, dim=0)


class TestRelationQueryModule:
    def test_transfer_matrix_shape(self, relation_module):
        assert relation_module.transfer_matrices.shape == (5, 8, 8)

    def test_init_near_identity(self, relation_module):
        eye = np.eye(8)
        for r in range(5):
            assert np.allclose(
                relation_module.transfer_matrices.data[r], eye, atol=0.1
            )

    def test_score_matches_formula(self, relation_module, triple_module):
        h, r = 3, 2
        M = relation_module.transfer_matrices.data[r]
        h_vec = triple_module.entity_embeddings.weight.data[h]
        r_vec = triple_module.relation_embeddings.weight.data[r]
        expected = np.abs(M @ h_vec - r_vec).sum()
        got = relation_module.score(np.array([h]), np.array([r])).item()
        assert got == pytest.approx(expected)

    def test_service_matches_transform(self, relation_module):
        heads, rels = np.array([0, 1]), np.array([2, 3])
        with_grad = relation_module.transform(heads, rels).data
        service = relation_module.service(heads, rels)
        assert np.allclose(with_grad, service)

    def test_zero_discrepancy_when_mh_equals_r(self, relation_module, triple_module):
        # Craft M_r h == r exactly.
        h, r = 0, 0
        h_vec = triple_module.entity_embeddings.weight.data[h]
        r_vec = triple_module.relation_embeddings.weight.data[r]
        # Set M = outer(r, h)/||h||^2 so M h = r.
        relation_module.transfer_matrices.data[r] = np.outer(
            r_vec, h_vec
        ) / np.dot(h_vec, h_vec)
        score = relation_module.score(np.array([h]), np.array([r]))
        assert score.item() == pytest.approx(0.0, abs=1e-10)

    def test_gradients_reach_transfer_matrices(self, relation_module):
        score = relation_module.score(np.array([1, 2]), np.array([0, 4]))
        score.sum().backward()
        grad = relation_module.transfer_matrices.grad
        assert grad is not None
        assert np.any(grad[0] != 0)
        assert np.any(grad[4] != 0)
        assert np.allclose(grad[1], 0)  # untouched relation

    def test_shares_embeddings_with_triple_module(self, relation_module, triple_module):
        names = dict(relation_module.named_parameters())
        assert "triple_module.entity_embeddings.weight" in names
        assert (
            names["triple_module.entity_embeddings.weight"]
            is triple_module.entity_embeddings.weight
        )


class TestPKGMModel:
    def test_joint_score_is_sum(self):
        model = PKGM(10, 3, PKGMConfig(dim=4), rng=np.random.default_rng(3))
        triples = np.array([[0, 1, 2], [3, 0, 4]])
        joint = model.score(triples).data
        ft = model.triple_module.score(
            triples[:, 0], triples[:, 1], triples[:, 2]
        ).data
        fr = model.relation_module.score(triples[:, 0], triples[:, 1]).data
        assert np.allclose(joint, ft + fr)

    def test_score_rejects_bad_shape(self):
        model = PKGM(10, 3, PKGMConfig(dim=4))
        with pytest.raises(ValueError):
            model.score(np.array([0, 1, 2]))

    def test_margin_loss_zero_when_negatives_far(self):
        model = PKGM(10, 3, PKGMConfig(dim=4, margin=0.5), rng=np.random.default_rng(4))
        pos = np.array([[0, 0, 1]])
        # Make the positive perfect and negative terrible.
        weights = model.triple_module.entity_embeddings.weight.data
        weights[1] = (
            weights[0] + model.triple_module.relation_embeddings.weight.data[0]
        )
        weights[2] = weights[1] + 100.0
        neg = np.array([[0, 0, 2]])
        # Loss = [f(pos) + margin - f(neg)]_+ ; f(neg) is huge -> loss only
        # from the shared relation term, bounded by f_R(pos)+margin-f_R(neg)=margin...
        # with same (h, r), f_R cancels; f_T(pos)=0, f_T(neg)~800.
        loss = model.margin_loss(pos, neg)
        assert loss.item() == pytest.approx(0.0)

    def test_margin_loss_positive_when_indistinguishable(self):
        model = PKGM(10, 3, PKGMConfig(dim=4, margin=2.0), rng=np.random.default_rng(5))
        pos = np.array([[0, 0, 1]])
        loss = model.margin_loss(pos, pos.copy())  # identical scores
        assert loss.item() == pytest.approx(2.0)

    def test_margin_loss_multiple_negatives(self):
        model = PKGM(10, 3, PKGMConfig(dim=4), rng=np.random.default_rng(6))
        pos = np.array([[0, 0, 1], [2, 1, 3]])
        negs = np.stack([pos.copy(), pos.copy()])  # (2, N, 3)
        loss = model.margin_loss(pos, negs)
        assert loss.item() == pytest.approx(2 * 2 * model.config.margin)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PKGMConfig(dim=0)
        with pytest.raises(ValueError):
            PKGMConfig(margin=0.0)

    def test_nearest_entities_finds_exact_match(self):
        model = PKGM(10, 3, PKGMConfig(dim=4), rng=np.random.default_rng(7))
        table = model.triple_module.entity_embeddings.weight.data
        top = model.nearest_entities(table[7], k=1)
        assert top[0][0] == 7

    def test_nearest_entities_candidate_restriction(self):
        model = PKGM(10, 3, PKGMConfig(dim=4), rng=np.random.default_rng(8))
        table = model.triple_module.entity_embeddings.weight.data
        candidates = np.array([2, 5, 9])
        top = model.nearest_entities(table[7], k=3, candidate_ids=candidates)
        assert set(top[0]) == {2, 5, 9}
