"""Integration tests: pre-training dynamics and service semantics.

These validate the paper's central claims at small scale:

* training reduces the margin loss (convergence);
* ``S_T(h, r)`` lands near the true tail embedding (Table I servicing);
* ``S_R`` norms order as has < should-have < should-not-have (§II-D's
  three cases, including completion);
* the server is data-independent and matches module outputs.
"""

import numpy as np
import pytest

from repro.core import (
    KeyRelationSelector,
    PKGM,
    PKGMConfig,
    PKGMTrainer,
    TrainerConfig,
    pretrain_pkgm,
)
from repro.kg import holdout_incompleteness
from repro.nn import no_grad


class TestTraining:
    def test_loss_decreases(self, trained_pkgm):
        _, history = trained_pkgm
        assert history.improved()
        assert history.final_loss < history.epoch_losses[0] * 0.5

    def test_entity_norms_constrained(self, trained_pkgm):
        model, _ = trained_pkgm
        norms = np.linalg.norm(
            model.triple_module.entity_embeddings.weight.data, axis=1
        )
        assert np.all(norms <= 1.0 + 1e-6)

    def test_deterministic_given_seed(self, catalog):
        kwargs = dict(
            num_entities=len(catalog.entities),
            num_relations=len(catalog.relations),
            model_config=PKGMConfig(dim=8),
            trainer_config=TrainerConfig(epochs=2, batch_size=128, seed=3),
            seed=3,
        )
        a = pretrain_pkgm(catalog.store, **kwargs)
        b = pretrain_pkgm(catalog.store, **kwargs)
        assert np.allclose(
            a.triple_module.entity_embeddings.weight.data,
            b.triple_module.entity_embeddings.weight.data,
        )

    def test_trainer_config_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainerConfig(batch_size=0)
        with pytest.raises(ValueError):
            TrainerConfig(learning_rate=0)
        with pytest.raises(ValueError):
            TrainerConfig(negatives_per_edge=0)

    def test_progress_callback_invoked(self, catalog):
        model = PKGM(
            len(catalog.entities), len(catalog.relations), PKGMConfig(dim=8)
        )
        seen = []
        PKGMTrainer(model, TrainerConfig(epochs=3, batch_size=256)).train(
            catalog.store, progress=lambda e, l: seen.append((e, l))
        )
        assert [e for e, _ in seen] == [0, 1, 2]


class TestServiceSemantics:
    def test_triple_service_close_to_true_tail(self, catalog, trained_pkgm):
        """S_T(h, r) lies closer to the true tail than to random entities."""
        model, _ = trained_pkgm
        arr = catalog.store.to_array()
        service = model.service_triple(arr[:, 0], arr[:, 1])
        tails = model.triple_module.entity_embeddings.weight.data[arr[:, 2]]
        true_dist = np.abs(service - tails).sum(axis=1).mean()
        rng = np.random.default_rng(9)
        random_ids = rng.integers(0, model.num_entities, len(arr))
        random_tails = model.triple_module.entity_embeddings.weight.data[random_ids]
        random_dist = np.abs(service - random_tails).sum(axis=1).mean()
        assert true_dist < random_dist * 0.85

    def test_tail_decoding_hits(self, catalog, trained_pkgm):
        """Nearest-entity decoding of S_T recovers the true tail often."""
        model, _ = trained_pkgm
        arr = catalog.store.to_array()[:300]
        service = model.service_triple(arr[:, 0], arr[:, 1])
        top = model.nearest_entities(service, k=5)
        hits = np.mean([arr[i, 2] in top[i] for i in range(len(arr))])
        assert hits > 0.5

    def test_relation_norm_three_cases(self, catalog, trained_pkgm):
        """§II-D: norm(has) < norm(should-have) < norm(should-not-have)."""
        model, _ = trained_pkgm
        schema_rels = {
            c.category_id: {
                catalog.relations.id_of(a.relation) for a in c.attributes
            }
            for c in catalog.schema
        }
        has, should, should_not = [], [], []
        for item in catalog.items:
            have = catalog.store.relations_of(item.entity_id)
            applicable = schema_rels[item.category_id]
            for r in range(len(catalog.relations)):
                pair = (item.entity_id, r)
                if r in have:
                    has.append(pair)
                elif r in applicable:
                    should.append(pair)
                else:
                    should_not.append(pair)

        def mean_norm(pairs):
            pairs = np.asarray(pairs)
            out = model.service_relation(pairs[:, 0], pairs[:, 1])
            return np.abs(out).sum(axis=1).mean()

        n_has, n_should, n_not = (
            mean_norm(has),
            mean_norm(should),
            mean_norm(should_not),
        )
        assert n_has < n_should < n_not

    def test_completion_on_heldout_triples(self, catalog):
        """Held-out true triples still decode well through S_T (completion)."""
        observed, missing = holdout_incompleteness(
            catalog.store, 0.15, np.random.default_rng(4)
        )
        model = pretrain_pkgm(
            observed,
            len(catalog.entities),
            len(catalog.relations),
            model_config=PKGMConfig(dim=16),
            trainer_config=TrainerConfig(
                epochs=25, batch_size=128, learning_rate=0.02, seed=0
            ),
            seed=0,
        )
        held = missing.to_array()
        service = model.service_triple(held[:, 0], held[:, 1])
        top = model.nearest_entities(service, k=10)
        hits = np.mean([held[i, 2] in top[i] for i in range(len(held))])
        # Never-seen triples should still rank the true tail in top-10
        # far above chance (chance ~ 10/N_entities ~ 0.035).
        assert hits > 0.3


class TestKeyRelationSelector:
    def test_k_relations_per_category(self, catalog, selector):
        for category in selector.categories():
            assert len(selector.for_category(category)) == selector.k

    def test_most_frequent_relation_first(self, catalog):
        item_to_category = {
            item.entity_id: item.category_id for item in catalog.items
        }
        selector = KeyRelationSelector(catalog.store, item_to_category, k=3)
        # brandIs (fill 0.95) and modelIs (fill 0.85) dominate all other
        # attributes (fill <= 0.9 with much smaller per-category counts).
        top = {catalog.relations.id_of("brandIs"), catalog.relations.id_of("modelIs")}
        for category in selector.categories():
            assert selector.for_category(category)[0] in top

    def test_for_item_matches_category(self, catalog, selector):
        item = catalog.items[0]
        assert selector.for_item(item.entity_id) == selector.for_category(
            item.category_id
        )

    def test_for_items_batch_shape(self, catalog, selector):
        ids = [item.entity_id for item in catalog.items[:7]]
        batch = selector.for_items(ids)
        assert batch.shape == (7, selector.k)

    def test_unknown_item_raises(self, selector):
        with pytest.raises(KeyError):
            selector.for_item(10**9)

    def test_unknown_category_raises(self, selector):
        with pytest.raises(KeyError):
            selector.for_category(10**9)

    def test_padding_cycles_for_sparse_categories(self):
        """Categories with fewer than k relations are padded by cycling."""
        from repro.kg import TripleStore

        store = TripleStore([(0, 7, 100), (0, 7, 101), (0, 8, 100)])
        selector = KeyRelationSelector(store, {0: 0}, k=5)
        key = selector.for_category(0)
        assert len(key) == 5
        assert key[:2] == [7, 8]
        assert set(key) == {7, 8}

    def test_rejects_bad_k(self, catalog):
        with pytest.raises(ValueError):
            KeyRelationSelector(catalog.store, {}, k=0)


class TestPKGMServer:
    def test_serve_shapes(self, server, catalog):
        vectors = server.serve(catalog.items[0].entity_id)
        assert vectors.triple_vectors.shape == (server.k, server.dim)
        assert vectors.relation_vectors.shape == (server.k, server.dim)
        assert vectors.sequence().shape == (2 * server.k, server.dim)
        assert vectors.condensed().shape == (2 * server.dim,)

    def test_serve_matches_model_modules(self, server, trained_pkgm, selector, catalog):
        model, _ = trained_pkgm
        entity = catalog.items[3].entity_id
        vectors = server.serve(entity)
        relations = np.asarray(selector.for_item(entity))
        heads = np.full(len(relations), entity)
        assert np.allclose(
            vectors.triple_vectors, model.service_triple(heads, relations)
        )
        assert np.allclose(
            vectors.relation_vectors, model.service_relation(heads, relations)
        )

    def test_condensed_matches_equation_8_9(self, server, catalog):
        """S = (1/k) sum_j [S_j ; S_{j+k}]."""
        vectors = server.serve(catalog.items[5].entity_id)
        manual = np.zeros(2 * server.dim)
        for j in range(server.k):
            manual += np.concatenate(
                [vectors.triple_vectors[j], vectors.relation_vectors[j]]
            )
        manual /= server.k
        assert np.allclose(vectors.condensed(), manual)

    def test_sequence_batch_consistent_with_serve(self, server, catalog):
        ids = [item.entity_id for item in catalog.items[:4]]
        batch = server.serve_sequence_batch(ids)
        assert batch.shape == (4, 2 * server.k, server.dim)
        for i, entity in enumerate(ids):
            assert np.allclose(batch[i], server.serve(entity).sequence())

    def test_condensed_batch_consistent_with_serve(self, server, catalog):
        ids = [item.entity_id for item in catalog.items[:4]]
        batch = server.serve_condensed_batch(ids)
        assert batch.shape == (4, 2 * server.dim)
        for i, entity in enumerate(ids):
            assert np.allclose(batch[i], server.serve(entity).condensed())

    def test_server_is_a_snapshot(self, trained_pkgm, selector, catalog):
        """Mutating the model after server construction changes nothing."""
        from repro.core import PKGMServer

        model, _ = trained_pkgm
        server = PKGMServer(model, selector)
        entity = catalog.items[0].entity_id
        before = server.serve(entity).sequence().copy()
        original = model.triple_module.entity_embeddings.weight.data.copy()
        with no_grad():
            model.triple_module.entity_embeddings.weight.data += 100.0
        after = server.serve(entity).sequence()
        with no_grad():
            model.triple_module.entity_embeddings.weight.data = original
        assert np.allclose(before, after)

    def test_relation_existence_score_orders(self, server, catalog):
        """Existing relations score lower than inapplicable ones on average."""
        schema_rels = {
            c.category_id: {
                catalog.relations.id_of(a.relation) for a in c.attributes
            }
            for c in catalog.schema
        }
        existing, inapplicable = [], []
        for item in catalog.items[:60]:
            have = catalog.store.relations_of(item.entity_id)
            applicable = schema_rels[item.category_id]
            for r in range(len(catalog.relations)):
                score = server.relation_existence_score(item.entity_id, r)
                if r in have:
                    existing.append(score)
                elif r not in applicable:
                    inapplicable.append(score)
        assert np.mean(existing) < np.mean(inapplicable)
