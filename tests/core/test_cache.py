"""Tests for the serving-side LRU cache."""

import numpy as np
import pytest

from repro.core import CachedPKGMServer
from repro.reliability import fallback_payload


@pytest.fixture
def cached(server):
    return CachedPKGMServer(server, capacity=4)


class TestCachedServing:
    def test_results_identical_to_uncached(self, cached, server, catalog):
        entity = catalog.items[0].entity_id
        direct = server.serve(entity)
        via_cache = cached.serve(entity)
        assert np.allclose(direct.sequence(), via_cache.sequence())

    def test_hit_miss_accounting(self, cached, catalog):
        entity = catalog.items[0].entity_id
        cached.serve(entity)
        cached.serve(entity)
        cached.serve(catalog.items[1].entity_id)
        stats = cached.stats()
        assert stats.hits == 1
        assert stats.misses == 2
        assert stats.hit_rate == pytest.approx(1 / 3)

    def test_lru_eviction(self, cached, catalog):
        ids = [item.entity_id for item in catalog.items[:5]]
        for entity in ids:  # capacity 4: first entry evicted
            cached.serve(entity)
        assert cached.stats().evictions == 1
        assert cached.stats().size == 4
        # Oldest (ids[0]) was evicted: serving it again is a miss.
        before = cached.stats().misses
        cached.serve(ids[0])
        assert cached.stats().misses == before + 1

    def test_recency_updated_on_hit(self, cached, catalog):
        ids = [item.entity_id for item in catalog.items[:5]]
        for entity in ids[:4]:
            cached.serve(entity)
        cached.serve(ids[0])  # refresh recency of the oldest
        cached.serve(ids[4])  # evicts ids[1], not ids[0]
        before = cached.stats().hits
        cached.serve(ids[0])
        assert cached.stats().hits == before + 1

    def test_batch_helpers_share_cache(self, cached, catalog):
        ids = [item.entity_id for item in catalog.items[:3]]
        seq = cached.serve_sequence_batch(ids)
        condensed = cached.serve_condensed_batch(ids)
        assert seq.shape[0] == 3
        assert condensed.shape[0] == 3
        stats = cached.stats()
        assert stats.misses == 3  # second batch fully cached
        assert stats.hits == 3

    def test_refresh_invalidates(self, cached, server, catalog):
        entity = catalog.items[0].entity_id
        cached.serve(entity)
        cached.refresh(server)
        assert cached.stats().size == 0
        before = cached.stats().misses
        cached.serve(entity)
        assert cached.stats().misses == before + 1

    def test_refresh_resets_stats(self, cached, server, catalog):
        cached.serve(catalog.items[0].entity_id)
        cached.serve(catalog.items[0].entity_id)
        cached.refresh(server)
        stats = cached.stats()
        assert stats.hits == 0 and stats.misses == 0 and stats.evictions == 0

    def test_refresh_can_keep_stats(self, cached, server, catalog):
        cached.serve(catalog.items[0].entity_id)
        cached.refresh(server, reset_stats=False)
        assert cached.stats().misses == 1
        assert cached.stats().size == 0

    def test_reset_stats_keeps_entries(self, cached, catalog):
        entity = catalog.items[0].entity_id
        cached.serve(entity)
        cached.reset_stats()
        assert cached.stats().misses == 0
        cached.serve(entity)  # still cached: a hit, not a miss
        assert cached.stats().hits == 1
        assert cached.stats().misses == 0

    def test_peek_does_not_mutate_stats_or_recency(self, cached, catalog):
        entity = catalog.items[0].entity_id
        assert cached.peek(entity) is None
        cached.serve(entity)
        stats_before = cached.stats()
        peeked = cached.peek(entity)
        assert peeked is not None
        assert np.allclose(peeked.sequence(), cached.serve(entity).sequence())
        assert cached.stats().misses == stats_before.misses

    def test_surface_properties(self, cached, server):
        assert cached.k == server.k
        assert cached.dim == server.dim
        assert cached.num_entities == server.num_entities
        assert cached.num_relations == server.num_relations
        assert cached.known_items() == server.known_items()

    def test_relation_existence_passthrough(self, cached, server, catalog):
        entity = catalog.items[0].entity_id
        assert cached.relation_existence_score(entity, 0) == pytest.approx(
            server.relation_existence_score(entity, 0)
        )

    def test_raw_services_pass_through(self, cached, server, catalog):
        heads = np.array([catalog.items[0].entity_id])
        relations = np.array([0])
        assert np.allclose(
            cached.triple_service(heads, relations),
            server.triple_service(heads, relations),
        )
        assert np.allclose(
            cached.relation_service(heads, relations),
            server.relation_service(heads, relations),
        )

    def test_capacity_validation(self, server):
        with pytest.raises(ValueError):
            CachedPKGMServer(server, capacity=0)

    def test_stats_row(self, cached):
        assert "hit-rate" in cached.stats().as_row()


class TestLegacyAccountingSurface:
    """The pre-registry attribute surface must survive the migration."""

    def test_hits_misses_evictions_attributes(self, cached, catalog):
        ids = [item.entity_id for item in catalog.items[:5]]
        for entity in ids:
            cached.serve(entity)
        cached.serve(ids[4])
        assert cached.hits == 1
        assert cached.misses == 5
        assert cached.evictions == 1
        stats = cached.stats()
        assert (stats.hits, stats.misses, stats.evictions) == (1, 5, 1)

    def test_attributes_track_registry(self, server, catalog):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        cached = CachedPKGMServer(server, capacity=4, registry=registry)
        cached.serve(catalog.items[0].entity_id)
        assert registry.snapshot()["cache.misses"] == cached.misses == 1

    def test_default_registry_is_private(self, server):
        a = CachedPKGMServer(server, capacity=4)
        b = CachedPKGMServer(server, capacity=4)
        a.serve(0)
        assert a.metrics is not b.metrics
        assert b.misses == 0

    def test_refresh_keeps_lifetime_refresh_count(self, cached, server, catalog):
        cached.serve(catalog.items[0].entity_id)
        cached.refresh(server)
        cached.refresh(server)
        assert cached.metrics.snapshot()["cache.refreshes"] == 2


class FlipFlopBackend:
    """Backend that serves flagged fallbacks until switched live."""

    def __init__(self, server):
        self._server = server
        self.live = False

    @property
    def k(self):
        return self._server.k

    @property
    def dim(self):
        return self._server.dim

    def serve(self, entity_id):
        if not self.live:
            return fallback_payload(entity_id, self.k, self.dim)
        return self._server.serve(entity_id)


class TestDegradedPayloadsNotCached:
    def test_degraded_result_is_not_stored(self, server, catalog):
        backend = FlipFlopBackend(server)
        cached = CachedPKGMServer(backend, capacity=4)
        entity = catalog.items[0].entity_id
        first = cached.serve(entity)
        assert first.degraded
        assert cached.stats().size == 0  # outage artifact never sticks

    def test_next_request_retries_live(self, server, catalog):
        backend = FlipFlopBackend(server)
        cached = CachedPKGMServer(backend, capacity=4)
        entity = catalog.items[0].entity_id
        cached.serve(entity)  # degraded, uncached
        backend.live = True
        second = cached.serve(entity)  # backend healed: a live miss
        assert not second.degraded
        assert cached.stats().misses == 2
        assert cached.stats().size == 1
        third = cached.serve(entity)  # the live payload is cached
        assert not third.degraded
        assert cached.stats().hits == 1

    def test_live_payloads_still_cached(self, server, catalog):
        cached = CachedPKGMServer(server, capacity=4)
        entity = catalog.items[0].entity_id
        cached.serve(entity)
        cached.serve(entity)
        assert cached.stats().hits == 1
        assert cached.stats().size == 1
