"""Property-based tests (hypothesis) for PKGM service invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KeyRelationSelector, PKGM, PKGMConfig, PKGMServer
from repro.kg import TripleStore


def make_model(seed, num_entities=12, num_relations=4, dim=6):
    return PKGM(
        num_entities,
        num_relations,
        PKGMConfig(dim=dim),
        rng=np.random.default_rng(seed),
    )


@settings(max_examples=30, deadline=None)
@given(
    st.integers(0, 2**31 - 1),
    st.lists(st.tuples(st.integers(0, 11), st.integers(0, 3)), min_size=1, max_size=8),
)
def test_triple_service_is_h_plus_r(seed, pairs):
    """Eq. 6 holds exactly for every (h, r), trained or not."""
    model = make_model(seed)
    heads = np.asarray([h for h, _ in pairs])
    relations = np.asarray([r for _, r in pairs])
    service = model.service_triple(heads, relations)
    expected = (
        model.triple_module.entity_embeddings.weight.data[heads]
        + model.triple_module.relation_embeddings.weight.data[relations]
    )
    assert np.allclose(service, expected)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(0, 2**31 - 1),
    st.lists(st.tuples(st.integers(0, 11), st.integers(0, 3)), min_size=1, max_size=8),
)
def test_relation_service_matches_autograd_transform(seed, pairs):
    """The numpy service path and the autograd path agree (Eq. 7)."""
    model = make_model(seed)
    heads = np.asarray([h for h, _ in pairs])
    relations = np.asarray([r for _, r in pairs])
    service = model.service_relation(heads, relations)
    autograd = model.relation_module.transform(heads, relations).data
    assert np.allclose(service, autograd)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(0, 2**31 - 1),
    st.lists(
        st.tuples(st.integers(0, 11), st.integers(0, 3), st.integers(0, 11)),
        min_size=1,
        max_size=10,
    ),
)
def test_joint_score_nonnegative_and_additive(seed, triples):
    """f = f_T + f_R with both parts L1 norms, hence nonnegative."""
    model = make_model(seed)
    arr = np.asarray(triples)
    total = model.score(arr).data
    f_t = model.triple_module.score(arr[:, 0], arr[:, 1], arr[:, 2]).data
    f_r = model.relation_module.score(arr[:, 0], arr[:, 1]).data
    assert np.all(total >= 0)
    assert np.allclose(total, f_t + f_r)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(0, 2**31 - 1),
    st.lists(
        st.tuples(st.integers(0, 11), st.integers(0, 3), st.integers(0, 11)),
        min_size=1,
        max_size=10,
    ),
)
def test_margin_loss_identical_pairs_equal_margin(seed, triples):
    """Identical positives/negatives give loss = margin * batch (Eq. 4)."""
    model = make_model(seed)
    arr = np.asarray(triples)
    loss = model.margin_loss(arr, arr.copy())
    assert loss.item() == np.float64(len(arr)) * model.config.margin


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(1, 5))
def test_condensed_is_mean_of_paired_concat(seed, k):
    """Eq. 8-9: condensed vector equals the mean of [S_j ; S_{j+k}]."""
    model = make_model(seed)
    store = TripleStore([(0, r % 4, 5 + r % 6) for r in range(4)])
    selector = KeyRelationSelector(store, {0: 0}, k=k)
    server = PKGMServer(model, selector)
    vectors = server.serve(0)
    manual = np.concatenate(
        [vectors.triple_vectors, vectors.relation_vectors], axis=1
    ).mean(axis=0)
    assert np.allclose(vectors.condensed(), manual)
    assert vectors.condensed().shape == (2 * model.config.dim,)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_sequence_order_is_triple_then_relation(seed):
    """§II-E: S_1..S_k from the triple module precede S_{k+1}..S_{2k}."""
    model = make_model(seed)
    store = TripleStore([(0, r, 5 + r) for r in range(4)])
    selector = KeyRelationSelector(store, {0: 0}, k=3)
    server = PKGMServer(model, selector)
    vectors = server.serve(0)
    sequence = vectors.sequence()
    assert np.allclose(sequence[:3], vectors.triple_vectors)
    assert np.allclose(sequence[3:], vectors.relation_vectors)
