"""Shared fixtures: a small catalog and a pre-trained PKGM.

Pre-training is the expensive part, so it is session-scoped; tests that
need an *untrained* model construct their own.
"""

import numpy as np
import pytest

from repro.core import (
    KeyRelationSelector,
    PKGM,
    PKGMConfig,
    PKGMServer,
    PKGMTrainer,
    TrainerConfig,
)
from repro.data import CatalogConfig, generate_catalog


@pytest.fixture(scope="session")
def catalog():
    return generate_catalog(
        CatalogConfig(
            num_categories=4,
            products_per_category=15,
            min_items_per_product=2,
            max_items_per_product=3,
            seed=0,
        )
    )


@pytest.fixture(scope="session")
def trained_pkgm(catalog):
    model = PKGM(
        len(catalog.entities),
        len(catalog.relations),
        PKGMConfig(dim=16),
        rng=np.random.default_rng(0),
    )
    trainer = PKGMTrainer(
        model,
        TrainerConfig(
            epochs=25,
            batch_size=128,
            learning_rate=0.02,
            corrupt_relation_prob=0.2,
            seed=0,
        ),
    )
    history = trainer.train(catalog.store)
    return model, history


@pytest.fixture(scope="session")
def selector(catalog):
    item_to_category = {
        item.entity_id: item.category_id for item in catalog.items
    }
    return KeyRelationSelector(catalog.store, item_to_category, k=5)


@pytest.fixture(scope="session")
def server(trained_pkgm, selector):
    model, _ = trained_pkgm
    return PKGMServer(model, selector)
