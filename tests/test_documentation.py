"""Documentation and packaging lint: keep the public surface documented.

These meta-tests fail when a new module, class, or example slips in
without the documentation standard the rest of the repository holds.
"""

import ast
import importlib
import pkgutil
from pathlib import Path

import pytest

import repro

ROOT = Path(__file__).parent.parent
SRC = ROOT / "src" / "repro"
EXAMPLES = ROOT / "examples"
BENCHMARKS = ROOT / "benchmarks"


def all_submodules():
    names = ["repro"]
    for module in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(module.name)
    return names


class TestModuleDocstrings:
    @pytest.mark.parametrize("name", all_submodules())
    def test_module_has_docstring(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a docstring"

    def test_public_classes_documented(self):
        undocumented = []
        for path in SRC.rglob("*.py"):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for node in ast.walk(tree):
                if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                    if not ast.get_docstring(node):
                        undocumented.append(f"{path.name}:{node.name}")
        assert not undocumented, f"classes without docstrings: {undocumented}"

    def test_public_functions_documented(self):
        undocumented = []
        for path in SRC.rglob("*.py"):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for node in tree.body:  # module-level functions only
                if isinstance(node, ast.FunctionDef) and not node.name.startswith("_"):
                    if not ast.get_docstring(node):
                        undocumented.append(f"{path.name}:{node.name}")
        assert not undocumented, f"functions without docstrings: {undocumented}"


class TestExamplesShape:
    def test_every_example_has_docstring_and_main(self):
        for script in EXAMPLES.glob("*.py"):
            tree = ast.parse(script.read_text(encoding="utf-8"))
            assert ast.get_docstring(tree), f"{script.name} lacks a docstring"
            names = {
                node.name for node in tree.body if isinstance(node, ast.FunctionDef)
            }
            assert "main" in names, f"{script.name} lacks a main()"

    def test_examples_reference_run_command(self):
        for script in EXAMPLES.glob("*.py"):
            text = script.read_text(encoding="utf-8")
            assert "Run:" in text, f"{script.name} lacks a Run: hint"


class TestBenchmarksShape:
    def test_every_table_bench_cites_paper_numbers(self):
        for bench in BENCHMARKS.glob("bench_table*.py"):
            text = bench.read_text(encoding="utf-8")
            assert "paper" in text.lower(), f"{bench.name} lacks paper context"

    def test_every_bench_records_a_table(self):
        for bench in BENCHMARKS.glob("bench_*.py"):
            text = bench.read_text(encoding="utf-8")
            assert "record_table" in text, f"{bench.name} records nothing"

    def test_every_paper_table_has_a_bench(self):
        names = {p.name for p in BENCHMARKS.glob("bench_table*.py")}
        for table in range(1, 10):
            assert any(
                f"table{table}" in name for name in names
            ), f"paper Table {'I' * table} has no bench"


class TestTopLevelDocs:
    def test_required_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE"):
            assert (ROOT / name).exists(), f"missing {name}"

    def test_design_covers_every_table(self):
        text = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
        for roman in ("Table I", "Table II", "Table III", "Table IV", "Table V",
                      "Table VI", "Table VII", "Table VIII", "Table IX"):
            assert roman in text, f"DESIGN.md misses {roman}"

    def test_experiments_covers_every_table(self):
        text = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for marker in ("TABLE1", "TABLE4", "TABLE8", "ABL_KGE", "ABL_RULES"):
            assert marker in text, f"EXPERIMENTS.md misses {marker} block"
