"""Tests for the schema builder and catalog generator."""

import numpy as np
import pytest

from repro.data import (
    AttributeSpec,
    CatalogConfig,
    build_default_schema,
    generate_catalog,
    make_brand_pool,
    make_series_pool,
)


class TestSchema:
    def test_requested_category_count(self):
        schema = build_default_schema(7, np.random.default_rng(0))
        assert len(schema) == 7
        assert len({c.name for c in schema}) == 7

    def test_category_ids_dense(self):
        schema = build_default_schema(5, np.random.default_rng(0))
        assert [c.category_id for c in schema] == list(range(5))

    def test_every_category_has_brand(self):
        schema = build_default_schema(10, np.random.default_rng(1))
        for category in schema:
            assert "brandIs" in category.attribute_relations()

    def test_attribute_count_within_bounds(self):
        schema = build_default_schema(
            10, np.random.default_rng(2), min_attributes=5, max_attributes=9
        )
        for category in schema:
            assert 5 <= len(category.attributes) <= 9

    def test_brand_subsets_differ_across_categories(self):
        schema = build_default_schema(10, np.random.default_rng(3))
        brand_sets = [
            frozenset(a.values)
            for c in schema
            for a in c.attributes
            if a.relation == "brandIs"
        ]
        assert len(set(brand_sets)) > 1

    def test_deterministic_given_seed(self):
        a = build_default_schema(6, np.random.default_rng(42))
        b = build_default_schema(6, np.random.default_rng(42))
        assert [c.name for c in a] == [c.name for c in b]
        assert [c.attributes for c in a] == [c.attributes for c in b]

    def test_rejects_excessive_categories(self):
        with pytest.raises(ValueError):
            build_default_schema(10_000, np.random.default_rng(0))

    def test_rejects_zero_categories(self):
        with pytest.raises(ValueError):
            build_default_schema(0, np.random.default_rng(0))

    def test_attribute_spec_validation(self):
        with pytest.raises(ValueError):
            AttributeSpec(relation="x", values=())
        with pytest.raises(ValueError):
            AttributeSpec(relation="x", values=("a",), fill_probability=0.0)

    def test_brand_pool_unique(self):
        pool = make_brand_pool(30, np.random.default_rng(0))
        assert len(pool) == 30
        assert len(set(pool)) == 30

    def test_series_pool_format(self):
        pool = make_series_pool(10, np.random.default_rng(0))
        assert all("-" in s for s in pool)


@pytest.fixture(scope="module")
def catalog():
    config = CatalogConfig(
        num_categories=6,
        products_per_category=12,
        min_items_per_product=2,
        max_items_per_product=4,
        seed=7,
    )
    return generate_catalog(config)


class TestCatalog:
    def test_counts_consistent(self, catalog):
        assert len(catalog.products) == 6 * 12
        assert len(catalog.items) >= len(catalog.products) * 2
        assert catalog.entities.num_items == len(catalog.items)

    def test_items_per_product_bounds(self, catalog):
        for product in catalog.products:
            n = len(catalog.items_of_product(product.product_id))
            assert 2 <= n <= 4

    def test_item_ids_dense_and_match_entity_registry(self, catalog):
        for i, item in enumerate(catalog.items):
            assert item.item_id == i
            assert catalog.entities.is_item(item.entity_id)
            assert catalog.entities.label_of(item.entity_id) == item.label

    def test_product_truth_covers_all_schema_attributes(self, catalog):
        schema_by_id = {c.category_id: c for c in catalog.schema}
        for product in catalog.products:
            spec = schema_by_id[product.category_id]
            expected = set(spec.attribute_relations()) | {"modelIs"}
            assert set(product.attributes) == expected

    def test_model_codes_unique_per_product(self, catalog):
        codes = [p.attributes["modelIs"] for p in catalog.products]
        assert len(set(codes)) == len(codes)
        assert codes[0] == "md-0"

    def test_items_of_same_product_share_model_code(self, catalog):
        products = {p.product_id: p for p in catalog.products}
        for item in catalog.items:
            if "modelIs" in item.attributes:
                truth = products[item.product_id].attributes["modelIs"]
                assert item.attributes["modelIs"] == truth

    def test_model_codes_can_be_disabled(self):
        from repro.data import CatalogConfig, generate_catalog

        catalog = generate_catalog(
            CatalogConfig(
                num_categories=2,
                products_per_category=4,
                include_model_codes=False,
                seed=0,
            )
        )
        assert "modelIs" not in catalog.relations
        assert all("modelIs" not in p.attributes for p in catalog.products)

    def test_seller_fill_is_subset_of_truth_keys(self, catalog):
        products = {p.product_id: p for p in catalog.products}
        for item in catalog.items:
            truth = products[item.product_id].attributes
            assert set(item.attributes) <= set(truth)

    def test_kg_triples_match_item_attributes(self, catalog):
        for item in catalog.items[:50]:
            triples = catalog.store.triples_with_head(item.entity_id)
            assert len(triples) == len(item.attributes)
            for relation_label, value_label in item.attributes.items():
                r = catalog.relations.id_of(relation_label)
                tails = catalog.store.tails(item.entity_id, r)
                assert len(tails) == 1
                assert (
                    catalog.entities.label_of(tails[0])
                    == f"{relation_label}:{value_label}"
                )

    def test_category_not_a_kg_relation(self, catalog):
        """The classification label must not leak through the KG."""
        assert "categoryIs" not in catalog.relations

    def test_value_entities_are_not_items(self, catalog):
        for triple in catalog.store:
            assert not catalog.entities.is_item(triple.tail)

    def test_category_of_entity(self, catalog):
        item = catalog.items[5]
        assert catalog.category_of_entity(item.entity_id) == item.category_id

    def test_deterministic_given_seed(self):
        config = CatalogConfig(num_categories=3, products_per_category=5, seed=11)
        a = generate_catalog(config)
        b = generate_catalog(config)
        assert np.array_equal(a.store.to_array(), b.store.to_array())
        assert [i.attributes for i in a.items] == [i.attributes for i in b.items]

    def test_different_seeds_differ(self):
        a = generate_catalog(CatalogConfig(num_categories=3, products_per_category=5, seed=1))
        b = generate_catalog(CatalogConfig(num_categories=3, products_per_category=5, seed=2))
        assert [i.attributes for i in a.items] != [i.attributes for i in b.items]

    def test_sparsity_from_fill_probability(self, catalog):
        """Sellers omit fields: items carry fewer attributes than truth."""
        schema_by_id = {c.category_id: c for c in catalog.schema}
        total_possible = sum(
            len(schema_by_id[item.category_id].attributes) for item in catalog.items
        )
        total_filled = sum(len(item.attributes) for item in catalog.items)
        assert total_filled < total_possible

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CatalogConfig(num_categories=0)
        with pytest.raises(ValueError):
            CatalogConfig(min_items_per_product=3, max_items_per_product=2)
        with pytest.raises(ValueError):
            CatalogConfig(attribute_error_probability=1.0)
