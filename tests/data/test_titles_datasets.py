"""Tests for title generation and the three task dataset builders."""

from collections import Counter

import numpy as np
import pytest

from repro.data import (
    CatalogConfig,
    InteractionConfig,
    MARKETING_WORDS,
    TitleConfig,
    TitleGenerator,
    build_alignment_dataset,
    build_classification_dataset,
    generate_catalog,
    generate_interactions,
    title_vocabulary,
)


@pytest.fixture(scope="module")
def catalog():
    return generate_catalog(
        CatalogConfig(
            num_categories=5,
            products_per_category=15,
            min_items_per_product=2,
            max_items_per_product=4,
            seed=3,
        )
    )


@pytest.fixture(scope="module")
def titles(catalog):
    return TitleGenerator(catalog, seed=5)


class TestTitleGenerator:
    def test_title_contains_category_noun(self, catalog):
        gen = TitleGenerator(
            catalog, TitleConfig(attribute_drop_probability=0.0, noise_word_count_max=0),
            seed=1,
        )
        nouns = {c.category_id: c.title_noun for c in catalog.schema}
        for item in catalog.items[:30]:
            assert nouns[item.category_id] in gen.title_of(item)

    def test_no_drop_no_noise_title_is_attrs_plus_noun(self, catalog):
        gen = TitleGenerator(
            catalog,
            TitleConfig(attribute_drop_probability=0.0, noise_word_count_max=0, shuffle=False),
            seed=1,
        )
        item = catalog.items[0]
        title = gen.title_of(item)
        assert len(title) == 1 + len(item.attributes)
        for value in item.attributes.values():
            assert value in title

    def test_drop_probability_removes_words(self, catalog):
        keep = TitleGenerator(
            catalog, TitleConfig(attribute_drop_probability=0.0, noise_word_count_max=0),
            seed=2,
        )
        drop = TitleGenerator(
            catalog, TitleConfig(attribute_drop_probability=0.8, noise_word_count_max=0),
            seed=2,
        )
        total_keep = sum(len(keep.title_of(i)) for i in catalog.items)
        total_drop = sum(len(drop.title_of(i)) for i in catalog.items)
        assert total_drop < total_keep

    def test_noise_words_come_from_marketing_pool(self, catalog):
        gen = TitleGenerator(
            catalog, TitleConfig(attribute_drop_probability=0.99, noise_word_count_max=4),
            seed=3,
        )
        nouns = {c.title_noun for c in catalog.schema}
        values = {
            v for c in catalog.schema for a in c.attributes for v in a.values
        }
        for item in catalog.items[:20]:
            for word in gen.title_of(item):
                assert word in MARKETING_WORDS or word in nouns or word in values

    def test_same_item_distinct_titles(self, catalog, titles):
        item = catalog.items[0]
        generated = [tuple(titles.title_of(item)) for _ in range(10)]
        assert len(set(generated)) > 1

    def test_titles_for_all_covers_catalog(self, catalog, titles):
        got = titles.titles_for_all()
        assert set(got) == {item.item_id for item in catalog.items}

    def test_vocabulary_closed(self, catalog, titles):
        vocab = set(title_vocabulary(catalog))
        for item in catalog.items:
            assert set(titles.title_of(item)) <= vocab

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TitleConfig(attribute_drop_probability=1.0)
        with pytest.raises(ValueError):
            TitleConfig(noise_word_count_max=-1)


class TestClassificationDataset:
    def test_split_sizes_sum(self, catalog, titles):
        ds = build_classification_dataset(catalog, titles, max_per_category=20, seed=0)
        total = sum(ds.sizes())
        assert total <= 5 * 20
        assert total == len(ds.train) + len(ds.test) + len(ds.dev)

    def test_per_category_cap(self, catalog, titles):
        ds = build_classification_dataset(catalog, titles, max_per_category=10, seed=0)
        counts = Counter(e.label for e in ds.train + ds.test + ds.dev)
        assert max(counts.values()) <= 10

    def test_every_category_in_train(self, catalog, titles):
        ds = build_classification_dataset(catalog, titles, max_per_category=20, seed=0)
        assert {e.label for e in ds.train} == set(range(5))

    def test_labels_match_item_category(self, catalog, titles):
        ds = build_classification_dataset(catalog, titles, max_per_category=20, seed=0)
        items = {item.item_id: item for item in catalog.items}
        for example in ds.train[:50]:
            assert items[example.item_id].category_id == example.label

    def test_table_row_format(self, catalog, titles):
        ds = build_classification_dataset(catalog, titles, seed=0)
        row = ds.as_table_row("d")
        assert row.startswith("d | 5 | ")

    def test_validation(self, catalog, titles):
        with pytest.raises(ValueError):
            build_classification_dataset(catalog, titles, max_per_category=0)
        with pytest.raises(ValueError):
            build_classification_dataset(
                catalog, titles, test_fraction=0.6, dev_fraction=0.5
            )


class TestAlignmentDataset:
    def test_positive_pairs_share_product(self, catalog, titles):
        ds = build_alignment_dataset(catalog, titles, category_id=0, ranking_candidates=9, seed=0)
        items = {item.item_id: item for item in catalog.items}
        for pair in ds.train:
            if pair.label == 1:
                assert items[pair.item_a].product_id == items[pair.item_b].product_id
            else:
                assert items[pair.item_a].product_id != items[pair.item_b].product_id

    def test_pairs_within_category(self, catalog, titles):
        ds = build_alignment_dataset(catalog, titles, category_id=2, ranking_candidates=9, seed=0)
        items = {item.item_id: item for item in catalog.items}
        for pair in ds.train:
            assert items[pair.item_a].category_id == 2
            assert items[pair.item_b].category_id == 2

    def test_negative_ratio(self, catalog, titles):
        ds = build_alignment_dataset(
            catalog, titles, category_id=0, negatives_per_positive=2,
            ranking_candidates=9, seed=0,
        )
        labels = Counter(p.label for p in ds.train)
        assert labels[0] == 2 * labels[1]

    def test_ranking_case_structure(self, catalog, titles):
        ds = build_alignment_dataset(catalog, titles, category_id=0, ranking_candidates=9, seed=0)
        for case in ds.test_r:
            assert case.positive.label == 1
            assert len(case.candidates) == 9
            assert all(c.label == 0 for c in case.candidates)
            # Every candidate shares the anchor item.
            assert all(c.item_a == case.positive.item_a for c in case.candidates)

    def test_titles_differ_between_sides(self, catalog, titles):
        ds = build_alignment_dataset(catalog, titles, category_id=0, ranking_candidates=9, seed=0)
        differing = sum(1 for p in ds.train if p.title_a != p.title_b)
        assert differing > len(ds.train) * 0.8

    def test_split_proportions(self, catalog, titles):
        ds = build_alignment_dataset(
            catalog, titles, category_id=0, ranking_candidates=9,
            train_fraction=0.7, test_fraction=0.15, seed=0,
        )
        n_pos_total = len(ds.test_r) + len(ds.dev_r) + sum(
            1 for p in ds.train if p.label == 1
        )
        assert sum(1 for p in ds.train if p.label == 1) >= 0.6 * n_pos_total

    def test_empty_category_raises(self, catalog, titles):
        with pytest.raises(ValueError):
            build_alignment_dataset(catalog, titles, category_id=999)

    def test_train_augmentation_multiplies_training_pairs(self, catalog, titles):
        plain = build_alignment_dataset(
            catalog, titles, category_id=0, ranking_candidates=9, seed=0
        )
        augmented = build_alignment_dataset(
            catalog, titles, category_id=0, ranking_candidates=9,
            train_samples_per_pair=3, seed=0,
        )
        assert len(augmented.train) == 3 * len(plain.train)
        # Test/dev splits are never augmented.
        assert len(augmented.test_c) == len(plain.test_c)
        assert len(augmented.test_r) == len(plain.test_r)

    def test_augmented_positives_get_fresh_titles(self, catalog, titles):
        ds = build_alignment_dataset(
            catalog, titles, category_id=0, ranking_candidates=9,
            train_samples_per_pair=4, seed=0,
        )
        by_item_pair = {}
        for pair in ds.train:
            if pair.label == 1:
                by_item_pair.setdefault((pair.item_a, pair.item_b), []).append(
                    (pair.title_a, pair.title_b)
                )
        repeated = [titles for titles in by_item_pair.values() if len(titles) > 1]
        assert repeated, "augmentation should repeat positive item pairs"
        assert any(len(set(t)) > 1 for t in repeated)

    def test_augmentation_validated(self, catalog, titles):
        with pytest.raises(ValueError):
            build_alignment_dataset(
                catalog, titles, category_id=0, train_samples_per_pair=0
            )

    def test_validation(self, catalog, titles):
        with pytest.raises(ValueError):
            build_alignment_dataset(catalog, titles, 0, train_fraction=0.0)
        with pytest.raises(ValueError):
            build_alignment_dataset(
                catalog, titles, 0, train_fraction=0.9, test_fraction=0.2
            )


class TestInteractions:
    def test_every_user_meets_minimum(self, catalog):
        ds = generate_interactions(catalog, InteractionConfig(num_users=30, seed=0))
        per_user = Counter(i.user_id for i in ds.interactions)
        assert len(per_user) == 30
        assert min(per_user.values()) >= 10

    def test_no_duplicate_user_item_pairs(self, catalog):
        ds = generate_interactions(catalog, InteractionConfig(num_users=30, seed=0))
        pairs = [(i.user_id, i.item_id) for i in ds.interactions]
        assert len(pairs) == len(set(pairs))

    def test_leave_one_out_holds_latest(self, catalog):
        ds = generate_interactions(catalog, InteractionConfig(num_users=20, seed=1))
        train, held = ds.leave_one_out()
        assert len(held) == 20
        by_user = ds.by_user()
        for user_id, holdout in held.items():
            assert holdout.timestamp == max(i.timestamp for i in by_user[user_id])
        assert len(train) + len(held) == len(ds.interactions)

    def test_preference_drives_interactions(self, catalog):
        """Users interact with their preferred categories far above chance."""
        config = InteractionConfig(num_users=40, preference_strength=8.0, seed=2)
        ds = generate_interactions(catalog, config)
        items = {item.item_id: item for item in catalog.items}
        in_preferred = 0
        for interaction in ds.interactions:
            persona = ds.user_personas[interaction.user_id]
            if items[interaction.item_id].category_id in persona["categories"]:
                in_preferred += 1
        share = in_preferred / len(ds.interactions)
        # 2 preferred categories of 5 -> chance is 0.4; preference should lift it.
        assert share > 0.55

    def test_deterministic(self, catalog):
        a = generate_interactions(catalog, InteractionConfig(num_users=10, seed=3))
        b = generate_interactions(catalog, InteractionConfig(num_users=10, seed=3))
        assert a.interactions == b.interactions

    def test_table_row(self, catalog):
        ds = generate_interactions(catalog, InteractionConfig(num_users=10, seed=0))
        row = ds.as_table_row("X")
        assert row.startswith(f"X | {len(catalog.items)} | 10 | ")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            InteractionConfig(num_users=0)
        with pytest.raises(ValueError):
            InteractionConfig(min_interactions_per_user=5, max_interactions_per_user=3)
        with pytest.raises(ValueError):
            InteractionConfig(preference_strength=-1)

    def test_small_catalog_raises(self):
        tiny = generate_catalog(
            CatalogConfig(num_categories=1, products_per_category=2, seed=0)
        )
        with pytest.raises(ValueError):
            generate_interactions(tiny, InteractionConfig(num_users=5))
