"""Tests for the parameter-server simulation.

The critical test verifies the worker's closed-form gradients against
the autograd engine — the PS pipeline must optimize exactly the same
objective as the reference trainer.
"""

import numpy as np
import pytest

from repro.core import PKGM, PKGMConfig
from repro.distributed import (
    DistributedConfig,
    DistributedPKGMTrainer,
    ParameterServer,
    PKGMWorker,
)
from repro.kg import TripleStore


@pytest.fixture
def server():
    ps = ParameterServer(num_shards=3, learning_rate=0.01)
    rng = np.random.default_rng(0)
    ps.register("entities", rng.normal(size=(10, 4)))
    ps.register("relations", rng.normal(size=(3, 4)))
    ps.register("matrices", np.tile(np.eye(4), (3, 1, 1)))
    return ps


class TestParameterServer:
    def test_shard_assignment_balanced(self, server):
        sizes = server.shard_sizes("entities")
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_pull_returns_copies(self, server):
        rows = np.array([1, 2])
        pulled = server.pull("entities", rows)
        pulled[:] = 999.0
        assert not np.any(server.snapshot("entities")[rows] == 999.0)

    def test_push_moves_against_gradient(self, server):
        rows = np.array([5])
        before = server.snapshot("entities")[5].copy()
        server.push("entities", rows, np.ones((1, 4)))
        after = server.snapshot("entities")[5]
        assert np.all(after < before)  # positive grad -> decrease

    def test_store_roundtrip_preserves_full_state(self, server, tmp_path):
        """save_to_store / restore_from_store carry values AND Adam
        moments, so training resumes bit-exactly after a restore."""
        rng = np.random.default_rng(3)
        server.push("entities", np.array([1, 4, 7]), rng.normal(size=(3, 4)))
        server.push("relations", np.array([0]), rng.normal(size=(1, 4)))
        server.save_to_store(tmp_path / "ps", page_bytes=64).close()

        restored = ParameterServer(num_shards=3, learning_rate=0.01)
        restored.register("entities", np.zeros((10, 4)))
        restored.register("relations", np.zeros((3, 4)))
        restored.register("matrices", np.zeros((3, 4, 4)))
        restored.restore_from_store(tmp_path / "ps")
        for name in ("entities", "relations", "matrices"):
            a, b = server.state(name), restored.state(name)
            for part in ("table", "m", "v", "step"):
                assert np.array_equal(a[part], b[part]), (name, part)
        # Identical pushes after restore produce identical parameters.
        gradient = np.ones((2, 4))
        server.push("entities", np.array([2, 5]), gradient)
        restored.push("entities", np.array([2, 5]), gradient)
        assert np.array_equal(
            server.snapshot("entities"), restored.snapshot("entities")
        )

    def test_store_shard_files_follow_ps_sharding(self, server, tmp_path):
        """Strided layout: store shard s holds exactly the rows
        ``shard_of`` maps to PS shard s."""
        store = server.save_to_store(tmp_path / "ps", page_bytes=64)
        spec = store.spec("entities.table")
        assert spec.layout == "strided"
        assert spec.num_shards == server.num_shards
        for row in range(spec.rows):
            shard, _ = spec.locate(row)
            assert shard == server.shard_of(row)
        store.close()

    def test_restore_missing_table_raises(self, server, tmp_path):
        server.save_to_store(tmp_path / "ps").close()
        restored = ParameterServer(num_shards=3)
        restored.register("unheard_of", np.zeros((4, 2)))
        with pytest.raises(KeyError, match="unheard_of"):
            restored.restore_from_store(tmp_path / "ps")

    def test_push_accumulates_duplicate_rows(self):
        ps1 = ParameterServer(num_shards=2, learning_rate=0.01)
        ps2 = ParameterServer(num_shards=2, learning_rate=0.01)
        table = np.ones((4, 3))
        ps1.register("t", table)
        ps2.register("t", table)
        # Duplicate rows in one push == summed gradient in one push.
        ps1.push("t", np.array([1, 1]), np.ones((2, 3)))
        ps2.push("t", np.array([1]), 2 * np.ones((1, 3)))
        assert np.allclose(ps1.snapshot("t"), ps2.snapshot("t"))

    def test_push_misaligned_raises(self, server):
        with pytest.raises(ValueError):
            server.push("entities", np.array([0, 1]), np.ones((1, 4)))

    def test_rpc_counters_track_shards(self, server):
        server.pull_count = 0
        server.pull("entities", np.array([0, 3, 6, 9]))  # shards 0,0,0,0
        assert server.pull_count == 1
        server.pull("entities", np.array([0, 1, 2]))  # shards 0,1,2
        assert server.pull_count == 4

    def test_duplicate_registration_raises(self, server):
        with pytest.raises(KeyError):
            server.register("entities", np.zeros((2, 2)))

    def test_renormalize_rows(self, server):
        server._tables["entities"] *= 100
        server.renormalize_rows("entities", 1.0)
        norms = np.linalg.norm(server.snapshot("entities"), axis=1)
        assert np.all(norms <= 1.0 + 1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            ParameterServer(num_shards=0)
        with pytest.raises(ValueError):
            ParameterServer(num_shards=1, learning_rate=0)


class TestWorkerGradients:
    def test_closed_form_matches_autograd(self):
        """The PS worker's hand-coded gradients equal autograd's."""
        model = PKGM(10, 3, PKGMConfig(dim=4, margin=2.0), rng=np.random.default_rng(3))
        ps = ParameterServer(num_shards=2, learning_rate=0.01)
        ps.register("entities", model.triple_module.entity_embeddings.weight.data)
        ps.register("relations", model.triple_module.relation_embeddings.weight.data)
        ps.register("matrices", model.relation_module.transfer_matrices.data)
        worker = PKGMWorker(ps, margin=2.0)

        rng = np.random.default_rng(5)
        positives = rng.integers(0, [10, 3, 10], size=(6, 3))
        negatives = positives.copy()
        negatives[:, 2] = (negatives[:, 2] + 3) % 10

        packet = worker.compute(positives, negatives)

        model.zero_grad()
        loss = model.margin_loss(positives, negatives)
        loss.backward()
        assert packet.loss == pytest.approx(loss.item())

        entity_grad = model.triple_module.entity_embeddings.weight.grad
        relation_grad = model.triple_module.relation_embeddings.weight.grad
        matrix_grad = model.relation_module.transfer_matrices.grad

        dense_e = np.zeros_like(entity_grad)
        dense_e[packet.rows["entities"]] = packet.gradients["entities"]
        dense_r = np.zeros_like(relation_grad)
        dense_r[packet.rows["relations"]] = packet.gradients["relations"]
        dense_m = np.zeros_like(matrix_grad)
        dense_m[packet.rows["matrices"]] = packet.gradients["matrices"]

        assert np.allclose(dense_e, entity_grad, atol=1e-10)
        assert np.allclose(dense_r, relation_grad, atol=1e-10)
        assert np.allclose(dense_m, matrix_grad, atol=1e-10)

    def test_inactive_pairs_contribute_nothing(self):
        model = PKGM(10, 2, PKGMConfig(dim=4, margin=0.1), rng=np.random.default_rng(1))
        ps = ParameterServer(num_shards=1, learning_rate=0.01)
        ps.register("entities", model.triple_module.entity_embeddings.weight.data)
        ps.register("relations", model.triple_module.relation_embeddings.weight.data)
        ps.register("matrices", model.relation_module.transfer_matrices.data)
        worker = PKGMWorker(ps, margin=0.1)
        positives = np.array([[0, 0, 1]])
        # Make the negative score astronomically worse.
        ps._tables["entities"][2] = 1e6
        negatives = np.array([[0, 0, 2]])
        packet = worker.compute(positives, negatives)
        assert packet.loss == 0.0
        for grads in packet.gradients.values():
            assert np.allclose(grads, 0.0)

    def test_misaligned_batches_raise(self):
        ps = ParameterServer(num_shards=1, learning_rate=0.01)
        ps.register("entities", np.zeros((4, 2)))
        ps.register("relations", np.zeros((2, 2)))
        ps.register("matrices", np.tile(np.eye(2), (2, 1, 1)))
        worker = PKGMWorker(ps, margin=1.0)
        with pytest.raises(ValueError):
            worker.compute(np.zeros((2, 3), dtype=int), np.zeros((3, 3), dtype=int))

    def test_margin_validation(self, server):
        with pytest.raises(ValueError):
            PKGMWorker(server, margin=0.0)


class TestDistributedTraining:
    @pytest.fixture
    def store(self):
        triples = []
        for h in range(20):
            for r in range(3):
                triples.append((h, r, 20 + (h + 2 * r) % 8))
        return TripleStore(triples)

    def test_loss_decreases(self, store):
        model = PKGM(28, 3, PKGMConfig(dim=8), rng=np.random.default_rng(0))
        trainer = DistributedPKGMTrainer(
            model,
            DistributedConfig(num_shards=4, num_workers=4, epochs=12, batch_size=16),
        )
        losses = trainer.train(store)
        assert losses[-1] < losses[0] * 0.7

    def test_staleness_still_converges(self, store):
        model = PKGM(28, 3, PKGMConfig(dim=8), rng=np.random.default_rng(0))
        trainer = DistributedPKGMTrainer(
            model,
            DistributedConfig(
                num_shards=4, num_workers=4, staleness=3, epochs=12, batch_size=16
            ),
        )
        losses = trainer.train(store)
        assert losses[-1] < losses[0] * 0.8

    def test_export_updates_model(self, store):
        model = PKGM(28, 3, PKGMConfig(dim=8), rng=np.random.default_rng(0))
        before = model.triple_module.entity_embeddings.weight.data.copy()
        DistributedPKGMTrainer(
            model, DistributedConfig(epochs=2, batch_size=16)
        ).train(store)
        after = model.triple_module.entity_embeddings.weight.data
        assert not np.allclose(before, after)

    def test_comparable_to_reference_trainer(self, store):
        """PS training reaches the same loss regime as the single-process
        reference (same objective, same sampler)."""
        from repro.core import PKGMTrainer, TrainerConfig

        reference = PKGM(28, 3, PKGMConfig(dim=8), rng=np.random.default_rng(0))
        ref_losses = PKGMTrainer(
            reference,
            TrainerConfig(epochs=12, batch_size=16, learning_rate=0.01, seed=0),
        ).train(store).epoch_losses

        distributed = PKGM(28, 3, PKGMConfig(dim=8), rng=np.random.default_rng(0))
        dist_losses = DistributedPKGMTrainer(
            distributed,
            DistributedConfig(epochs=12, batch_size=16, learning_rate=0.01, seed=0),
        ).train(store)
        assert dist_losses[-1] < ref_losses[-1] * 2.0 + 0.1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DistributedConfig(num_shards=0)
        with pytest.raises(ValueError):
            DistributedConfig(staleness=-1)
        with pytest.raises(ValueError):
            DistributedConfig(epochs=0)


class TestPullDeadlines:
    @pytest.fixture
    def store(self):
        triples = []
        for h in range(20):
            for r in range(3):
                triples.append((h, r, 20 + (h + 2 * r) % 8))
        return TripleStore(triples)

    def test_pull_budget_validation(self, server):
        with pytest.raises(ValueError):
            PKGMWorker(server, margin=1.0, pull_budget=0.0)
        model = PKGM(28, 3, PKGMConfig(dim=4), rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            DistributedPKGMTrainer(model, pull_budget=-1.0)

    def test_blown_pull_deadline_raises_deadline_error(self, server):
        from repro.reliability import (
            DeadlineExceededError,
            FaultPlan,
            FaultyParameterServer,
            Retrier,
            RetryPolicy,
        )

        faulty = FaultyParameterServer(server, FaultPlan(seed=0, rpc_error_prob=1.0))
        retrier = Retrier(RetryPolicy(base_delay=1.0, jitter=0.0, seed=0))
        worker = PKGMWorker(faulty, margin=1.0, retrier=retrier, pull_budget=0.5)
        positives = np.array([[0, 0, 5]])
        negatives = np.array([[0, 0, 6]])
        with pytest.raises(DeadlineExceededError):
            worker.compute(positives, negatives)
        assert retrier.stats.deadline_denials == 1
        assert retrier.stats.virtual_sleep == 0.0  # refused to backoff

    def test_generous_budget_leaves_training_unchanged(self, store):
        from repro.reliability import RetryPolicy

        def run(pull_budget):
            model = PKGM(28, 3, PKGMConfig(dim=8), rng=np.random.default_rng(0))
            trainer = DistributedPKGMTrainer(
                model,
                DistributedConfig(num_shards=2, num_workers=2, epochs=3, batch_size=16),
                retry=RetryPolicy(seed=0),
                pull_budget=pull_budget,
            )
            return trainer.train(store)

        assert run(None) == run(10**6)

    def test_trainer_abandons_batches_on_blown_deadlines(self, store):
        from repro.reliability import FaultPlan, RetryPolicy

        model = PKGM(28, 3, PKGMConfig(dim=8), rng=np.random.default_rng(0))
        trainer = DistributedPKGMTrainer(
            model,
            DistributedConfig(num_shards=2, num_workers=2, epochs=2, batch_size=16),
            faults=FaultPlan(seed=0, rpc_error_prob=0.5),
            retry=RetryPolicy(base_delay=1.0, jitter=0.0, seed=0),
            pull_budget=0.5,
        )
        losses = trainer.train(store)  # must not raise
        assert len(losses) == 2
        assert trainer.abandoned_batches > 0
        assert trainer.retry_stats.deadline_denials > 0
