"""Integration test: the quickstart example runs end to end.

The heavier examples (classification/alignment/recommendation) exercise
the same code paths as the task tests and benches, so only the
quickstart — which a new user runs first — is executed here.
"""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).parent.parent / "examples"


def test_quickstart_runs_and_demonstrates_completion():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    out = result.stdout
    assert "Generate the product KG" in out
    assert "SELECT ?t WHERE" in out
    assert "margin loss" in out
    assert "service payload" in out
    assert "true tail in top-5" in out


def test_all_examples_importable():
    """Every example compiles (no syntax errors / bad imports at parse)."""
    for script in sorted(EXAMPLES.glob("*.py")):
        source = script.read_text(encoding="utf-8")
        compile(source, str(script), "exec")
