#!/usr/bin/env bash
# Pre-merge gate: tier-1 tests, then the repo's own linter.
#
# Usage: tools/check.sh   (run from the repository root)
#
# Fails fast: a test failure stops the run before lint; a lint error
# (or, under REPRO_CHECK_STRICT=1, a warning) fails the gate.

set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src
# Pin the chaos suite's fault-plan seed so the gate replays one
# documented fault sequence (override to explore other seeds).
export REPRO_CHAOS_SEED="${REPRO_CHAOS_SEED:-0}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== chaos tests (REPRO_CHAOS_SEED=$REPRO_CHAOS_SEED) =="
python -m pytest -x -q "tests/test_robustness.py::TestChaosTraining" tests/reliability

echo
echo "== overload smoke (repro loadtest) =="
# A seeded 8x traffic spike through the serving gateway: must shed
# instead of raising, and finish in well under a minute.
python -m repro.cli loadtest --profile spike --requests 2000

echo
echo "== repro.lint =="
LINT_FLAGS=()
if [ "${REPRO_CHECK_STRICT:-0}" = "1" ]; then
    LINT_FLAGS+=(--strict)
fi
python -m repro.lint "${LINT_FLAGS[@]+"${LINT_FLAGS[@]}"}" src tests

echo
echo "check.sh: all gates passed"
