#!/usr/bin/env bash
# Pre-merge gate: tier-1 tests, then the repo's own linter.
#
# Usage: tools/check.sh   (run from the repository root)
#
# Fails fast: a test failure stops the run before lint; a lint error
# (or, under REPRO_CHECK_STRICT=1, a warning) fails the gate.

set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== repro.lint =="
LINT_FLAGS=()
if [ "${REPRO_CHECK_STRICT:-0}" = "1" ]; then
    LINT_FLAGS+=(--strict)
fi
python -m repro.lint "${LINT_FLAGS[@]+"${LINT_FLAGS[@]}"}" src tests

echo
echo "check.sh: all gates passed"
