#!/usr/bin/env bash
# Pre-merge gate: tier-1 tests, then the repo's own linter.
#
# Usage: tools/check.sh   (run from the repository root)
#
# Fails fast: a test failure stops the run before lint; a lint error
# (or, under REPRO_CHECK_STRICT=1, a warning) fails the gate.

set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src
# Pin the chaos suite's fault-plan seed so the gate replays one
# documented fault sequence (override to explore other seeds).
export REPRO_CHAOS_SEED="${REPRO_CHAOS_SEED:-0}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== chaos tests (REPRO_CHAOS_SEED=$REPRO_CHAOS_SEED) =="
python -m pytest -x -q "tests/test_robustness.py::TestChaosTraining" tests/reliability

echo
echo "== overload smoke (repro loadtest) =="
# A seeded 8x traffic spike through the serving gateway: must shed
# instead of raising, and finish in well under a minute.
python -m repro.cli loadtest --profile spike --requests 2000

echo
echo "== obs determinism (repro metrics / repro trace, byte-diffed) =="
# Telemetry must be as reproducible as the computation it measures:
# the same seeded workload exported twice has to be byte-identical,
# for the Prometheus text and the Chrome trace JSON alike.
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
python -m repro.cli metrics --preset smoke --requests 400 > "$OBS_TMP/metrics1.txt"
python -m repro.cli metrics --preset smoke --requests 400 > "$OBS_TMP/metrics2.txt"
diff "$OBS_TMP/metrics1.txt" "$OBS_TMP/metrics2.txt"
python -m repro.cli trace --preset smoke --format chrome > "$OBS_TMP/trace1.json"
python -m repro.cli trace --preset smoke --format chrome > "$OBS_TMP/trace2.json"
diff "$OBS_TMP/trace1.json" "$OBS_TMP/trace2.json"
# The worker-pool workload surfaces per-worker pool.* and
# store.scrub.* series; it forks real processes, yet the export must
# still be byte-identical across reruns.
python -m repro.cli metrics --workload pool --requests 240 > "$OBS_TMP/pool1.txt"
python -m repro.cli metrics --workload pool --requests 240 > "$OBS_TMP/pool2.txt"
diff "$OBS_TMP/pool1.txt" "$OBS_TMP/pool2.txt"
echo "telemetry exports are byte-identical across reruns"

echo
echo "== index determinism (repro index, byte-diffed snapshots) =="
# Two independent same-seed builds must write byte-identical snapshots
# (payload .npz and manifest .json — the manifest embeds the payload
# basename, so both runs use the same basename in different dirs),
# and the search CLI must print byte-identical results across reruns.
mkdir -p "$OBS_TMP/r1" "$OBS_TMP/r2"
python -m repro.cli index build --preset smoke --kind ivf --out "$OBS_TMP/r1/idx" > /dev/null
python -m repro.cli index build --preset smoke --kind ivf --out "$OBS_TMP/r2/idx" > /dev/null
cmp "$OBS_TMP/r1/idx.npz" "$OBS_TMP/r2/idx.npz"
cmp "$OBS_TMP/r1/idx.json" "$OBS_TMP/r2/idx.json"
python -m repro.cli index search --preset smoke --kind ivf > "$OBS_TMP/search1.txt"
python -m repro.cli index search --preset smoke --kind ivf > "$OBS_TMP/search2.txt"
diff "$OBS_TMP/search1.txt" "$OBS_TMP/search2.txt"
echo "index snapshots and search results are byte-identical across reruns"

echo
echo "== storage chaos (repro store, byte-diffed recovery) =="
# Seeded torn-write + bit-flip + torn-manifest drill over a small
# store: the run must end RECOVERED (manifest refused then restored,
# every quarantined page repaired from the replica, zero serving
# mismatches, zero escaped exceptions) and the full report — fault
# offsets, scrub/repair accounting, store.* metrics — must be
# byte-identical across two runs.
python -m repro.cli store chaos --preset smoke --dir "$OBS_TMP/chaos1" \
    --torn 1 --flips 2 --torn-manifest > "$OBS_TMP/chaos1.txt"
python -m repro.cli store chaos --preset smoke --dir "$OBS_TMP/chaos2" \
    --torn 1 --flips 2 --torn-manifest > "$OBS_TMP/chaos2.txt"
diff "$OBS_TMP/chaos1.txt" "$OBS_TMP/chaos2.txt"
grep -q "chaos drill: RECOVERED" "$OBS_TMP/chaos1.txt"
# Recovery is byte-deterministic on disk too: both repaired stores
# must match a fresh build file-for-file.
python -m repro.cli store build --preset smoke --out "$OBS_TMP/chaos-ref" > /dev/null
for f in "$OBS_TMP"/chaos-ref/*; do
    cmp "$f" "$OBS_TMP/chaos1/primary/$(basename "$f")"
    cmp "$f" "$OBS_TMP/chaos2/primary/$(basename "$f")"
done
echo "storage-chaos recovery is byte-identical across reruns"

echo
echo "== serve chaos (repro serve, SIGKILL drill, byte-diffed) =="
# Process-level chaos: a seeded mixed workload over 3 forked workers
# with 2 SIGKILLs mid-load.  The drill must end RECOVERED (every
# request answered exactly once, zero duplicates, both deaths detected
# and restarted) and the transcript — request ids, kinds, outcomes,
# payload CRCs — must be byte-identical across two runs even though
# crash timing and replay counts vary between them.
python -m repro.cli serve chaos --preset smoke --dir "$OBS_TMP/serve1" \
    > "$OBS_TMP/serve1.txt"
python -m repro.cli serve chaos --preset smoke --dir "$OBS_TMP/serve2" \
    > "$OBS_TMP/serve2.txt"
diff "$OBS_TMP/serve1.txt" "$OBS_TMP/serve2.txt"
grep -q "drill: RECOVERED" "$OBS_TMP/serve1.txt"
echo "serve-chaos transcript is byte-identical across reruns"

echo
echo "== stream chaos (repro stream, crash-mid-ingest drill) =="
# The delta-ingest drill: run the seeded catalog-delta stream, kill it
# mid-batch (after segments are on disk but before the next publish),
# then recover by pure log replay.  The drill byte-compares every
# store/index/manifest file and the stream.* metrics dump between the
# recovered directory and an uninterrupted reference run — it must end
# RECOVERED with zero mismatches, and its transcript must be
# byte-identical across two independent drills.
python -m repro.cli stream chaos --preset smoke --dir "$OBS_TMP/stream1" \
    > "$OBS_TMP/stream1.txt"
python -m repro.cli stream chaos --preset smoke --dir "$OBS_TMP/stream2" \
    > "$OBS_TMP/stream2.txt"
diff "$OBS_TMP/stream1.txt" "$OBS_TMP/stream2.txt"
grep -q "stream drill: RECOVERED" "$OBS_TMP/stream1.txt"
echo "stream-chaos recovery is byte-identical across reruns"

echo
echo "== scenarios workload (explain + recommend, byte-diffed) =="
# The seeded scenario workload: explanation and recommendation
# requests through the gateway (with injected unknown-id and expired
# budgets) and through the forked worker pool.  It must PASS (every
# request answered, degraded responses typed and never cached, every
# explanation entailed by its cited triples) and the transcript —
# request ids, outcomes, payload digests, scenarios.* metrics — must
# be byte-identical across two runs.
python -m repro.cli scenarios workload --requests 120 --pool-requests 48 \
    > "$OBS_TMP/scenarios1.txt"
python -m repro.cli scenarios workload --requests 120 --pool-requests 48 \
    > "$OBS_TMP/scenarios2.txt"
diff "$OBS_TMP/scenarios1.txt" "$OBS_TMP/scenarios2.txt"
grep -q "scenarios workload: PASS" "$OBS_TMP/scenarios1.txt"
echo "scenario workload transcript is byte-identical across reruns"

echo
echo "== repro.lint (per-file + whole-program) =="
# One pass over every Python tree: per-file rules plus the
# whole-program passes (import/call graphs, determinism taint,
# concurrency safety, contract checks).  Known unused-export debt is
# tolerated through the committed baseline and ratchets down as it is
# paid off; anything new fails the gate.
LINT_FLAGS=()
if [ "${REPRO_CHECK_STRICT:-0}" = "1" ]; then
    LINT_FLAGS+=(--strict)
fi
python -m repro.lint --program --baseline tools/lint_baseline.json \
    "${LINT_FLAGS[@]+"${LINT_FLAGS[@]}"}" src tests benchmarks tools

echo
echo "check.sh: all gates passed"
