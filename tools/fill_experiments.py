"""Inject measured benchmark tables into EXPERIMENTS.md.

Each ``<!--KEY-->`` placeholder is replaced by the matching
``benchmarks/results/<file>.txt`` contents, fenced as a code block.
Re-runnable: the injected blocks are wrapped in markers so the script
refreshes them on subsequent runs.

Usage:  python tools/fill_experiments.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).parent.parent
RESULTS = ROOT / "benchmarks" / "results"
TARGET = ROOT / "EXPERIMENTS.md"

MAPPING = {
    "TABLE1": "table1_service_semantics.txt",
    "TABLE2": "table2_pretrain_stats.txt",
    "TABLE3": "table3_classification_stats.txt",
    "TABLE4": "table4_item_classification.txt",
    "TABLE5": "table5_alignment_stats.txt",
    "TABLE6": "table6_alignment_hitk.txt",
    "TABLE7": "table7_alignment_accuracy.txt",
    "TABLE8": "table8_recommendation.txt",
    "TABLE9": "table9_recommendation_stats.txt",
    "ABL_K": "ablation_key_relations.txt",
    "ABL_COMPLETION": "ablation_completion.txt",
    "ABL_KGE": "ablation_kge.txt",
    "ABL_DIST": "ablation_distributed.txt",
    "ABL_FAULTS": "ablation_faults.txt",
    "ABL_RULES": "ablation_rules.txt",
    "ABL_OVERLOAD": "overload_serving.txt",
    "OBS_OVERHEAD": "obs_overhead.txt",
    "IDX_RETRIEVAL": "index_retrieval.txt",
    "STORE_OOC": "store_out_of_core.txt",
    "EXT_ATTR": "extension_attribute_prediction.txt",
}


def block_for(key: str) -> str:
    path = RESULTS / MAPPING[key]
    if not path.exists():
        return f"<!--{key}-->\n*(results file {path.name} not generated yet)*"
    body = path.read_text(encoding="utf-8").rstrip()
    return f"<!--{key}-->\n```text\n{body}\n```"


def main() -> int:
    text = TARGET.read_text(encoding="utf-8")
    filled = 0
    for key in MAPPING:
        # Replace either the bare placeholder or a previously injected block.
        pattern = re.compile(
            rf"<!--{key}-->(?:\n```text\n.*?\n```)?", re.DOTALL
        )
        if pattern.search(text):
            text = pattern.sub(lambda _: block_for(key), text, count=1)
            filled += 1
    TARGET.write_text(text, encoding="utf-8")
    print(f"filled {filled}/{len(MAPPING)} blocks in {TARGET.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
